//! The type-erased normalization serving API: one front door over
//! format × method × backend × threads, with request micro-batching,
//! sharding and bounded backpressure.
//!
//! The execution layer underneath ([`backend`](crate::backend)) is already
//! runtime-polymorphic, but every caller still had to monomorphize its own
//! dispatch (the CLI's old `with_exec!` macro, the transformer's typed
//! per-layer plans). [`NormService`] removes that: a [`ServiceConfig`]
//! names the whole execution point — dimension, format, scale method,
//! backend, worker threads, reduction order, affine parameters — and
//! [`ServiceConfig::build`] erases it behind one object. Callers submit
//! [`NormRequest`]s (row-major `u32` storage bits, or native `f32` slices)
//! and get [`NormResponse`]s with per-request execution metadata. No
//! generic parameters, no macros.
//!
//! # The resident shard executor
//!
//! Each shard owns a small **resident worker pool**, spawned once at
//! [`ServiceConfig::build`] and joined when the service shuts down or the
//! last clone drops: one *driver* thread that parks on the shard's work
//! condvar, drains the combining queue and runs the backend calls, plus
//! `threads − 1` partition helpers (a
//! [`PartitionPool`]) the batch kernels
//! split rows across. [`ServiceConfig::with_shard_threads`] sets the
//! per-shard worker count individually. Submitting threads never execute
//! other callers' work: a blocking submit enqueues and parks until the
//! driver fills its mailbox. Idle workers park — no busy-spin — and
//! shutdown joins every worker, so a built-then-dropped service leaks
//! nothing (proven by `tests/executor_hygiene.rs`).
//!
//! # Micro-batching
//!
//! A service is [`Clone`] + [`Sync`]: concurrent callers share the same
//! plans, scratch and backends. Requests that are waiting in a shard's
//! queue when its driver starts a round — or that arrive within the
//! configured coalescing [`window`](ServiceConfig::with_window) — are
//! packed into **one** partitioned
//! [`normalize_batch_bits`](crate::NormBackend::normalize_batch_bits)
//! call and split back per caller. Rows are independent and the engine
//! processes a batch row by row in order, so the coalesced output bits are
//! **identical** to serial per-request execution (enforced across
//! formats × methods × shard counts × submitter counts by
//! `tests/service_bit_identity.rs`). Coalescing therefore changes only
//! throughput, never results; the wins show up only under concurrent
//! load — a single submitting thread's request is drained alone and runs
//! as its own batch.
//!
//! With [`ServiceConfig::with_adaptive_window`] the window becomes
//! **adaptive**: the driver holds a round open only while the shard's
//! arrival-rate estimator ([`ArrivalRateEstimator`]) reports traffic
//! worth coalescing with; idle and trickle traffic drains immediately,
//! so the window's latency cost is paid exactly when it buys batching.
//!
//! # Async submission
//!
//! [`NormService::submit`] parks the submitting thread until its result is
//! ready. [`NormService::submit_async`] does not: it enqueues into the
//! shard's combining queue and returns a [`NormTicket`] immediately, so a
//! caller can overlap its own work with normalization the way an
//! inference loop overlaps layers, then collect through
//! [`NormTicket::try_take`] (poll), [`NormTicket::wait`] (park),
//! [`NormTicket::wait_timeout`] (bounded park) or — waker-native —
//! [`NormTicket::on_ready`] (a completion callback the driver invokes) and
//! [`TicketSet::wait_any`] (collect a batch of tickets in completion
//! order, without polling). Async requests ride the *same* driver rounds
//! as blocking ones, so async, blocking and serial per-request execution
//! are all bit-identical (enforced by `tests/service_bit_identity.rs`).
//! Backpressure applies at enqueue time: a full shard fails
//! `submit_async` with [`NormError::QueueFull`] before any request-sized
//! work is done.
//!
//! ```
//! use iterl2norm::service::{NormRequest, ServiceConfig};
//!
//! # fn main() -> Result<(), iterl2norm::NormError> {
//! let d = 64;
//! let service = ServiceConfig::new(d).build()?;
//! let rows: Vec<u32> = (0..2 * d as u32).map(|i| f32::to_bits(0.5 + i as f32)).collect();
//!
//! // Enqueue without blocking, overlap other work, collect later.
//! let mut ticket = service.submit_async(NormRequest::bits(&rows))?;
//! let overlapped_work = 6 * 7; // ... the caller's own computation ...
//! let response = ticket.wait()?;
//! assert_eq!(overlapped_work, 42);
//! assert_eq!(response.rows(), 2);
//!
//! // Bit-identical to the blocking path.
//! let blocking = service.submit(NormRequest::bits(&rows))?;
//! assert_eq!(response.bits(), blocking.bits());
//! # Ok(())
//! # }
//! ```
//!
//! # Sharding, placement and backpressure
//!
//! One combining queue over one backend mutex serializes *all* traffic on
//! a single lock. [`ServiceConfig::with_shards`] splits the service into N
//! independent shards — each owns its own backend instance (built from the
//! identical plan), combining queue and coalescing state — and requests
//! are placed across shards by the configured [`Placement`]: round-robin
//! by default, or sticky request-hash
//! ([`ServiceConfig::with_placement`] + [`NormRequest::with_key`]), which
//! keeps a hot caller's traffic on one shard so that shard's backend
//! scratch and buffer pool stay warm. Because every shard executes the
//! same plan with the same arithmetic, output bits are independent of the
//! shard count, the placement policy and of which shard served a request.
//!
//! Each shard's waiting line is bounded by
//! [`ServiceConfig::with_queue_depth`]: a request that arrives when the
//! shard's queue is full fails fast with [`NormError::QueueFull`] instead
//! of buffering unboundedly behind a slow backend. Response buffers are
//! leased from a small per-shard pool and returned when the
//! [`NormResponse`] drops ([`ServiceConfig::with_buffer_pool`]), so
//! steady-state serving does not allocate a fresh output buffer per
//! request — and the pool's lock is shard-local, not another global
//! serialization point.
//!
//! # Failure containment
//!
//! No internal lock acquisition panics on poison. If a backend call
//! panics mid-execution (a backend bug, an allocation failure), the
//! resident driver **contains** the panic: the service marks itself shut
//! down, the panic payload is re-raised on the submitting thread of the
//! failed round's first blocking waiter (panics do not silently vanish
//! into a worker), and every other waiter fails with
//! [`NormError::ServiceShutdown`] — one panicking request never leaves
//! other callers parked forever, panicking on a poisoned mutex, or served
//! by a dead driver. A panicking [`NormTicket::on_ready`] callback is
//! likewise contained in the driver and counted
//! ([`ServiceStats::waker_panics`]). Plain-data caches (result slots, the
//! pool's service cache) recover the poisoned guard and continue, since a
//! panic cannot leave their state inconsistent.
//!
//! # Example
//!
//! ```
//! use iterl2norm::service::{NormRequest, ServiceConfig};
//! use iterl2norm::{BackendKind, FormatKind, MethodSpec};
//!
//! # fn main() -> Result<(), iterl2norm::NormError> {
//! let d = 64;
//! let service = ServiceConfig::new(d)
//!     .with_format(FormatKind::Fp32)
//!     .with_backend(BackendKind::Native)
//!     .with_method(MethodSpec::iterl2(5))
//!     .with_threads(2)
//!     .with_shards(2)
//!     .with_queue_depth(256)
//!     .build()?;
//!
//! // Native f32 traffic straight in; two rows in one request.
//! let rows: Vec<f32> = (0..2 * d).map(|i| (i as f32 * 0.37).sin()).collect();
//! let response = service.submit(NormRequest::f32(&rows))?;
//! assert_eq!(response.rows(), 2);
//! assert_eq!(response.bits().len(), 2 * d);
//! # Ok(())
//! # }
//! ```

// normlint: module(no-panic)
// Every non-test panic path in this file is a lint violation: a panic
// here unwinds inside the shard round protocol and poisons the very
// shard locks the PR 4 recovery helpers exist to rescue. Recover, fail
// closed through `Core::torn_state`, or attach a justified waiver.

use std::any::Any;
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use softfloat::{Bf16, Float, Fp16, Fp32, HostF32};

/// SplitMix64's finalizer: a cheap, well-mixed `u64 -> u64` hash for
/// request-hash placement. Sequential keys (the common caller pattern:
/// layer index, session id) must spread across shards instead of
/// clustering, and the mapping must be stable across runs — no
/// `RandomState` seeding.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

use crate::adaptive::{AdaptiveWindow, ArrivalRateEstimator};
use crate::backend::{build_backend_affine, BackendKind, FormatKind, NormBackend, RowMoments};
use crate::config::IterConfig;
use crate::engine::MethodSpec;
use crate::error::NormError;
use crate::executor::{Clock, PartitionPool, RealClock};
use crate::hworder::ReduceOrder;
use crate::iteration::iterate;
use crate::layernorm::{layer_norm, LayerNormInputs};
use crate::simd::SimdLevel;
use crate::whiten::{build_whiten, WhitenDetail, WhitenExec, WhitenSpec};

/// Dispatch a body over the concrete [`Float`] type a validated
/// `(backend, format)` pair executes. Only reachable after
/// [`ServiceConfig::build`] has rejected native + non-FP32, so the native
/// arm is unconditionally `HostF32`. This is the single place the
/// type-erasure boundary is crossed back into generics.
macro_rules! with_exec_float {
    ($backend:expr, $format:expr, $f:ident => $body:expr) => {
        match ($backend, $format) {
            (BackendKind::Native, _) => {
                type $f = HostF32;
                $body
            }
            (BackendKind::Emulated, FormatKind::Fp32) => {
                type $f = Fp32;
                $body
            }
            (BackendKind::Emulated, FormatKind::Fp16) => {
                type $f = Fp16;
                $body
            }
            (BackendKind::Emulated, FormatKind::Bf16) => {
                type $f = Bf16;
                $body
            }
        }
    };
}

/// Default per-shard bound on queued (not-yet-executing) requests.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Everything that defines one normalization execution point. Built with
/// [`ServiceConfig::new`] plus `with_*` steps, validated once by
/// [`ServiceConfig::build`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    d: usize,
    format: FormatKind,
    method: MethodSpec,
    backend: BackendKind,
    threads: usize,
    reduce: ReduceOrder,
    gamma_bits: Option<Vec<u32>>,
    beta_bits: Option<Vec<u32>>,
    window: Duration,
    coalescing: bool,
    shards: usize,
    queue_depth: usize,
    buffer_pool: bool,
    placement: Placement,
    simd: SimdLevel,
    whiten: WhitenSpec,
    shard_threads: Option<Vec<usize>>,
    adaptive: Option<AdaptiveWindow>,
    clock: Option<Arc<dyn Clock>>,
}

impl ServiceConfig {
    /// Defaults for vectors of length `d`: emulated FP32, `iterl2[5]`,
    /// one worker thread, hardware-tree reduction, no affine parameters,
    /// opportunistic coalescing with a zero window, one shard with a
    /// [`DEFAULT_QUEUE_DEPTH`]-request queue bound, pooled response
    /// buffers.
    pub fn new(d: usize) -> Self {
        ServiceConfig {
            d,
            format: FormatKind::default(),
            method: MethodSpec::iterl2(5),
            backend: BackendKind::default(),
            threads: 1,
            reduce: ReduceOrder::default(),
            gamma_bits: None,
            beta_bits: None,
            window: Duration::ZERO,
            coalescing: true,
            shards: 1,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            buffer_pool: true,
            placement: Placement::default(),
            simd: SimdLevel::Auto,
            whiten: WhitenSpec::default(),
            shard_threads: None,
            adaptive: None,
            clock: None,
        }
    }

    /// Same config with a different float format.
    pub fn with_format(mut self, format: FormatKind) -> Self {
        self.format = format;
        self
    }

    /// Same config with a different scale method.
    pub fn with_method(mut self, method: MethodSpec) -> Self {
        self.method = method;
        self
    }

    /// Same config with a different execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Same config with a different resident worker-thread count per
    /// shard: each shard's executor spawns this many threads at build
    /// (one driver plus `threads − 1` partition helpers) and batch
    /// execution splits rows across them. Validated at build; output
    /// bits never depend on it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same config with an explicit per-shard worker count: shard `i`
    /// gets `counts[i]` resident threads (driver + partition helpers),
    /// overriding the uniform [`with_threads`](ServiceConfig::with_threads)
    /// count — useful when one shard is pinned to hot keyed traffic and
    /// deserves more parallelism than the rest. Length must equal the
    /// shard count and every entry must be ≥ 1, both validated at build.
    /// Output bits never depend on it.
    pub fn with_shard_threads(mut self, counts: &[usize]) -> Self {
        self.shard_threads = Some(counts.to_vec());
        self
    }

    /// Same config with **adaptive** coalescing: the driver holds a round
    /// open for the coalescing [`window`](ServiceConfig::with_window)
    /// only while the shard's arrival-rate estimator says at least
    /// [`open_at`](AdaptiveWindow::open_at) requests arrived per
    /// [`interval`](AdaptiveWindow::interval) — idle or trickle traffic
    /// drains immediately, so the window's latency cost is paid exactly
    /// when it buys batching. Inert when the window is zero (there is no
    /// window to gate). Validated at build
    /// ([`NormError::InvalidAdaptiveWindow`]); output bits are identical
    /// with the window open, closed, or absent.
    pub fn with_adaptive_window(mut self, adaptive: AdaptiveWindow) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Same config reading time from `clock` instead of the real
    /// monotonic clock. This is the adaptive estimator's test seam: a
    /// [`TestClock`](crate::executor::TestClock) scripts arrival
    /// timestamps deterministically, so window open/close decisions can
    /// be pinned in tests. Only the arrival-rate estimator reads this
    /// clock — stats timing spans still use the monotonic clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Same config with a different reduction order.
    pub fn with_reduce(mut self, reduce: ReduceOrder) -> Self {
        self.reduce = reduce;
        self
    }

    /// Same config with per-element scale γ, given as storage bit
    /// patterns (length validated at build).
    pub fn with_gamma_bits(mut self, gamma: &[u32]) -> Self {
        self.gamma_bits = Some(gamma.to_vec());
        self
    }

    /// Same config with per-element shift β, given as storage bit
    /// patterns (length validated at build).
    pub fn with_beta_bits(mut self, beta: &[u32]) -> Self {
        self.beta_bits = Some(beta.to_vec());
        self
    }

    /// Same config with both affine parameters as storage bit patterns.
    pub fn with_affine_bits(self, gamma: &[u32], beta: &[u32]) -> Self {
        self.with_gamma_bits(gamma).with_beta_bits(beta)
    }

    /// Same config with a coalescing window: the shard's resident driver
    /// holds a drained round open this long before executing it, so
    /// requests from other threads can join the batch. Zero (the
    /// default) never delays a round — coalescing then happens only
    /// opportunistically, for requests that queue up while the driver
    /// is executing an earlier round.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Same config with coalescing disabled entirely: every request runs
    /// as its own backend call (requests still serialize per shard,
    /// blocking on the shard's backend — there is no combining queue in
    /// this mode, so the [`with_queue_depth`](ServiceConfig::with_queue_depth)
    /// bound does not apply and `QueueFull` is never returned). This is
    /// the per-request baseline the `service_bench` compares against;
    /// output bits are identical either way.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Same config sharded across `shards` independent backend instances,
    /// each with its own combining queue; requests are placed round-robin.
    /// Every shard executes the identical plan, so output bits do not
    /// depend on the shard count or on which shard served a request
    /// (enforced by `tests/service_bit_identity.rs`). More shards remove
    /// the single backend mutex as the serialization point under
    /// concurrent load, at the cost of fewer coalescing opportunities per
    /// shard. Validated ≥ 1 at build.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Same config with a different per-shard queue-depth bound: the
    /// maximum number of requests allowed to *wait* in a shard's combining
    /// queue (the request currently executing does not count). A submit
    /// that arrives at a full shard fails fast with
    /// [`NormError::QueueFull`] instead of buffering unboundedly behind a
    /// slow backend. Validated ≥ 1 at build (a zero depth would reject
    /// every request under a coalescing window); `usize::MAX` effectively
    /// disables the bound. The bound governs the combining queue, so it
    /// has no effect when coalescing is disabled
    /// ([`with_coalescing(false)`](ServiceConfig::with_coalescing) —
    /// per-request callers block on the shard's backend instead of
    /// queueing).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Same config with a different shard-placement policy.
    /// [`Placement::RoundRobin`] (the default) spreads requests evenly;
    /// [`Placement::RequestHash`] pins requests that carry a
    /// [`key`](NormRequest::with_key) to one shard, keeping that shard's
    /// backend scratch warm for a hot caller (keyless requests still go
    /// round-robin). On a single-shard service both policies are the
    /// identity. Placement never changes output bits.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Same config with a different SIMD level for the native backend.
    /// [`SimdLevel::Auto`] (the default) picks the widest kernel the host
    /// supports; a forced level either runs exactly that tier or fails
    /// [`build`](ServiceConfig::build) with
    /// [`NormError::SimdUnsupported`] — never a silent downgrade. The
    /// resolved level is reported by
    /// [`NormService::simd_level`] and on every [`NormResponse`]. Output
    /// bits are identical at every level.
    pub fn with_simd(mut self, simd: SimdLevel) -> Self {
        self.simd = simd;
        self
    }

    /// Same config with a different whitening spec — the iteration count,
    /// covariance ridge and group mode that
    /// [`NormRequest::whiten_group`] requests execute under. Whitening
    /// shares this config's backend, format, SIMD level and thread count;
    /// the executor itself is built lazily, on the first whitening
    /// request a shard sees, so services that never whiten pay nothing.
    pub fn with_whiten(mut self, whiten: WhitenSpec) -> Self {
        self.whiten = whiten;
        self
    }

    /// Same config with the response-buffer pool enabled or disabled.
    /// When enabled (the default), output buffers are leased from a small
    /// free list and returned when the [`NormResponse`] is dropped, so
    /// steady-state serving does not allocate a fresh buffer per request.
    /// Disabling exists for benchmarking the pool's effect; output bits
    /// are identical either way.
    pub fn with_buffer_pool(mut self, buffer_pool: bool) -> Self {
        self.buffer_pool = buffer_pool;
        self
    }

    /// The vector length `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The float format.
    pub fn format(&self) -> FormatKind {
        self.format
    }

    /// The scale method.
    pub fn method(&self) -> MethodSpec {
        self.method
    }

    /// The execution backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The uniform resident worker-thread count per shard.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-shard worker counts, when set with
    /// [`with_shard_threads`](ServiceConfig::with_shard_threads).
    pub fn shard_threads(&self) -> Option<&[usize]> {
        self.shard_threads.as_deref()
    }

    /// The adaptive-coalescing policy, when set with
    /// [`with_adaptive_window`](ServiceConfig::with_adaptive_window).
    pub fn adaptive_window(&self) -> Option<AdaptiveWindow> {
        self.adaptive
    }

    /// Resident workers serving shard `i` (driver + partition helpers).
    fn shard_thread_count(&self, i: usize) -> usize {
        self.shard_threads
            .as_ref()
            .and_then(|counts| counts.get(i).copied())
            .unwrap_or(self.threads)
    }

    /// The reduction order.
    pub fn reduce(&self) -> ReduceOrder {
        self.reduce
    }

    /// The coalescing window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Whether micro-batching is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// The number of independent shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The per-shard queue-depth bound.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Whether response buffers are pooled.
    pub fn buffer_pool(&self) -> bool {
        self.buffer_pool
    }

    /// The shard-placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The *requested* SIMD level (possibly [`SimdLevel::Auto`]); the
    /// resolved level a built service actually runs is
    /// [`NormService::simd_level`].
    pub fn simd(&self) -> SimdLevel {
        self.simd
    }

    /// The whitening spec [`NormRequest::whiten_group`] requests run.
    pub fn whiten(&self) -> WhitenSpec {
        self.whiten
    }

    /// Validate the configuration and erase it behind a [`NormService`].
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`, [`NormError::ZeroThreads`]
    /// when `threads == 0` (or any `with_shard_threads` entry is),
    /// [`NormError::ZeroShards`] when `shards == 0`,
    /// [`NormError::ZeroQueueDepth`] when `queue_depth == 0`,
    /// [`NormError::ShardThreadsMismatch`] when the `with_shard_threads`
    /// list length differs from the shard count,
    /// [`NormError::InvalidAdaptiveWindow`] for a malformed adaptive
    /// policy, [`NormError::BackendFormatMismatch`] for native +
    /// non-FP32, and the γ/β length-mismatch variants.
    pub fn build(self) -> Result<NormService, NormError> {
        self.validate_counts()?;
        let mut backends = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            backends.push(build_backend_affine(
                self.backend,
                self.format,
                self.d,
                &self.method,
                self.reduce,
                self.gamma_bits.as_deref(),
                self.beta_bits.as_deref(),
                self.simd,
            )?);
        }
        Ok(self.assemble(backends, None))
    }

    /// [`build`](ServiceConfig::build) with caller-supplied backends: the
    /// extension point for custom [`NormBackend`] implementations (and how
    /// the resilience test suite injects panicking or deliberately slow
    /// backends). `make` is called once per shard; every instance must
    /// execute the same computation or the sharded bit-identity guarantee
    /// is the caller's problem. The config's format/backend fields are
    /// kept for reporting but not validated against the custom backends.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`, [`NormError::ZeroThreads`]
    /// when `threads == 0`, [`NormError::ZeroShards`] when `shards == 0`,
    /// [`NormError::ZeroQueueDepth`] when `queue_depth == 0`.
    pub fn build_with_backends(
        self,
        mut make: impl FnMut() -> Box<dyn NormBackend>,
    ) -> Result<NormService, NormError> {
        self.validate_counts()?;
        if self.d == 0 {
            return Err(NormError::EmptyInput);
        }
        let backends = (0..self.shards).map(|_| make()).collect();
        Ok(self.assemble(backends, None))
    }

    /// [`build_with_backends`](ServiceConfig::build_with_backends) plus a
    /// custom whitening-executor factory: each shard's executor is built
    /// through `make_whiten` on its first whitening request instead of
    /// from the config. The same bit-identity caveat applies. Exists so
    /// resilience tests can inject executors that fail or panic
    /// mid-whitening and observe the service's poison recovery.
    ///
    /// # Errors
    ///
    /// Same set as [`build_with_backends`](ServiceConfig::build_with_backends).
    pub fn build_with_backends_and_whiten(
        self,
        mut make: impl FnMut() -> Box<dyn NormBackend>,
        make_whiten: impl Fn() -> Box<dyn WhitenExec> + Send + Sync + 'static,
    ) -> Result<NormService, NormError> {
        self.validate_counts()?;
        if self.d == 0 {
            return Err(NormError::EmptyInput);
        }
        let backends = (0..self.shards).map(|_| make()).collect();
        Ok(self.assemble(backends, Some(Box::new(make_whiten))))
    }

    fn validate_counts(&self) -> Result<(), NormError> {
        if self.threads == 0 {
            return Err(NormError::ZeroThreads);
        }
        if self.shards == 0 {
            return Err(NormError::ZeroShards);
        }
        if self.queue_depth == 0 {
            return Err(NormError::ZeroQueueDepth);
        }
        if let Some(counts) = &self.shard_threads {
            if counts.len() != self.shards {
                return Err(NormError::ShardThreadsMismatch {
                    shards: self.shards,
                    actual: counts.len(),
                });
            }
            if counts.contains(&0) {
                return Err(NormError::ZeroThreads);
            }
        }
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }
        Ok(())
    }

    fn assemble(
        self,
        backends: Vec<Box<dyn NormBackend>>,
        make_whiten: Option<Box<dyn Fn() -> Box<dyn WhitenExec> + Send + Sync>>,
    ) -> NormService {
        // Distinguishes worker threads across services in one process:
        // thread names (`ns{sid}s{shard}…`, ≤ 15 bytes for /proc comm)
        // are how the hygiene suite counts this service's residents.
        static SERVICE_ID: AtomicUsize = AtomicUsize::new(0);
        let sid = SERVICE_ID.fetch_add(1, Ordering::Relaxed);
        let label = backends[0].label();
        // Every shard was built from the same config, so the resolved
        // level is uniform — record it once for response metadata.
        let simd_level = backends[0].simd_level();
        let clock: Arc<dyn Clock> = self
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(RealClock::new()));
        let shards = backends
            .into_iter()
            .enumerate()
            .map(|(i, backend)| Shard {
                queue: Mutex::new(QueueState {
                    estimator: self.adaptive.as_ref().map(ArrivalRateEstimator::new),
                    ..QueueState::default()
                }),
                queue_cv: Condvar::new(),
                work_cv: Condvar::new(),
                backend: Mutex::new(backend),
                // Lazily built on the shard's first whitening request —
                // see [`Core::whiten_of`].
                whiten: Mutex::new(None),
                // Resident partition helpers: the driver is worker 0, so
                // a shard with `n` configured threads spawns `n − 1`
                // helpers — total residents per shard = its thread count.
                runner: PartitionPool::new(self.shard_thread_count(i) - 1, &format!("ns{sid}s{i}")),
                // Per shard on purpose: a single service-wide pool mutex
                // would reintroduce the global serialization point that
                // sharding exists to remove.
                pool: Arc::new(BufferPool::new(self.buffer_pool)),
            })
            .collect();
        let core = Arc::new(Core {
            label,
            simd_level,
            clock,
            config: self,
            make_whiten,
            shards,
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let drivers = (0..core.shards.len())
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("ns{sid}s{i}d"))
                    .spawn(move || driver_loop(&core, i))
                    // normlint: allow(L001) — spawn fails only on resource
                    // exhaustion at build time; a service cannot exist
                    // without its resident drivers.
                    .expect("spawn resident shard driver")
            })
            .collect();
        NormService {
            inner: Arc::new(Inner { core, drivers }),
        }
    }
}

/// Where a sharded service places incoming requests. Every shard executes
/// the identical plan, so placement affects only contention and cache
/// warmth — **never output bits** (enforced by
/// `tests/service_bit_identity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Spread requests across shards with an atomic cursor (the default):
    /// even load, no caller cooperation needed.
    #[default]
    RoundRobin,
    /// Sticky placement: a request carrying a
    /// [`key`](NormRequest::with_key) always lands on the same shard
    /// (`hash(key) mod shards`), keeping one shard's backend scratch and
    /// buffer pool warm for a hot caller. Requests *without* a key fall
    /// back to round-robin.
    RequestHash,
}

impl Placement {
    /// Every placement policy, for sweeps and CLI help.
    pub const ALL: [Placement; 2] = [Placement::RoundRobin, Placement::RequestHash];

    /// Parse a placement name (`"round-robin"`/`"rr"`,
    /// `"request-hash"`/`"hash"`), case-insensitively — CLI flags and
    /// config files should not care about capitalization. Returns `None`
    /// for anything else.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Some(Placement::RoundRobin),
            "request-hash" | "requesthash" | "hash" => Some(Placement::RequestHash),
            _ => None,
        }
    }

    /// Canonical name (`"round-robin"` / `"request-hash"`).
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::RequestHash => "request-hash",
        }
    }
}

impl core::fmt::Display for Placement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// How urgently a shard's combining queue treats a request. Priority is a
/// *scheduling* property: it decides where a request parks in the waiting
/// line and how the queue-depth bound applies to it — **never output
/// bits** (every request executes the identical plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// The default class: admitted while the shard's waiting line is
    /// below the configured queue depth, served in arrival order.
    #[default]
    Normal,
    /// Jump the combining queue: a high-priority request is inserted
    /// ahead of every parked normal request (but behind earlier
    /// high-priority requests — each class is served in its own arrival
    /// order) and is admitted even when the line is nominally full, up
    /// to a reserved overflow of one extra queue-depth that normal
    /// traffic can never occupy (beyond `2 × depth` waiting requests
    /// even high-priority work is shed with [`NormError::QueueFull`],
    /// so backpressure stays bounded). Quota policy for *who may use*
    /// this class belongs to the layer above — the network server's
    /// per-tenant admission control.
    High,
}

impl Priority {
    /// Every priority class, for sweeps and CLI help.
    pub const ALL: [Priority; 2] = [Priority::Normal, Priority::High];

    /// Parse a priority name (`"normal"`, `"high"`), case-insensitively.
    /// Returns `None` for anything else.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }

    /// Canonical name (`"normal"` / `"high"`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One unit of normalization work: row-major data with stride `d`, plus
/// an optional placement key.
///
/// Bits are the service's exchange currency (every format stores one `u32`
/// per element); native `f32` slices are accepted as a convenience for
/// FP32-shaped serving traffic — for an FP32 service they are re-tagged
/// bit for bit, for FP16/BF16 they are rounded into the format. A
/// [`key`](NormRequest::with_key) makes the request sticky under
/// [`Placement::RequestHash`]; services on any other placement ignore it.
#[derive(Debug, Clone, Copy)]
pub struct NormRequest<'a> {
    payload: Payload<'a>,
    key: Option<u64>,
    priority: Priority,
    kind: RequestKind,
}

/// Which workload a [`NormRequest`] carries. Both kinds ride the same
/// shard queues, coalescing rounds, tickets and backpressure; they differ
/// only in how the payload is interpreted (independent `d`-length rows vs
/// one `m × d` group) and which executor serves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestKind {
    /// Row-wise normalization: every `d`-length row is independent.
    #[default]
    Normalize,
    /// Group whitening: the payload is one `m × d` group, whitened as a
    /// unit with the service's [`WhitenSpec`] (Newton–Schulz `Σ^{-1/2}`).
    Whiten,
}

/// The two accepted payload encodings.
#[derive(Debug, Clone, Copy)]
enum Payload<'a> {
    /// Row-major storage bit patterns (`rows × d` elements).
    Bits(&'a [u32]),
    /// Row-major native `f32` values (`rows × d` elements).
    F32(&'a [f32]),
}

impl<'a> NormRequest<'a> {
    /// Request over raw storage bit patterns.
    pub fn bits(data: &'a [u32]) -> Self {
        NormRequest {
            payload: Payload::Bits(data),
            key: None,
            priority: Priority::Normal,
            kind: RequestKind::Normalize,
        }
    }

    /// Request over native `f32` values.
    pub fn f32(data: &'a [f32]) -> Self {
        NormRequest {
            payload: Payload::F32(data),
            key: None,
            priority: Priority::Normal,
            kind: RequestKind::Normalize,
        }
    }

    /// A whitening request: `data` is one row-major `m × d` group of
    /// storage bit patterns, whitened as a unit under the service's
    /// [`WhitenSpec`] ([`ServiceConfig::with_whiten`]). Rides the same
    /// shard queues, coalescing rounds, tickets and stats as
    /// normalization traffic.
    pub fn whiten_group(data: &'a [u32]) -> Self {
        NormRequest {
            payload: Payload::Bits(data),
            key: None,
            priority: Priority::Normal,
            kind: RequestKind::Whiten,
        }
    }

    /// [`whiten_group`](NormRequest::whiten_group) over native `f32`
    /// values (re-tagged bit for bit on FP32 services, rounded in on
    /// narrower formats).
    pub fn whiten_group_f32(data: &'a [f32]) -> Self {
        NormRequest {
            payload: Payload::F32(data),
            key: None,
            priority: Priority::Normal,
            kind: RequestKind::Whiten,
        }
    }

    /// Same request tagged with a placement key. Under
    /// [`Placement::RequestHash`] every request with the same key lands on
    /// the same shard ([`NormService::shard_for`] tells you which);
    /// under [`Placement::RoundRobin`] the key is ignored. Keys never
    /// affect output bits.
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// The placement key, if one was set with
    /// [`with_key`](NormRequest::with_key).
    pub fn key(&self) -> Option<u64> {
        self.key
    }

    /// Same request in the given scheduling class.
    /// [`Priority::High`] requests jump the shard's combining queue and
    /// may use its reserved overflow region (see [`Priority`]); priority
    /// never affects output bits.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The request's scheduling class ([`Priority::Normal`] unless set
    /// with [`with_priority`](NormRequest::with_priority)).
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The workload this request carries ([`RequestKind::Normalize`]
    /// unless built with one of the `whiten_group` constructors).
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Number of `u32`/`f32` elements in the request.
    pub fn len(&self) -> usize {
        match self.payload {
            Payload::Bits(b) => b.len(),
            Payload::F32(v) => v.len(),
        }
    }

    /// `true` when the request carries no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode into the service's storage bits, writing into a (possibly
    /// pooled) buffer. FP32 keeps `f32` payloads bit for bit; narrower
    /// formats round each value in.
    fn encode_into(&self, format: FormatKind, out: &mut Vec<u32>) {
        out.clear();
        match self.payload {
            Payload::Bits(b) => out.extend_from_slice(b),
            Payload::F32(v) => match format {
                FormatKind::Fp32 => out.extend(v.iter().map(|x| x.to_bits())),
                _ => out.extend(v.iter().map(|&x| format.encode_f64(f64::from(x)))),
            },
        }
    }

    /// Encode without copying when the request already carries storage
    /// bits — the uncontended submit path borrows the caller's buffer for
    /// the duration of the backend call.
    fn encode_cow(&self, format: FormatKind) -> Cow<'a, [u32]> {
        match self.payload {
            Payload::Bits(b) => Cow::Borrowed(b),
            Payload::F32(_) => {
                let mut owned = Vec::new();
                self.encode_into(format, &mut owned);
                Cow::Owned(owned)
            }
        }
    }
}

/// A lease/return free list of `u32` buffers: response buffers and the
/// coalescer's round-scoped scratch are leased here and handed back when
/// done (a [`NormResponse`] returns its buffer on drop), closing the
/// per-request allocation overhead on large uncontended requests. One
/// pool per shard, so the free-list lock never couples shards. A
/// poisoned free-list lock is recovered by skipping the pool (allocation
/// fallback) — the pool is an optimization, never a correctness
/// dependency.
#[derive(Debug)]
struct BufferPool {
    enabled: bool,
    free: Mutex<Vec<Vec<u32>>>,
}

impl BufferPool {
    /// Buffers retained at most; beyond this, returns are dropped.
    const MAX_POOLED: usize = 32;

    /// Largest per-buffer capacity (in `u32`s) worth retaining — 4 MiB.
    /// Without this cap, one burst of huge requests would pin
    /// `MAX_POOLED × largest-request` bytes per shard for the service's
    /// lifetime (Vec capacity never shrinks on reuse).
    const MAX_POOLED_CAPACITY: usize = 1 << 20;

    fn new(enabled: bool) -> Self {
        BufferPool {
            enabled,
            free: Mutex::new(Vec::new()),
        }
    }

    /// A zeroed buffer of exactly `len` elements, reusing a returned
    /// buffer's capacity when one is available.
    fn lease(&self, len: usize) -> Vec<u32> {
        let mut buf = if self.enabled {
            self.free
                .lock()
                .map(|mut free| free.pop())
                .unwrap_or_default()
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Return a leased buffer's capacity to the free list.
    fn give_back(&self, buf: Vec<u32>) {
        if !self.enabled || buf.capacity() == 0 || buf.capacity() > Self::MAX_POOLED_CAPACITY {
            return;
        }
        if let Ok(mut free) = self.free.lock() {
            if free.len() < Self::MAX_POOLED {
                free.push(buf);
            }
        }
    }
}

/// The result of one request: normalized storage bits plus metadata about
/// how the request was executed (useful for observing coalescing). On drop
/// the bit buffer is returned to the service's pool for reuse.
#[derive(Debug, Clone)]
#[must_use = "a NormResponse carries the normalized bits and returns its buffer to the pool"]
pub struct NormResponse {
    bits: Vec<u32>,
    pool: Arc<BufferPool>,
    format: FormatKind,
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
    elapsed: Duration,
    simd: SimdLevel,
}

impl Drop for NormResponse {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.bits));
    }
}

impl NormResponse {
    /// The normalized rows as storage bit patterns, row-major.
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// Consume the response, keeping the bit buffer (it is then owned by
    /// the caller and no longer returns to the service's pool).
    pub fn into_bits(mut self) -> Vec<u32> {
        std::mem::take(&mut self.bits)
    }

    /// Number of rows in this request.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total rows of the backend batch this request executed in
    /// (`>= rows()`; larger means the request was coalesced).
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Number of requests that shared the backend batch (1 = ran alone).
    pub fn batch_requests(&self) -> usize {
        self.batch_requests
    }

    /// The *resolved* SIMD level the serving backend runs — never
    /// [`SimdLevel::Auto`]; [`SimdLevel::Scalar`] for the generic engine.
    /// Metadata only: output bits are identical at every level.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Wall-clock time of this request **measured from acceptance to
    /// response construction**: the span starts after shape validation
    /// passes (a rejected request is never timed) and covers queueing,
    /// any coalescing window, backend execution and the result copy.
    /// For aggregate queue-wait vs execute accounting — which this
    /// all-in span deliberately does not separate — see
    /// [`ServiceStats::queue_wait`] and [`ServiceStats::execute`].
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The output decoded to `f64` (exact widening of every format).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| self.format.decode_f64(b))
            .collect()
    }

    /// The output as native `f32` values (exact for FP32 services; for
    /// FP16/BF16 this is the exact widening of the narrow result).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self.format {
            FormatKind::Fp32 => self.bits.iter().map(|&b| f32::from_bits(b)).collect(),
            _ => self
                .bits
                .iter()
                .map(|&b| self.format.decode_f64(b) as f32)
                .collect(),
        }
    }
}

/// Counters describing how a service has executed its traffic so far.
/// For a sharded service this is the aggregate over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (valid shape, not rejected at the door).
    pub requests: u64,
    /// Backend batch calls issued.
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total rows normalized.
    pub rows: u64,
    /// Requests rejected with [`NormError::QueueFull`] because their
    /// shard's waiting line was at the configured depth. Blocking and
    /// async submissions are counted alike — both are admitted through
    /// the same per-shard bound.
    pub queue_full_rejections: u64,
    /// [`NormTicket`]s dropped before their result was taken. The
    /// abandoned request still executes (it was already accepted), but
    /// its response buffer goes straight back to the shard's pool instead
    /// of to a caller — a steadily growing count means some caller is
    /// submitting work it never collects.
    pub abandoned_tickets: u64,
    /// Cumulative time accepted requests spent between acceptance and the
    /// start of the backend execution that served them, **measured at the
    /// worker**: the resident driver stamps the moment its backend call
    /// begins, so the span covers queueing, any coalescing window, the
    /// driver hand-off and the backend-lock wait — and nothing of the
    /// execution itself. Summed per request; like
    /// [`rows`](ServiceStats::rows), counted only for requests whose
    /// backend call actually ran.
    pub queue_wait: Duration,
    /// Cumulative wall time spent inside backend batch calls (the
    /// normalize call itself, after the backend lock was acquired).
    /// Summed per batch, so `queue_wait + execute` does not double-count
    /// a coalesced batch's execution once per member request.
    pub execute: Duration,
    /// Accepted requests that were whitening groups
    /// ([`NormRequest::whiten_group`]) — a subset of
    /// [`requests`](ServiceStats::requests), so normalization traffic is
    /// `requests − whiten_requests`.
    pub whiten_requests: u64,
    /// Rows whitened — a subset of [`rows`](ServiceStats::rows), counted
    /// the same way (only for requests whose backend call actually ran).
    pub whiten_rows: u64,
    /// Cumulative wall time the resident shard drivers spent awake —
    /// draining queues, waiting out coalescing windows, executing rounds
    /// and firing completion callbacks. With
    /// [`worker_idle`](ServiceStats::worker_idle) this is the executor's
    /// utilization split.
    pub worker_busy: Duration,
    /// Cumulative wall time the resident shard drivers spent parked
    /// waiting for work — executor headroom. An idle service accumulates
    /// only idle time.
    pub worker_idle: Duration,
    /// Times a resident worker (shard driver or partition helper) was
    /// woken from its park. A service with no traffic accumulates ~none:
    /// the resident pool never busy-spins.
    pub worker_wakeups: u64,
    /// [`NormTicket::on_ready`] callbacks that panicked. The panic is
    /// contained in the driver (it never takes the executor down); a
    /// growing count means some caller's completion handler is buggy.
    pub waker_panics: u64,
}

impl ServiceStats {
    /// Fold another shard's counters into this aggregate.
    fn merge(&mut self, other: &ServiceStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.coalesced_requests += other.coalesced_requests;
        self.rows += other.rows;
        self.queue_full_rejections += other.queue_full_rejections;
        self.abandoned_tickets += other.abandoned_tickets;
        self.queue_wait += other.queue_wait;
        self.execute += other.execute;
        self.whiten_requests += other.whiten_requests;
        self.whiten_rows += other.whiten_rows;
        self.worker_busy += other.worker_busy;
        self.worker_idle += other.worker_idle;
        self.worker_wakeups += other.worker_wakeups;
        self.waker_panics += other.waker_panics;
    }

    /// Freeze these counters into the stable export form every external
    /// consumer (metrics text, bench JSON) reads. Durations become
    /// microseconds so the snapshot is plain integers end to end.
    pub fn snapshot(&self) -> ServiceStatsSnapshot {
        let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        ServiceStatsSnapshot {
            requests: self.requests,
            batches: self.batches,
            coalesced_requests: self.coalesced_requests,
            rows: self.rows,
            queue_full_rejections: self.queue_full_rejections,
            abandoned_tickets: self.abandoned_tickets,
            queue_wait_us: us(self.queue_wait),
            execute_us: us(self.execute),
            whiten_requests: self.whiten_requests,
            whiten_rows: self.whiten_rows,
            worker_busy_us: us(self.worker_busy),
            worker_idle_us: us(self.worker_idle),
            worker_wakeups: self.worker_wakeups,
            waker_panics: self.waker_panics,
        }
    }
}

/// A stable, explicitly named snapshot of [`ServiceStats`] for export.
///
/// This is the *one* bridge between the service's counters and anything
/// serialized outside the process — the network server's `/metrics` text
/// and the bench suite's `BENCH_server.json` both iterate
/// [`fields`](ServiceStatsSnapshot::fields) rather than naming counters
/// ad hoc, so the two formats cannot silently drift apart (or from the
/// counters themselves) when a field is added or renamed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "a stats snapshot is pure data; dropping it unread observed nothing"]
pub struct ServiceStatsSnapshot {
    /// Requests accepted (valid shape, not rejected at the door).
    pub requests: u64,
    /// Backend batch calls issued.
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total rows normalized.
    pub rows: u64,
    /// Requests shed with [`NormError::QueueFull`].
    pub queue_full_rejections: u64,
    /// [`NormTicket`]s dropped before their result was taken.
    pub abandoned_tickets: u64,
    /// Cumulative queue wait (acceptance → backend execution start), µs.
    pub queue_wait_us: u64,
    /// Cumulative backend execution wall time, µs.
    pub execute_us: u64,
    /// Accepted whitening-group requests (subset of `requests`).
    pub whiten_requests: u64,
    /// Rows whitened (subset of `rows`).
    pub whiten_rows: u64,
    /// Cumulative resident-driver awake time, µs.
    pub worker_busy_us: u64,
    /// Cumulative resident-driver parked time, µs.
    pub worker_idle_us: u64,
    /// Resident worker (driver + partition helper) park wake-ups.
    pub worker_wakeups: u64,
    /// Contained [`NormTicket::on_ready`] callback panics.
    pub waker_panics: u64,
}

impl ServiceStatsSnapshot {
    /// Every counter as a `(name, value)` pair, in a fixed order.
    /// Exporters iterate this instead of naming fields, so field coverage
    /// is total by construction.
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("requests", self.requests),
            ("batches", self.batches),
            ("coalesced_requests", self.coalesced_requests),
            ("rows", self.rows),
            ("queue_full_rejections", self.queue_full_rejections),
            ("abandoned_tickets", self.abandoned_tickets),
            ("queue_wait_us", self.queue_wait_us),
            ("execute_us", self.execute_us),
            ("whiten_requests", self.whiten_requests),
            ("whiten_rows", self.whiten_rows),
            ("worker_busy_us", self.worker_busy_us),
            ("worker_idle_us", self.worker_idle_us),
            ("worker_wakeups", self.worker_wakeups),
            ("waker_panics", self.waker_panics),
        ]
    }
}

/// The scalar `1/√m` iteration trace, widened to `f64` — what the CLI's
/// `rsqrt` subcommand reports. See [`NormService::rsqrt_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarTrace {
    /// `m` after rounding into the service's format.
    pub m: f64,
    /// The exponent-derived seed `a₀` (paper Eq. 6).
    pub a0: f64,
    /// The exponent-derived rate λ (paper Eq. 10).
    pub lambda: f64,
    /// The iterate after each step.
    pub steps: Vec<f64>,
}

/// Why a slot's request failed: an ordinary error, or the payload of a
/// panic the executing driver caught. A contained panic is delivered to
/// exactly one waiter — the failed round's first *blocking* submitter,
/// whose submit call re-raises it on the submitting thread (panics never
/// silently vanish into a worker); every other waiter of the round sees
/// [`NormError::ServiceShutdown`].
enum SlotFail {
    Err(NormError),
    Panic(Box<dyn Any + Send>),
}

impl SlotFail {
    /// The error a ticket reports: a ticket cannot re-raise a contained
    /// panic into its submitter (that thread has long moved on), so it
    /// observes the shutdown the panic caused instead.
    fn into_error(self) -> NormError {
        match self {
            SlotFail::Err(err) => err,
            SlotFail::Panic(_) => NormError::ServiceShutdown,
        }
    }
}

type SlotOutcome = Result<SlotResult, SlotFail>;

/// A ticket's completion callback, handed to the driver by
/// [`Slot::fill`] and invoked outside every service lock.
type ReadyWaker = Box<dyn FnOnce() + Send>;

struct SlotResult {
    bits: Vec<u32>,
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
}

/// What one combining round executed (for the driver's stats update).
/// A mixed round issues up to two backend calls — one per
/// [`RequestKind`] — so the batch count is carried here instead of being
/// assumed to be one.
#[derive(Default)]
struct RoundStats {
    batches: u64,
    coalesced_requests: u64,
    rows: u64,
    whiten_rows: u64,
    queue_wait: Duration,
    execute: Duration,
}

impl RoundStats {
    fn absorb(&mut self, sub: RoundStats) {
        self.batches += sub.batches;
        self.coalesced_requests += sub.coalesced_requests;
        self.rows += sub.rows;
        self.whiten_rows += sub.whiten_rows;
        self.queue_wait += sub.queue_wait;
        self.execute += sub.execute;
    }
}

/// A successful backend call's timing: when execution actually began
/// (after the backend lock was acquired, so callers charge lock waits to
/// queue-wait) and how long the call itself ran.
struct Executed {
    exec_start: Instant,
    execute: Duration,
}

/// Where a served request's bits land. [`NormService::submit_into`]
/// writes into the caller's pre-validated buffer; [`NormService::submit`]
/// leases from the shard pool — lazily, at delivery time, so admission
/// rejections (shutdown, [`NormError::QueueFull`]) never pay
/// request-sized work on the fail-fast path.
enum Sink<'a> {
    /// A caller-provided buffer of exactly the request's length.
    Caller(&'a mut [u32]),
    /// A pool lease materialized on first use.
    Leased(&'a mut Vec<u32>),
}

impl Sink<'_> {
    /// The destination slice, leasing it now if this sink is pooled.
    fn buf(&mut self, pool: &BufferPool, len: usize) -> &mut [u32] {
        match self {
            Sink::Caller(out) => out,
            Sink::Leased(vec) => {
                if vec.len() != len {
                    **vec = pool.lease(len);
                }
                vec.as_mut_slice()
            }
        }
    }
}

/// What the shared submission protocol reports back to the public entry
/// points: the request's own rows plus how it was executed.
struct Served {
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
}

/// Deliver a round-served result into the caller's sink. A pooled sink
/// takes ownership of the result buffer outright — zero copy, zero pool
/// traffic; a caller-provided buffer gets a copy and the result buffer
/// returns to the pool.
fn finish(result: SlotResult, sink: &mut Sink<'_>, pool: &BufferPool) -> Result<Served, NormError> {
    let served = Served {
        rows: result.rows,
        batch_rows: result.batch_rows,
        batch_requests: result.batch_requests,
    };
    match sink {
        Sink::Caller(out) => {
            out.copy_from_slice(&result.bits);
            pool.give_back(result.bits);
        }
        Sink::Leased(vec) => **vec = result.bits,
    }
    Ok(served)
}

/// One waiting submitter's mailbox. Filled by the shard's resident
/// driver when its round serves the request; parked waiters are woken
/// through the shard-level condvar (`Shard::queue_cv`), not per slot.
/// The slot lock protects plain one-shot state, so a poisoned guard is
/// recovered and used as-is — a panic cannot leave that state
/// inconsistent.
///
/// The `abandoned` flag is the async path's leak guard: a [`NormTicket`]
/// dropped before its round ran sets it, and the eventual [`fill`](Slot::fill)
/// then returns the result buffer to the shard's pool instead of parking
/// it in a mailbox nobody will ever read.
///
/// The `waker` is the waker-native ticket seam
/// ([`NormTicket::on_ready`] / [`TicketSet`]): exactly one of
/// [`fill`](Slot::fill) and [`set_waker`](Slot::set_waker) hands the
/// callback back to its caller for invocation (whichever runs second
/// under the slot lock), so a registered waker fires exactly once no
/// matter how registration races completion.
struct Slot {
    state: Mutex<SlotState>,
    /// The shard pool an abandoned outcome's buffer returns to.
    pool: Arc<BufferPool>,
}

#[derive(Default)]
struct SlotState {
    outcome: Option<SlotOutcome>,
    abandoned: bool,
    waker: Option<ReadyWaker>,
}

impl Slot {
    fn new(pool: Arc<BufferPool>) -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::default()),
            pool,
        })
    }

    /// Deliver the outcome. Returns a registered waker for the caller to
    /// invoke **after releasing its own locks** — the callback is caller
    /// code and must never run under a shard lock.
    #[must_use = "a returned waker must be invoked (outside all locks)"]
    fn fill(&self, outcome: SlotOutcome) -> Option<ReadyWaker> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.abandoned {
            // Nobody will take this result: recycle its buffer now.
            if let Ok(result) = outcome {
                self.pool.give_back(result.bits);
            }
            return None;
        }
        state.outcome = Some(outcome);
        state.waker.take()
    }

    /// Register a completion callback. If the outcome already arrived,
    /// the waker is handed straight back for the caller to invoke (it is
    /// never stored *and* fired) — the exactly-once contract.
    #[must_use = "a returned waker must be invoked (the outcome is already here)"]
    fn set_waker(&self, waker: ReadyWaker) -> Option<ReadyWaker> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.outcome.is_some() || state.abandoned {
            return Some(waker);
        }
        state.waker = Some(waker);
        None
    }

    fn take(&self) -> Option<SlotOutcome> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .outcome
            .take()
    }

    /// Mark the slot abandoned (its ticket was dropped), returning any
    /// already-delivered outcome so the caller can recycle its buffer.
    fn abandon(&self) -> Option<SlotOutcome> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.abandoned = true;
        state.waker = None;
        state.outcome.take()
    }
}

/// How a pending entry's submitter waits for its outcome — the driver
/// uses this during panic delivery to pick the one *blocking* waiter
/// whose thread re-raises the payload ([`NormTicket`] holders observe
/// [`NormError::ServiceShutdown`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    /// A [`NormService::submit`]/`submit_into` caller parked on the
    /// shard's `queue_cv`.
    Blocking,
    /// A [`NormService::submit_async`] ticket — collected later, maybe
    /// never.
    Ticket,
}

/// A request parked in a shard's combining queue. Entries keep their
/// class so a new high-priority arrival can find the end of the high
/// prefix — the queue is always high-class entries first, each class in
/// arrival order.
struct PendingEntry {
    bits: Vec<u32>,
    slot: Arc<Slot>,
    accepted: Instant,
    priority: Priority,
    kind: RequestKind,
    waiter: Waiter,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<PendingEntry>,
    /// Arrival-rate estimator backing adaptive coalescing; `None` when
    /// the service was built without [`ServiceConfig::with_adaptive_window`].
    estimator: Option<ArrivalRateEstimator>,
    /// The estimator's latest verdict, stamped by `enqueue` so the driver
    /// reads a plain bool instead of re-deriving rate state.
    window_open: bool,
    /// Set by panic delivery: the shard's backend tore mid-round. The
    /// driver stops opening windows and fails everything it drains.
    failed: bool,
    stats: ServiceStats,
}

impl QueueState {
    /// Requests genuinely *waiting* — what the queue-depth bound applies
    /// to. The driver drains entries out of `pending` before executing
    /// them, so an in-flight round never occupies a waiting-line slot.
    fn waiting(&self) -> usize {
        self.pending.len()
    }
}

/// One independent backend + combining-queue + buffer-pool instance,
/// served by its own resident driver thread.
struct Shard {
    queue: Mutex<QueueState>,
    /// Wakes waiting submitters when a round completes and their slot may
    /// be filled.
    queue_cv: Condvar,
    /// Wakes the shard's resident driver: new work arrived, or shutdown
    /// was requested. Separate from `queue_cv` so submitter wakeups never
    /// stampede the driver and vice versa.
    work_cv: Condvar,
    /// The shard's resident partition helpers (`shard_threads − 1` of
    /// them; the driver itself is the last lane). Spawned once at build,
    /// parked when idle, joined on drop.
    runner: PartitionPool,
    backend: Mutex<Box<dyn NormBackend>>,
    /// The shard's whitening executor, built from the config on the first
    /// whitening request this shard sees (`None` until then — a service
    /// that never whitens never builds one). Own mutex so whitening
    /// rounds and custom-backend services stay decoupled from the
    /// normalization backend lock.
    whiten: Mutex<Option<Box<dyn WhitenExec>>>,
    /// Shard-local buffer pool; responses hold an [`Arc`] to it so a
    /// buffer always returns to the shard that leased it.
    pool: Arc<BufferPool>,
}

/// The service's shared state — everything the resident drivers, the
/// submitters and outstanding [`NormTicket`]s reference. Tickets hold
/// `Arc<Core>` directly (not the [`Inner`] wrapper) so an outstanding
/// ticket never keeps driver threads alive past the last service handle.
struct Core {
    config: ServiceConfig,
    label: String,
    /// Test-oriented whitening-executor factory: when set (via
    /// [`ServiceConfig::build_with_backends_and_whiten`]), `whiten_of`
    /// builds through it instead of the config. Lets resilience tests
    /// inject executors that panic mid-whitening; `None` in production.
    make_whiten: Option<Box<dyn Fn() -> Box<dyn WhitenExec> + Send + Sync>>,
    /// The resolved SIMD level of shard 0's backend (uniform across
    /// shards), stamped onto every response.
    simd_level: SimdLevel,
    /// Time source for the arrival-rate estimator — [`RealClock`] in
    /// production, a [`TestClock`](crate::TestClock) in the adaptive
    /// determinism suite.
    clock: Arc<dyn Clock>,
    shards: Vec<Shard>,
    /// Round-robin placement cursor (wraps on overflow, which is fine —
    /// placement only needs to spread load, not count).
    next_shard: AtomicUsize,
    /// Service-wide refusal flag: set by [`NormService::shutdown`] and by
    /// poison/panic recovery. Checked at the door of every entry point.
    shutdown: AtomicBool,
}

/// [`Core`] plus the resident driver handles. Dropping the last service
/// handle drops this, which requests shutdown and joins every driver —
/// the spawn-once/join-on-drop half of the thread-hygiene contract.
/// `Deref`s to [`Core`] so service methods read `self.inner.config` etc.
/// without caring about the split.
struct Inner {
    core: Arc<Core>,
    drivers: Vec<JoinHandle<()>>,
}

impl std::ops::Deref for Inner {
    type Target = Core;

    fn deref(&self) -> &Core {
        &self.core
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.core.shards {
            shard.work_cv.notify_all();
            shard.queue_cv.notify_all();
        }
        let me = std::thread::current().id();
        for driver in self.drivers.drain(..) {
            // A waker callback can own the last service clone, putting
            // this drop *on* a driver thread — joining ourselves would
            // deadlock. That driver is already past its round loop (it
            // only runs wakers on the way out of a round) and exits on
            // its own via the shutdown flag; its spawn closure's
            // `Arc<Core>` keeps the shared state alive until then.
            if driver.thread().id() == me {
                continue;
            }
            let _ = driver.join();
        }
    }
}

impl Core {
    /// Lock a shard's queue, recovering a poisoned guard. The queue state
    /// is plain data mutated only in short internal critical sections, so
    /// the recovered state is usable — but a poisoned queue lock means
    /// some request panicked mid-protocol, so the service is marked shut
    /// down as a precaution (new work is refused; accepted work drains).
    fn queue_of<'s>(&self, shard: &'s Shard) -> MutexGuard<'s, QueueState> {
        match shard.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.shutdown.store(true, Ordering::SeqCst);
                poisoned.into_inner()
            }
        }
    }

    /// Block on a shard's condvar, recovering a poisoned guard the same
    /// way [`queue_of`](Core::queue_of) does.
    fn wait_on<'s>(
        &self,
        shard: &'s Shard,
        guard: MutexGuard<'s, QueueState>,
    ) -> MutexGuard<'s, QueueState> {
        match shard.queue_cv.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.shutdown.store(true, Ordering::SeqCst);
                poisoned.into_inner()
            }
        }
    }

    /// [`wait_on`](Core::wait_on) bounded by `timeout` — the building
    /// block of [`NormTicket::wait_timeout`]. Spurious wakeups and
    /// timeouts look the same to the caller (a returned guard); the
    /// caller re-checks its deadline against the clock.
    fn wait_timeout_on<'s>(
        &self,
        shard: &'s Shard,
        guard: MutexGuard<'s, QueueState>,
        timeout: Duration,
    ) -> MutexGuard<'s, QueueState> {
        match shard.queue_cv.wait_timeout(guard, timeout) {
            Ok((guard, _)) => guard,
            Err(poisoned) => {
                self.shutdown.store(true, Ordering::SeqCst);
                poisoned.into_inner().0
            }
        }
    }

    /// Lock a shard's backend. A poisoned backend mutex means a backend
    /// call panicked and may have left internal scratch mid-mutation —
    /// executing on it could produce wrong bits, so the service is marked
    /// shut down and the request fails with
    /// [`NormError::ServiceShutdown`] instead.
    #[allow(clippy::type_complexity)]
    fn backend_of<'s>(
        &self,
        shard: &'s Shard,
    ) -> Result<MutexGuard<'s, Box<dyn NormBackend>>, NormError> {
        match shard.backend.lock() {
            Ok(guard) => Ok(guard),
            Err(_) => {
                self.shutdown.store(true, Ordering::SeqCst);
                for other in &self.shards {
                    other.queue_cv.notify_all();
                    other.work_cv.notify_all();
                }
                Err(NormError::ServiceShutdown)
            }
        }
    }

    /// Lock a shard's whitening executor, building it from the config on
    /// first use. Build errors (an impossible backend/format/SIMD combo
    /// for whitening) surface to the whitening submitter only — they do
    /// not shut the service down, and normalization traffic is
    /// unaffected. Poison is handled like [`backend_of`](Core::backend_of):
    /// a panic mid-whitening may have left executor scratch inconsistent.
    #[allow(clippy::type_complexity)]
    fn whiten_of<'s>(
        &self,
        shard: &'s Shard,
    ) -> Result<MutexGuard<'s, Option<Box<dyn WhitenExec>>>, NormError> {
        let mut guard = match shard.whiten.lock() {
            Ok(guard) => guard,
            Err(_) => {
                self.shutdown.store(true, Ordering::SeqCst);
                for other in &self.shards {
                    other.queue_cv.notify_all();
                    other.work_cv.notify_all();
                }
                return Err(NormError::ServiceShutdown);
            }
        };
        if guard.is_none() {
            let config = &self.config;
            *guard = match &self.make_whiten {
                Some(make) => Some(make()),
                None => Some(build_whiten(
                    config.backend,
                    config.format,
                    config.d,
                    config.whiten,
                    config.simd,
                )?),
            };
        }
        Ok(guard)
    }

    /// Fail closed on a state invariant the protocol guarantees but this
    /// call found violated (a slot left unserved by a finished round, a
    /// built whitening executor missing behind a held lock): some thread
    /// panicked mid-protocol in a way poison recovery did not catch, so
    /// shard state can no longer be trusted. Marks the service shut
    /// down, wakes every parked waiter, and returns the error the caller
    /// surfaces — never a panic, which would poison the locks the
    /// recovery helpers just rescued.
    fn torn_state(&self) -> NormError {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.queue_cv.notify_all();
            shard.work_cv.notify_all();
        }
        NormError::ServiceShutdown
    }
}

/// Everything one driver round produced besides filled slots: the
/// counters to fold into the shard stats and the ticket wakers to invoke
/// once every lock is released.
#[derive(Default)]
struct RoundOutput {
    stats: RoundStats,
    wakers: Vec<ReadyWaker>,
}

/// The resident driver loop for shard `idx` — the only thread that
/// drains this shard's combining queue and runs its rounds. Parks on
/// `work_cv` while idle (zero wake-ups over an idle window — the
/// thread-hygiene suite pins this), holds the coalescing window open
/// when the arrival-rate estimator says traffic justifies it, and exits
/// once shutdown is requested *and* the queue is empty — work admitted
/// before shutdown always executes.
fn driver_loop(core: &Core, idx: usize) {
    let shard = &core.shards[idx];
    loop {
        let mut queue = core.queue_of(shard);
        while queue.pending.is_empty() {
            if core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let idle_from = Instant::now();
            queue = match shard.work_cv.wait(queue) {
                Ok(guard) => guard,
                Err(poisoned) => {
                    core.shutdown.store(true, Ordering::SeqCst);
                    poisoned.into_inner()
                }
            };
            queue.stats.worker_wakeups += 1;
            queue.stats.worker_idle += idle_from.elapsed();
        }
        let busy_from = Instant::now();
        // Drain before any window: drained entries leave the waiting
        // line, so the queue-depth bound sees only genuinely waiting
        // requests — an in-flight round never occupies a depth slot.
        let mut entries = std::mem::take(&mut queue.pending);
        let hold_window = !queue.failed
            && core.config.coalescing
            && !core.config.window.is_zero()
            && (queue.estimator.is_none() || queue.window_open)
            && !core.shutdown.load(Ordering::SeqCst);
        if hold_window {
            // Hold the batch open for the configured window so
            // concurrent submitters can join. Arrivals notify `work_cv`
            // and simply re-arm the wait — only the deadline (or
            // shutdown) closes the window.
            if let Some(deadline) = Instant::now().checked_add(core.config.window) {
                loop {
                    let now = Instant::now();
                    if now >= deadline || core.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    queue = match shard.work_cv.wait_timeout(queue, deadline - now) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => {
                            core.shutdown.store(true, Ordering::SeqCst);
                            poisoned.into_inner().0
                        }
                    };
                }
            }
            // Merge the window's arrivals, then restore the class
            // invariant (high first, FIFO within a class) with a stable
            // sort — arrival order within each class is preserved.
            entries.append(&mut queue.pending);
            entries.sort_by_key(|e| matches!(e.priority, Priority::Normal) as u8);
        }
        let failed = queue.failed;
        drop(queue);

        let output = if failed {
            let mut output = RoundOutput::default();
            fail_entries(shard, entries, &mut output.wakers);
            output
        } else {
            run_round(core, shard, entries)
        };
        {
            let mut queue = core.queue_of(shard);
            queue.stats.batches += output.stats.batches;
            queue.stats.rows += output.stats.rows;
            queue.stats.whiten_rows += output.stats.whiten_rows;
            queue.stats.coalesced_requests += output.stats.coalesced_requests;
            queue.stats.queue_wait += output.stats.queue_wait;
            queue.stats.execute += output.stats.execute;
            queue.stats.worker_busy += busy_from.elapsed();
        }
        shard.queue_cv.notify_all();
        // Wakers are caller code: run them after every shard lock is
        // released, contain their panics, and count the containments —
        // one throwing callback must not take down the driver or block
        // the other tickets' callbacks.
        let mut waker_panics = 0u64;
        for waker in output.wakers {
            if catch_unwind(AssertUnwindSafe(waker)).is_err() {
                waker_panics += 1;
            }
        }
        if waker_panics > 0 {
            core.queue_of(shard).stats.waker_panics += waker_panics;
        }
    }
}

/// Fail every entry with [`NormError::ServiceShutdown`], recycling its
/// payload buffer — the drain path for a shard whose backend tore.
fn fail_entries(shard: &Shard, entries: Vec<PendingEntry>, wakers: &mut Vec<ReadyWaker>) {
    for entry in entries {
        let PendingEntry { bits, slot, .. } = entry;
        shard.pool.give_back(bits);
        wakers.extend(slot.fill(Err(SlotFail::Err(NormError::ServiceShutdown))));
    }
}

/// Contain a backend panic caught mid-round: mark the service shut down
/// and the shard failed, wake everything, and deliver the payload to the
/// round's first *blocking* waiter — its submitter re-raises it on its
/// own thread, preserving the panicking-backend contract the resilience
/// suite pins — while every other waiter observes
/// [`NormError::ServiceShutdown`]. If the round held only tickets, the
/// payload is dropped and every ticket reports shutdown.
fn deliver_panic(
    core: &Core,
    shard: &Shard,
    payload: Box<dyn Any + Send>,
    entries: Vec<PendingEntry>,
    wakers: &mut Vec<ReadyWaker>,
) {
    core.shutdown.store(true, Ordering::SeqCst);
    core.queue_of(shard).failed = true;
    for other in &core.shards {
        other.queue_cv.notify_all();
        other.work_cv.notify_all();
    }
    let mut payload = Some(payload);
    for entry in entries {
        let PendingEntry {
            bits, slot, waiter, ..
        } = entry;
        shard.pool.give_back(bits);
        let fail = match payload.take() {
            Some(caught) if waiter == Waiter::Blocking => SlotFail::Panic(caught),
            recovered => {
                payload = recovered;
                SlotFail::Err(NormError::ServiceShutdown)
            }
        };
        wakers.extend(slot.fill(Err(fail)));
    }
}

/// One backend call over `bits` into a caller-provided buffer, spread
/// across the shard's resident partition helpers. The returned
/// [`Executed`] reports when execution began — *after* the backend lock
/// was acquired, so callers charge lock waits to queue-wait, not
/// execution — and how long the call itself took.
fn execute_into(
    core: &Core,
    shard: &Shard,
    bits: &[u32],
    out: &mut [u32],
) -> Result<Executed, NormError> {
    let mut backend = core.backend_of(shard)?;
    let exec_start = Instant::now();
    backend.normalize_batch_runner(bits, out, &shard.runner)?;
    Ok(Executed {
        exec_start,
        execute: exec_start.elapsed(),
    })
}

/// [`execute_into`] for whitening work: one
/// [`WhitenExec::whiten_groups_runner`] call over the concatenated
/// groups (`group_rows[i]` rows each), timed identically.
fn execute_whiten_into(
    core: &Core,
    shard: &Shard,
    bits: &[u32],
    group_rows: &[usize],
    out: &mut [u32],
) -> Result<Executed, NormError> {
    let mut guard = core.whiten_of(shard)?;
    // `whiten_of` guarantees `Some` on `Ok`; `None` here means torn
    // shard state — fail closed instead of panicking under the lock.
    let Some(exec) = guard.as_mut() else {
        return Err(core.torn_state());
    };
    let exec_start = Instant::now();
    exec.whiten_groups_runner(bits, out, group_rows, &shard.runner)?;
    Ok(Executed {
        exec_start,
        execute: exec_start.elapsed(),
    })
}

/// One backend call for a lone request, routed by its kind: a
/// normalization request is `rows` independent rows, a whitening
/// request is one `rows × d` group.
fn execute_request_into(
    core: &Core,
    shard: &Shard,
    kind: RequestKind,
    bits: &[u32],
    rows: usize,
    out: &mut [u32],
) -> Result<Executed, NormError> {
    match kind {
        RequestKind::Normalize => execute_into(core, shard, bits, out),
        RequestKind::Whiten => execute_whiten_into(core, shard, bits, &[rows], out),
    }
}

/// Run one combining round: execute the drained entries, split the
/// output back per caller and fill the waiters' slots. The entries are
/// partitioned by [`RequestKind`] — normalization rows and whitening
/// groups execute through different backend calls, so a mixed round
/// issues one sub-batch per kind present (arrival order preserved within
/// each). Panic-safe: a backend panic is caught and contained via
/// [`deliver_panic`] — the driver thread itself never unwinds.
fn run_round(core: &Core, shard: &Shard, entries: Vec<PendingEntry>) -> RoundOutput {
    let (whiten, norm): (Vec<_>, Vec<_>) = entries
        .into_iter()
        .partition(|entry| entry.kind == RequestKind::Whiten);
    let mut output = RoundOutput::default();
    if !norm.is_empty() {
        let sub = run_subround(
            core,
            shard,
            norm,
            RequestKind::Normalize,
            &mut output.wakers,
        );
        output.stats.absorb(sub);
    }
    if !whiten.is_empty() {
        // A normalization panic earlier in this same round failed the
        // shard; its whitening share must fail too, not execute on torn
        // state.
        if core.queue_of(shard).failed {
            fail_entries(shard, whiten, &mut output.wakers);
        } else {
            let sub = run_subround(core, shard, whiten, RequestKind::Whiten, &mut output.wakers);
            output.stats.absorb(sub);
        }
    }
    output
}

/// Execute one kind's share of a combining round as a single backend
/// call and fill its waiters' slots, collecting any registered ticket
/// wakers into `wakers` for the driver to invoke lock-free.
fn run_subround(
    core: &Core,
    shard: &Shard,
    mut entries: Vec<PendingEntry>,
    kind: RequestKind,
    wakers: &mut Vec<ReadyWaker>,
) -> RoundStats {
    let d = core.config.d;
    let pool = &shard.pool;
    let total: usize = entries.iter().map(|e| e.bits.len()).sum();
    let batch_requests = entries.len();
    let batch_rows = total / d;
    let mut sub = RoundStats {
        batches: 1,
        // Requests share a batch only within their own sub-batch — a
        // lone whitening group riding a round with two normalization
        // requests did not share its backend call with anything.
        coalesced_requests: if batch_requests > 1 {
            batch_requests as u64
        } else {
            0
        },
        ..RoundStats::default()
    };
    let mut succeeded = false;
    if batch_requests == 1 {
        // A lone request needs no concat/split: execute it in place
        // and hand the output buffer to the slot whole, sparing the
        // two batch-sized copies (which dominate for large requests).
        let mut out = pool.lease(total);
        let exec = catch_unwind(AssertUnwindSafe(|| {
            execute_request_into(core, shard, kind, &entries[0].bits, batch_rows, &mut out)
        }));
        // `batch_requests == 1` guarantees exactly one entry; an empty
        // list means another thread tore the round state — fail closed
        // rather than panic on the driver.
        let Some(entry) = entries.pop() else {
            let _ = core.torn_state();
            return sub;
        };
        match exec {
            Ok(Ok(e)) => {
                pool.give_back(entry.bits);
                sub.queue_wait = e.exec_start.duration_since(entry.accepted);
                sub.execute = e.execute;
                succeeded = true;
                wakers.extend(entry.slot.fill(Ok(SlotResult {
                    bits: out,
                    rows: batch_rows,
                    batch_rows,
                    batch_requests: 1,
                })));
            }
            Ok(Err(err)) => {
                // The failed round's leases go back like the
                // multi-request error path's do.
                pool.give_back(entry.bits);
                pool.give_back(out);
                wakers.extend(entry.slot.fill(Err(SlotFail::Err(err))));
            }
            Err(payload) => {
                pool.give_back(out);
                deliver_panic(core, shard, payload, vec![entry], wakers);
            }
        }
    } else {
        let mut input = pool.lease(total);
        let mut offset = 0;
        for entry in &entries {
            input[offset..offset + entry.bits.len()].copy_from_slice(&entry.bits);
            offset += entry.bits.len();
        }
        let mut out = pool.lease(total);
        let exec = catch_unwind(AssertUnwindSafe(|| match kind {
            RequestKind::Normalize => execute_into(core, shard, &input, &mut out),
            RequestKind::Whiten => {
                // Each entry is one group; the concatenated call
                // whitens them independently, so the coalesced bits
                // equal per-request execution exactly like rows do.
                let group_rows: Vec<usize> = entries.iter().map(|e| e.bits.len() / d).collect();
                execute_whiten_into(core, shard, &input, &group_rows, &mut out)
            }
        }));
        pool.give_back(input);
        match exec {
            Ok(Ok(e)) => {
                sub.queue_wait = entries
                    .iter()
                    .map(|entry| e.exec_start.duration_since(entry.accepted))
                    .sum();
                sub.execute = e.execute;
                succeeded = true;
                let mut offset = 0;
                for entry in entries.drain(..) {
                    // Reuse the entry's own payload buffer for its
                    // result slice — it is exactly the right length
                    // and already owned here, so the split-back costs
                    // no pool traffic at all.
                    let mut piece = entry.bits;
                    let len = piece.len();
                    piece.copy_from_slice(&out[offset..offset + len]);
                    wakers.extend(entry.slot.fill(Ok(SlotResult {
                        bits: piece,
                        rows: len / d,
                        batch_rows,
                        batch_requests,
                    })));
                    offset += len;
                }
                pool.give_back(out);
            }
            Ok(Err(err)) => {
                pool.give_back(out);
                for entry in entries.drain(..) {
                    pool.give_back(entry.bits);
                    wakers.extend(entry.slot.fill(Err(SlotFail::Err(err.clone()))));
                }
            }
            Err(payload) => {
                pool.give_back(out);
                deliver_panic(core, shard, payload, entries, wakers);
            }
        }
    }
    if succeeded {
        // Stats count rows actually processed: a failed sub-batch
        // issued a backend call but produced nothing.
        sub.rows = batch_rows as u64;
        if kind == RequestKind::Whiten {
            sub.whiten_rows = batch_rows as u64;
        }
    }
    sub
}

/// The type-erased serving front door: one shared execution point that any
/// number of threads submit normalization work to. Cloning is cheap (the
/// clones share the same shards, plans, scratch and coalescing queues).
/// See the [module docs](self) for the contract and an example.
#[derive(Clone)]
pub struct NormService {
    inner: Arc<Inner>,
}

impl core::fmt::Debug for NormService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NormService")
            .field("label", &self.inner.label)
            .field("d", &self.inner.config.d)
            .field("shards", &self.inner.config.shards)
            .finish_non_exhaustive()
    }
}

impl NormService {
    /// The configuration this service was built from.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The vector length `d`.
    pub fn d(&self) -> usize {
        self.inner.config.d
    }

    /// The format.
    pub fn format(&self) -> FormatKind {
        self.inner.config.format
    }

    /// The backend kind.
    pub fn backend(&self) -> BackendKind {
        self.inner.config.backend
    }

    /// The scale method.
    pub fn method(&self) -> MethodSpec {
        self.inner.config.method
    }

    /// The worker-thread count batch execution partitions across.
    pub fn threads(&self) -> usize {
        self.inner.config.threads
    }

    /// The number of independent shards requests are placed across.
    pub fn shards(&self) -> usize {
        self.inner.config.shards
    }

    /// Combined report label, e.g. `"native-f32/FP32/iterl2[5]"`.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The *resolved* SIMD level this service's backends execute — never
    /// [`SimdLevel::Auto`] (auto is resolved at build time);
    /// [`SimdLevel::Scalar`] when the generic engine runs (forced scalar,
    /// the emulated backend, or a custom backend without a vector path).
    pub fn simd_level(&self) -> SimdLevel {
        self.inner.simd_level
    }

    /// Execution counters so far, aggregated over all shards. The
    /// [`worker_wakeups`](ServiceStats::worker_wakeups) total includes
    /// both driver wake-ups and the resident partition helpers'.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for shard in &self.inner.shards {
            total.merge(&self.inner.queue_of(shard).stats);
            total.worker_wakeups += shard.runner.wakeups();
        }
        total
    }

    /// Refuse all future requests. Requests already accepted are still
    /// completed — the resident drivers execute their remaining queues
    /// before exiting; subsequent [`submit`](NormService::submit) calls
    /// return [`NormError::ServiceShutdown`]. Parked submitters and
    /// drivers are woken so none can miss the flag (see the
    /// shutdown-race stress test in `tests/service_resilience.rs`).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.queue_cv.notify_all();
            shard.work_cv.notify_all();
        }
    }

    /// `true` once [`shutdown`](NormService::shutdown) has been called
    /// (or the service shut itself down recovering from a panic).
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Normalize one request. Blocks until the result is ready; requests
    /// from concurrent submitters may be executed together in one backend
    /// batch (see the [module docs](self)) — the output bits are identical
    /// either way.
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after [`shutdown`](NormService::shutdown)
    /// (or after a panicking request forced the service down),
    /// [`NormError::QueueFull`] when the target shard's waiting line is at
    /// the configured depth, [`NormError::EmptyRequest`] for a zero-row
    /// request, [`NormError::BatchLengthMismatch`] when the data is not
    /// whole `d`-length rows, plus any backend execution error.
    pub fn submit(&self, request: NormRequest<'_>) -> Result<NormResponse, NormError> {
        self.validate_shape(&request)?;
        // Refuse before leasing: a shut-down service must not pay
        // request-sized work on its fail-fast path. (`serve` re-checks —
        // the flag can flip between here and there, harmlessly.)
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(NormError::ServiceShutdown);
        }
        let start = Instant::now();
        let shard = &self.inner.shards[self.pick_shard(request.key())];
        let mut out = Vec::new();
        let served = {
            let mut sink = Sink::Leased(&mut out);
            self.serve(&request, &mut sink, shard)
        };
        match served {
            Ok(served) => Ok(NormResponse {
                bits: out,
                pool: Arc::clone(&shard.pool),
                format: self.inner.config.format,
                rows: served.rows,
                batch_rows: served.batch_rows,
                batch_requests: served.batch_requests,
                elapsed: start.elapsed(),
                simd: self.inner.simd_level,
            }),
            Err(err) => {
                shard.pool.give_back(out);
                Err(err)
            }
        }
    }

    /// [`submit`](NormService::submit) writing the normalized bits into a
    /// caller-provided buffer instead of allocating a response — the
    /// hot-path variant for callers that reuse buffers across calls (the
    /// transformer's forward pass). In per-request mode (coalescing
    /// disabled) bit requests execute straight into `out` with **zero**
    /// service-layer allocations; with coalescing, the request rides a
    /// resident-driver round and the served result is copied into `out`.
    /// Returns the number of rows. Output bits are identical to
    /// [`submit`](NormService::submit).
    ///
    /// # Errors
    ///
    /// The [`submit`](NormService::submit) errors, plus
    /// [`NormError::OutputLengthMismatch`] when `out` differs in length.
    pub fn submit_into(
        &self,
        request: NormRequest<'_>,
        out: &mut [u32],
    ) -> Result<usize, NormError> {
        self.validate_shape(&request)?;
        if out.len() != request.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: request.len(),
                actual: out.len(),
            });
        }
        let shard = &self.inner.shards[self.pick_shard(request.key())];
        Ok(self.serve(&request, &mut Sink::Caller(out), shard)?.rows)
    }

    /// Non-blocking submission: enqueue the request into its shard's
    /// combining queue and return a [`NormTicket`] immediately, without
    /// parking the submitting thread. The caller overlaps its own work
    /// with normalization and collects the result later through
    /// [`NormTicket::try_take`] / [`wait`](NormTicket::wait) /
    /// [`wait_timeout`](NormTicket::wait_timeout) — the pipelining shape
    /// an inference loop wants (submit the next layer's norm, keep
    /// computing, join before the result is needed).
    ///
    /// The ticket composes with every blocking-path mechanism: its request
    /// coalesces into the same resident-driver rounds as blocking submits
    /// (a concurrent [`submit`](NormService::submit) may share its backend
    /// batch), it is admitted through the same per-shard queue-depth
    /// bound — a full shard rejects **here, at enqueue time**, not at
    /// collect time — and the output bits are identical to
    /// [`submit`](NormService::submit) and to serial per-request execution
    /// (enforced by `tests/service_bit_identity.rs`). The payload is
    /// encoded into a pooled buffer before this returns, so the borrowed
    /// request data is free to be reused immediately.
    ///
    /// The shard's resident driver executes the request whether or not
    /// the ticket is ever collected — a dropped, never-collected ticket's
    /// buffers return to the shard pool when its round runs (see
    /// [`NormTicket`]). Event loops that would rather be called than
    /// poll register a callback with [`NormTicket::on_ready`] or collect
    /// many tickets through a [`TicketSet`]. On a service built
    /// [`with_coalescing(false)`](ServiceConfig::with_coalescing) there is
    /// no queue to park in: the request executes synchronously and the
    /// returned ticket is already complete.
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after [`shutdown`](NormService::shutdown),
    /// [`NormError::QueueFull`] when the target shard's waiting line is at
    /// the configured depth, [`NormError::EmptyRequest`] /
    /// [`NormError::BatchLengthMismatch`] for malformed shapes. Execution
    /// errors surface later, from the ticket's collect methods.
    pub fn submit_async(&self, request: NormRequest<'_>) -> Result<NormTicket, NormError> {
        self.validate_shape(&request)?;
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(NormError::ServiceShutdown);
        }
        let rows = request.len() / self.inner.config.d;
        let shard_idx = self.pick_shard(request.key());
        let shard = &self.inner.shards[shard_idx];

        if !self.inner.config.coalescing {
            // Per-request mode has no combining queue to park in: run the
            // request to completion now and hand back a finished ticket.
            let accepted = Instant::now();
            let mut out = Vec::new();
            let served = {
                let mut sink = Sink::Leased(&mut out);
                self.serve(&request, &mut sink, shard)
            };
            let outcome = match served {
                Ok(served) => Ok(NormResponse {
                    bits: out,
                    pool: Arc::clone(&shard.pool),
                    format: self.inner.config.format,
                    rows: served.rows,
                    batch_rows: served.batch_rows,
                    batch_requests: served.batch_requests,
                    elapsed: accepted.elapsed(),
                    simd: self.inner.simd_level,
                }),
                Err(err) => {
                    shard.pool.give_back(out);
                    Err(err)
                }
            };
            return Ok(NormTicket {
                core: Arc::clone(&self.inner.core),
                shard_idx,
                rows,
                delivered: false,
                repr: TicketRepr::Immediate(Some(outcome)),
            });
        }

        let accepted = Instant::now();
        let slot = self.enqueue(shard, &request, accepted, Waiter::Ticket)?;
        Ok(NormTicket {
            core: Arc::clone(&self.inner.core),
            shard_idx,
            rows,
            delivered: false,
            repr: TicketRepr::Queued { slot, accepted },
        })
    }

    /// The shard index [`Placement::RequestHash`] sends `key` to —
    /// deterministic for a fixed key and shard count, so a caller can
    /// predict (and tests can assert) where its keyed traffic lands.
    /// Always in `0..shards()`; on a round-robin service this is what the
    /// placement *would* be if the config switched to request-hash.
    pub fn shard_for(&self, key: u64) -> usize {
        (splitmix64(key) % self.inner.shards.len() as u64) as usize
    }

    /// Placement: keyed requests stick to [`shard_for`](NormService::shard_for)
    /// under [`Placement::RequestHash`]; everything else goes round-robin
    /// via the atomic cursor. Every shard executes the identical plan, so
    /// placement affects only contention, never output bits.
    fn pick_shard(&self, key: Option<u64>) -> usize {
        let n = self.inner.shards.len();
        if n == 1 {
            return 0;
        }
        if let (Placement::RequestHash, Some(key)) = (self.inner.config.placement, key) {
            return self.shard_for(key);
        }
        self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % n
    }

    /// The submission protocol both public entry points share, writing the
    /// normalized bits into `out` (already length-checked by the caller):
    ///
    /// 1. **Per-request mode** (coalescing disabled): one backend call on
    ///    the placed shard, borrowing bit payloads — executed by the
    ///    caller thread directly on the shard's resident partition
    ///    helpers (the driver stays parked; the helpers' idle gate
    ///    serializes concurrent rounds).
    /// 2. **Combining queue**: enqueue (subject to the shard's queue-depth
    ///    bound), then park on the shard condvar until the resident
    ///    driver's round serves us. Submitters never execute queued work
    ///    themselves — the driver is the shard's only round-runner, so
    ///    no submitter is ever held serving other callers' traffic.
    fn serve(
        &self,
        request: &NormRequest<'_>,
        sink: &mut Sink<'_>,
        shard: &Shard,
    ) -> Result<Served, NormError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(NormError::ServiceShutdown);
        }
        let accepted = Instant::now();
        let rows = request.len() / self.inner.config.d;

        if !self.inner.config.coalescing {
            let bits = request.encode_cow(self.inner.config.format);
            let executed = execute_request_into(
                &self.inner.core,
                shard,
                request.kind(),
                &bits,
                rows,
                sink.buf(&shard.pool, request.len()),
            );
            let mut queue = self.inner.queue_of(shard);
            queue.stats.requests += 1;
            queue.stats.batches += 1;
            if request.kind() == RequestKind::Whiten {
                queue.stats.whiten_requests += 1;
            }
            if let Ok(exec) = &executed {
                // Counted on success only: `rows` is rows actually
                // normalized, and the wait runs up to the moment execution
                // began — backend-lock waits charge to queue_wait.
                queue.stats.queue_wait += exec.exec_start.duration_since(accepted);
                queue.stats.rows += rows as u64;
                if request.kind() == RequestKind::Whiten {
                    queue.stats.whiten_rows += rows as u64;
                }
                queue.stats.execute += exec.execute;
            }
            drop(queue);
            executed?;
            return Ok(Served {
                rows,
                batch_rows: rows,
                batch_requests: 1,
            });
        }

        let slot = self.enqueue(shard, request, accepted, Waiter::Blocking)?;
        let mut queue = self.inner.queue_of(shard);
        loop {
            if let Some(outcome) = slot.take() {
                drop(queue);
                return match outcome {
                    Ok(result) => finish(result, sink, &shard.pool),
                    Err(SlotFail::Err(err)) => Err(err),
                    // The round that served us caught a backend panic and
                    // elected this blocking waiter to re-raise it: the
                    // panic surfaces on a submitter thread exactly as it
                    // did when submitters ran rounds themselves.
                    Err(SlotFail::Panic(payload)) => resume_unwind(payload),
                };
            }
            // The driver is guaranteed to serve every admitted entry
            // (enqueue re-checks shutdown under the queue lock), so
            // parking here cannot strand us.
            queue = self.inner.wait_on(shard, queue);
        }
    }

    /// The combining queue's one admission + enqueue protocol, shared by
    /// blocking ([`serve`](NormService::serve)) and async
    /// ([`submit_async`](NormService::submit_async)) submission — the two
    /// paths cannot diverge on depth accounting or stats by construction.
    /// Cheap depth pre-check first (a full shard sheds load without
    /// paying the encode), then the payload is encoded into a pooled
    /// buffer *outside* the queue lock so concurrent submitters'
    /// per-element format conversions overlap instead of serializing,
    /// then a re-check under the lock (the line may have filled while we
    /// encoded) before the entry parks. Returns the entry's mailbox.
    ///
    /// [`Priority::High`] requests are admitted against a relaxed bound
    /// (`2 × depth` — the reserved overflow region normal traffic cannot
    /// touch) and park ahead of every already-waiting normal request but
    /// behind earlier high-priority ones, so the class jumps the line
    /// while staying FIFO within itself.
    fn enqueue(
        &self,
        shard: &Shard,
        request: &NormRequest<'_>,
        accepted: Instant,
        waiter: Waiter,
    ) -> Result<Arc<Slot>, NormError> {
        let depth = self.inner.config.queue_depth;
        let limit = match request.priority() {
            Priority::Normal => depth,
            Priority::High => depth.saturating_mul(2),
        };
        {
            let mut queue = self.inner.queue_of(shard);
            if queue.waiting() >= limit {
                queue.stats.queue_full_rejections += 1;
                return Err(NormError::QueueFull { depth });
            }
        }
        let mut bits = shard.pool.lease(0);
        request.encode_into(self.inner.config.format, &mut bits);
        let slot = Slot::new(Arc::clone(&shard.pool));
        let now = self.inner.clock.now_nanos();
        let mut queue = self.inner.queue_of(shard);
        // Re-checked *under the queue lock*: the driver only exits after
        // observing the shutdown flag under this same lock, so an entry
        // admitted here is guaranteed a live driver to execute it.
        if self.inner.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            shard.pool.give_back(bits);
            return Err(NormError::ServiceShutdown);
        }
        if queue.waiting() >= limit {
            // Shed after all, returning the payload lease.
            queue.stats.queue_full_rejections += 1;
            drop(queue);
            shard.pool.give_back(bits);
            return Err(NormError::QueueFull { depth });
        }
        queue.stats.requests += 1;
        if request.kind() == RequestKind::Whiten {
            queue.stats.whiten_requests += 1;
        }
        // Record admitted arrivals only — rejected traffic must not hold
        // the coalescing window open.
        let state: &mut QueueState = &mut queue;
        if let Some(estimator) = state.estimator.as_mut() {
            state.window_open = estimator.record(now);
        }
        let entry = PendingEntry {
            bits,
            slot: Arc::clone(&slot),
            accepted,
            priority: request.priority(),
            kind: request.kind(),
            waiter,
        };
        match request.priority() {
            Priority::Normal => queue.pending.push(entry),
            // Jump ahead of every waiting normal request but stay FIFO
            // within the class: insert at the end of the high prefix,
            // never at index 0, or sustained high traffic would keep
            // pushing its own oldest request back. Within one drained
            // round batch layout is queue order, so the high-class rows
            // lead the next backend call in arrival order.
            Priority::High => {
                let at = queue
                    .pending
                    .iter()
                    .position(|e| e.priority == Priority::Normal)
                    .unwrap_or(queue.pending.len());
                queue.pending.insert(at, entry);
            }
        }
        drop(queue);
        // Wake the resident driver (it parks on `work_cv`, never on the
        // submitters' `queue_cv`) — an arrival during an open window
        // lands in the batch; otherwise this starts a round.
        shard.work_cv.notify_all();
        Ok(slot)
    }

    /// Normalize exactly one `d`-length row — or whiten exactly one
    /// `m × d` group, for a [`NormRequest::whiten_group`] request —
    /// additionally returning the scalar intermediates ([`RowMoments`]):
    /// the reporting path behind the CLI's `normalize`, `demo` and
    /// `whiten`. For a whitening request the moments are the group's
    /// diagnostics — `mean` is the all-element mean, `m` is `trace(Σ)`
    /// and `scale` is the global `√(1/trace)` folded into the whiten
    /// matrix (see [`WhitenDetail`]). Runs directly on a shard's
    /// executor (never coalesced — the batch path does not surface
    /// per-request stats); the output bits are identical to
    /// [`submit`](NormService::submit). Timing starts after the empty
    /// check, like [`submit`](NormService::submit).
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after shutdown,
    /// [`NormError::EmptyRequest`] for an empty request,
    /// [`NormError::InputLengthMismatch`] when a normalization request is
    /// not exactly one row, [`NormError::GroupShapeMismatch`] when a
    /// whitening request is not whole `d`-length rows.
    pub fn submit_detailed(
        &self,
        request: NormRequest<'_>,
    ) -> Result<(NormResponse, RowMoments), NormError> {
        if request.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(NormError::ServiceShutdown);
        }
        let start = Instant::now();
        let shard = &self.inner.shards[self.pick_shard(request.key())];
        let pool = &shard.pool;
        let mut bits = pool.lease(0);
        request.encode_into(self.inner.config.format, &mut bits);
        let rows = bits.len() / self.inner.config.d.max(1);
        let mut out = pool.lease(bits.len());
        let exec_start;
        let moments = match request.kind() {
            RequestKind::Normalize => {
                let mut backend = match self.inner.backend_of(shard) {
                    Ok(guard) => guard,
                    Err(err) => {
                        pool.give_back(bits);
                        pool.give_back(out);
                        return Err(err);
                    }
                };
                // Timed after the lock lands, like `execute_into`: the
                // wait for the backend belongs to queue_wait, not execute.
                exec_start = Instant::now();
                backend.normalize_row_bits_detailed(&bits, &mut out)
            }
            RequestKind::Whiten => {
                let mut guard = match self.inner.whiten_of(shard) {
                    Ok(guard) => guard,
                    Err(err) => {
                        pool.give_back(bits);
                        pool.give_back(out);
                        return Err(err);
                    }
                };
                // As in `execute_whiten_into`: `None` behind an `Ok`
                // guard is torn state — return the buffers and fail closed.
                let exec = match guard.as_mut() {
                    Some(exec) => exec,
                    None => {
                        pool.give_back(bits);
                        pool.give_back(out);
                        return Err(self.inner.torn_state());
                    }
                };
                exec_start = Instant::now();
                exec.whiten_group_detailed(&bits, &mut out)
                    .map(|detail| RowMoments {
                        mean: detail.mean,
                        m: detail.trace,
                        scale: detail.scale,
                    })
            }
        };
        let execute = exec_start.elapsed();
        pool.give_back(bits);
        let moments = match moments {
            Ok(m) => m,
            Err(err) => {
                pool.give_back(out);
                return Err(err);
            }
        };
        let served_rows = match request.kind() {
            RequestKind::Normalize => 1,
            RequestKind::Whiten => rows,
        };
        let mut queue = self.inner.queue_of(shard);
        queue.stats.requests += 1;
        queue.stats.batches += 1;
        queue.stats.rows += served_rows as u64;
        if request.kind() == RequestKind::Whiten {
            queue.stats.whiten_requests += 1;
            queue.stats.whiten_rows += served_rows as u64;
        }
        queue.stats.queue_wait += exec_start.duration_since(start);
        queue.stats.execute += execute;
        drop(queue);
        Ok((
            NormResponse {
                bits: out,
                pool: Arc::clone(pool),
                format: self.inner.config.format,
                rows: served_rows,
                batch_rows: served_rows,
                batch_requests: 1,
                elapsed: start.elapsed(),
                // The detailed path runs the scalar engine (it reports
                // intermediates), but the service's tier is what callers
                // care about — and bits are identical either way.
                simd: self.inner.simd_level,
            },
            moments,
        ))
    }

    /// Whiten one group directly on shard 0's executor with a
    /// convergence bar — the diagnostic companion of
    /// [`submit_detailed`](NormService::submit_detailed), reporting the
    /// full [`WhitenDetail`] (including the Newton–Schulz residual) and
    /// failing with [`NormError::WhitenNotConverged`] when the residual
    /// misses `tol`. Output bits land in `out` either way (the
    /// unconverged result is inspectable). Bits are identical to
    /// [`NormRequest::whiten_group`] through
    /// [`submit`](NormService::submit).
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after shutdown, the whitening shape
    /// errors, and [`NormError::WhitenNotConverged`].
    pub fn whiten_check(
        &self,
        group_bits: &[u32],
        out: &mut [u32],
        tol: f64,
    ) -> Result<WhitenDetail, NormError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(NormError::ServiceShutdown);
        }
        let shard = &self.inner.shards[0];
        let mut guard = self.inner.whiten_of(shard)?;
        // `whiten_of` guarantees `Some` on `Ok`; fail closed otherwise.
        let Some(exec) = guard.as_mut() else {
            return Err(self.inner.torn_state());
        };
        exec.whiten_group_checked(group_bits, out, tol)
    }

    /// The one-shot compatibility path: normalize one `d`-length row the
    /// way pre-engine callers did — constants re-rounded and buffers
    /// allocated per call, honoring this service's method, reduction
    /// order and affine parameters. Exists so benchmarks (the CLI `batch`
    /// subcommand) can measure the engine against its historical baseline
    /// without re-implementing format dispatch.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyRequest`] for an empty row, plus the shape errors
    /// of [`layer_norm`].
    pub fn normalize_per_call(&self, row_bits: &[u32]) -> Result<Vec<u32>, NormError> {
        if row_bits.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        let config = &self.inner.config;
        with_exec_float!(config.backend, config.format, F => {
            let x: Vec<F> = row_bits.iter().map(|&b| F::from_bits(b)).collect();
            let gamma: Option<Vec<F>> = config
                .gamma_bits
                .as_ref()
                .map(|g| g.iter().map(|&b| F::from_bits(b)).collect());
            let beta: Option<Vec<F>> = config
                .beta_bits
                .as_ref()
                .map(|b| b.iter().map(|&bit| F::from_bits(bit)).collect());
            let mut inputs = LayerNormInputs::unscaled(&x).with_reduce(config.reduce);
            inputs.gamma = gamma.as_deref();
            inputs.beta = beta.as_deref();
            let z = layer_norm(inputs, &config.method.build::<F>())?;
            Ok(z.iter().map(|v| v.to_bits()).collect())
        })
    }

    /// The scalar `1/√m` iteration trace in this service's format and
    /// backend arithmetic (bit-identical between the two backends for
    /// FP32) — the runtime-polymorphic replacement for the CLI's old
    /// per-format `rsqrt` dispatch.
    pub fn rsqrt_trace(&self, m: f64, steps: u32) -> ScalarTrace {
        let config = &self.inner.config;
        with_exec_float!(config.backend, config.format, F => {
            let mf = F::from_f64(m);
            let trace = iterate(mf, &IterConfig::fixed_steps(steps));
            ScalarTrace {
                m: mf.to_f64(),
                a0: trace.a0.to_f64(),
                lambda: trace.lambda.to_f64(),
                steps: trace.steps.iter().map(|a| a.to_f64()).collect(),
            }
        })
    }

    /// Reject malformed requests at the door, before they can touch a
    /// queue — shape errors are therefore independent of coalescing,
    /// sharding and load.
    fn validate_shape(&self, request: &NormRequest<'_>) -> Result<(), NormError> {
        if request.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        let d = self.inner.config.d;
        let len = request.len();
        if !len.is_multiple_of(d) {
            return Err(match request.kind() {
                RequestKind::Normalize => NormError::BatchLengthMismatch {
                    rows: len / d,
                    d,
                    actual: len,
                },
                RequestKind::Whiten => NormError::GroupShapeMismatch {
                    rows: len / d,
                    d,
                    actual: len,
                },
            });
        }
        Ok(())
    }
}

/// How a ticket poll is willing to wait for its outcome.
enum WaitMode {
    /// Return `None` the moment progress would require parking.
    Poll,
    /// Park until the outcome arrives.
    Forever,
    /// Park until the outcome arrives or the deadline passes.
    Until(Instant),
}

/// A ticket's backing state.
enum TicketRepr {
    /// Per-request mode executed the request at submit time; the finished
    /// outcome is parked here until a collect method takes it.
    Immediate(Option<Result<NormResponse, NormError>>),
    /// A combining-queue entry: the slot is filled by the shard's
    /// resident driver when its round serves the request.
    Queued {
        slot: Arc<Slot>,
        /// When the request was accepted — the ticket-side start of the
        /// response's all-in `elapsed()` span.
        accepted: Instant,
    },
}

/// The poll/wait handle returned by [`NormService::submit_async`]: the
/// submitted request's claim on a future [`NormResponse`].
///
/// The ticket's request is executed by its shard's **resident driver** —
/// the ticket never runs rounds itself, so every collect method is pure
/// waiting: [`try_take`](NormTicket::try_take) peeks the mailbox,
/// [`wait`](NormTicket::wait) / [`wait_timeout`](NormTicket::wait_timeout)
/// park on the shard condvar, and [`on_ready`](NormTicket::on_ready)
/// registers a callback the driver invokes the moment the outcome lands
/// (see also [`TicketSet`] for collecting many tickets without polling).
///
/// Dropping a ticket without collecting is safe and leak-free: the
/// request's pooled payload and response buffers return to the shard's
/// pool (immediately if the round already ran, otherwise when it does),
/// and the drop is counted in [`ServiceStats::abandoned_tickets`]. A
/// ticket holds the service's shared state alive, but **not** its driver
/// threads — those are owned by the service handles, so work accepted
/// before the last handle drops still completes (the drivers drain their
/// queues before exiting), and a ticket collected afterwards reads the
/// parked outcome without needing any thread.
///
/// The result is delivered **exactly once**: after any collect method has
/// returned `Some`/`Ok`/`Err`, the ticket is spent and further collect
/// calls panic. See [`NormService::submit_async`] for an example.
#[must_use = "dropping a NormTicket discards the submitted request's result"]
pub struct NormTicket {
    core: Arc<Core>,
    shard_idx: usize,
    rows: usize,
    delivered: bool,
    repr: TicketRepr,
}

impl core::fmt::Debug for NormTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NormTicket")
            .field("shard", &self.shard_idx)
            .field("rows", &self.rows)
            .field("delivered", &self.delivered)
            .finish_non_exhaustive()
    }
}

impl NormTicket {
    /// Number of rows the submitted request carries.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The shard index the request was placed on (see
    /// [`NormService::shard_for`] for the request-hash mapping).
    pub fn shard(&self) -> usize {
        self.shard_idx
    }

    /// Non-blocking poll: `Some` with the request's outcome if the
    /// resident driver has delivered it, `None` while the round is still
    /// pending or in flight. Never parks and never executes work — a
    /// caller that must not poll registers [`on_ready`](NormTicket::on_ready)
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was already taken by a previous collect
    /// call — a spent ticket is a caller bug, not a recoverable state.
    pub fn try_take(&mut self) -> Option<Result<NormResponse, NormError>> {
        self.poll(WaitMode::Poll)
    }

    /// Block until the resident driver delivers the request's outcome
    /// and return it.
    ///
    /// # Errors
    ///
    /// Whatever the request's execution produced — the
    /// [`submit`](NormService::submit) error set, including
    /// [`NormError::ServiceShutdown`] when the service was shut down (or
    /// forced down by a panicking request) before the request executed.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was already taken by a previous collect
    /// call.
    pub fn wait(&mut self) -> Result<NormResponse, NormError> {
        self.poll(WaitMode::Forever)
            // normlint: allow(L001) — infallible by construction: only the
            // Poll/Until modes can return None, Forever always parks until
            // an outcome arrives (and the delivered-twice case is the
            // documented `# Panics` contract, asserted inside poll).
            .expect("WaitMode::Forever parks until the outcome arrives")
    }

    /// [`wait`](NormTicket::wait) bounded by `timeout`: `None` if the
    /// outcome is still pending when the deadline passes. The request
    /// itself is not withdrawn — the driver's round completes it
    /// regardless, and a later collect call picks it up.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was already taken by a previous collect
    /// call.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<NormResponse, NormError>> {
        // A timeout too large for the clock to represent (the
        // `Duration::MAX` "effectively forever" idiom) is an unbounded
        // wait, not an overflow panic.
        let mode = match Instant::now().checked_add(timeout) {
            Some(deadline) => WaitMode::Until(deadline),
            None => WaitMode::Forever,
        };
        self.poll(mode)
    }

    /// The shared collect protocol: check the mailbox, park according to
    /// `mode` until the resident driver fills it.
    fn poll(&mut self, mode: WaitMode) -> Option<Result<NormResponse, NormError>> {
        assert!(
            !self.delivered,
            "NormTicket result already taken; a ticket delivers exactly once"
        );
        let outcome = match &mut self.repr {
            TicketRepr::Immediate(outcome) => Some(
                outcome
                    .take()
                    // normlint: allow(L001) — unreachable: the assert above
                    // rejects a delivered ticket, and an undelivered
                    // immediate ticket holds its outcome by construction.
                    .expect("undelivered immediate ticket holds its outcome"),
            ),
            TicketRepr::Queued { .. } => self.poll_queued(mode),
        };
        if outcome.is_some() {
            self.delivered = true;
        }
        outcome
    }

    /// Register `callback` to run with the completed ticket the moment
    /// its outcome is delivered — the waker-native alternative to
    /// polling. Consumes the ticket; the callback receives it back with
    /// the outcome guaranteed collectable, so
    /// `ticket.try_take()` inside the callback always returns `Some`.
    ///
    /// If the outcome is already there (an immediate per-request-mode
    /// ticket, or a round that completed before registration), the
    /// callback runs **synchronously on this thread** before `on_ready`
    /// returns. Otherwise it runs on the shard's resident driver thread,
    /// after the driver has released every shard lock — the callback may
    /// call back into the service (even drop the last handle; the driver
    /// detaches itself rather than self-join), but it should stay short:
    /// it runs on the thread that serves this shard's traffic.
    ///
    /// A panicking callback is contained by the driver and counted in
    /// [`ServiceStats::waker_panics`]; it never takes the service down.
    /// (A synchronous invocation propagates the panic to this caller
    /// directly — the caller's own code on the caller's own thread.)
    /// The callback fires **exactly once**, no matter how registration
    /// races completion.
    pub fn on_ready(self, callback: impl FnOnce(NormTicket) + Send + 'static) {
        match &self.repr {
            TicketRepr::Immediate(_) => callback(self),
            TicketRepr::Queued { slot, .. } => {
                let slot = Arc::clone(slot);
                let mut ticket = Some(self);
                let mut callback = Some(callback);
                let waker: ReadyWaker = Box::new(move || {
                    if let (Some(ticket), Some(callback)) = (ticket.take(), callback.take()) {
                        callback(ticket);
                    }
                });
                // If the outcome landed before our registration, the slot
                // hands the waker straight back: fire it here.
                if let Some(waker) = slot.set_waker(waker) {
                    waker();
                }
            }
        }
    }

    /// [`on_ready`](NormTicket::on_ready) without consuming the ticket —
    /// the [`TicketSet`] building block. The waker fires exactly once,
    /// possibly synchronously (when the outcome already landed).
    fn register_waker(&self, waker: ReadyWaker) {
        match &self.repr {
            TicketRepr::Immediate(_) => waker(),
            TicketRepr::Queued { slot, .. } => {
                if let Some(waker) = slot.set_waker(waker) {
                    waker();
                }
            }
        }
    }

    /// The combining-queue side of [`poll`](NormTicket::poll). Mirrors the
    /// waiter loop of the blocking path: check the mailbox, park on the
    /// shard condvar until the resident driver's round fills it.
    fn poll_queued(&self, mode: WaitMode) -> Option<Result<NormResponse, NormError>> {
        let TicketRepr::Queued { slot, accepted } = &self.repr else {
            unreachable!("poll_queued is only called on queued tickets");
        };
        let core = &self.core;
        let shard = &core.shards[self.shard_idx];
        let mut queue = core.queue_of(shard);
        loop {
            if let Some(outcome) = slot.take() {
                drop(queue);
                return Some(self.deliver(outcome, *accepted));
            }
            queue = match mode {
                WaitMode::Poll => return None,
                // Admitted entries are always driven to completion (the
                // drivers drain their queues even through shutdown), so
                // parking here cannot strand the collector.
                WaitMode::Forever => core.wait_on(shard, queue),
                WaitMode::Until(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    core.wait_timeout_on(shard, queue, deadline - now)
                }
            };
        }
    }

    /// Wrap a served outcome as the public response, stamping the all-in
    /// elapsed span (acceptance at submit to delivery here).
    fn deliver(&self, outcome: SlotOutcome, accepted: Instant) -> Result<NormResponse, NormError> {
        let result = match outcome {
            Ok(result) => result,
            // Tickets never re-raise a contained panic (the collector may
            // be an event loop that outlives the service); they observe
            // the same clean shutdown error every other waiter gets.
            Err(fail) => return Err(fail.into_error()),
        };
        let shard = &self.core.shards[self.shard_idx];
        Ok(NormResponse {
            bits: result.bits,
            pool: Arc::clone(&shard.pool),
            format: self.core.config.format,
            rows: result.rows,
            batch_rows: result.batch_rows,
            batch_requests: result.batch_requests,
            elapsed: accepted.elapsed(),
            simd: self.core.simd_level,
        })
    }
}

impl Drop for NormTicket {
    fn drop(&mut self) {
        if self.delivered {
            return;
        }
        let shard = &self.core.shards[self.shard_idx];
        match &mut self.repr {
            // The response's own Drop returns its pooled buffer.
            TicketRepr::Immediate(outcome) => drop(outcome.take()),
            TicketRepr::Queued { slot, .. } => {
                // Mark the mailbox abandoned so a still-coming fill
                // recycles its buffer; reclaim an already-delivered one
                // ourselves.
                if let Some(Ok(result)) = slot.abandon() {
                    shard.pool.give_back(result.bits);
                }
            }
        }
        self.core.queue_of(shard).stats.abandoned_tickets += 1;
    }
}

/// The waker-backed ready queue a [`TicketSet`] collects through: each
/// inserted ticket registers a waker that pushes its index here when the
/// resident driver delivers its outcome.
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    fn push(&self, index: usize) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(index);
        self.cv.notify_all();
    }

    fn pop_wait(&self) -> usize {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(index) = queue.pop_front() {
                return index;
            }
            queue = match self.cv.wait(queue) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Collects many [`NormTicket`]s **in completion order, without
/// polling** — the event-loop shape: insert every outstanding ticket,
/// then call [`wait_any`](TicketSet::wait_any) until it returns `None`.
///
/// Each inserted ticket registers a waker (via the same exactly-once slot
/// protocol as [`NormTicket::on_ready`]) that records the ticket's index
/// on an internal ready queue when the resident driver delivers its
/// outcome; `wait_any` parks on that queue instead of spinning over
/// tickets. Tickets from different shards — even different services —
/// mix freely in one set.
///
/// ```
/// use iterl2norm::{NormRequest, ServiceConfig, TicketSet};
///
/// # fn main() -> Result<(), iterl2norm::NormError> {
/// let service = ServiceConfig::new(8).build()?;
/// let data = vec![0x3f80_0000u32; 8];
/// let mut set = TicketSet::new();
/// let a = set.insert(service.submit_async(NormRequest::bits(&data))?);
/// let b = set.insert(service.submit_async(NormRequest::bits(&data))?);
/// let mut seen = Vec::new();
/// while let Some((index, result)) = set.wait_any() {
///     result?;
///     seen.push(index);
/// }
/// seen.sort_unstable();
/// assert_eq!(seen, vec![a, b]);
/// # Ok(())
/// # }
/// ```
pub struct TicketSet {
    tickets: Vec<Option<NormTicket>>,
    ready: Arc<ReadyQueue>,
    outstanding: usize,
}

impl core::fmt::Debug for TicketSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TicketSet")
            .field("outstanding", &self.outstanding)
            .finish_non_exhaustive()
    }
}

impl Default for TicketSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketSet {
    /// An empty set.
    pub fn new() -> Self {
        TicketSet {
            tickets: Vec::new(),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            }),
            outstanding: 0,
        }
    }

    /// Add a ticket, returning its stable index (the handle
    /// [`wait_any`](TicketSet::wait_any) identifies it by). The ticket's
    /// completion waker is registered here — if it already completed,
    /// the index is immediately ready.
    pub fn insert(&mut self, ticket: NormTicket) -> usize {
        let index = self.tickets.len();
        let ready = Arc::clone(&self.ready);
        ticket.register_waker(Box::new(move || ready.push(index)));
        self.tickets.push(Some(ticket));
        self.outstanding += 1;
        index
    }

    /// Tickets inserted but not yet returned by
    /// [`wait_any`](TicketSet::wait_any).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// `true` when every inserted ticket has been collected.
    pub fn is_empty(&self) -> bool {
        self.outstanding == 0
    }

    /// Park until any outstanding ticket completes and return its index
    /// and outcome; `None` once every inserted ticket has been returned.
    /// Completion order, not insertion order — a fast shard's tickets
    /// surface before a slow shard's regardless of when they were
    /// inserted.
    pub fn wait_any(&mut self) -> Option<(usize, Result<NormResponse, NormError>)> {
        loop {
            if self.outstanding == 0 {
                return None;
            }
            let index = self.ready.pop_wait();
            // A waker only fires after its slot's outcome is stored (the
            // same lock serializes both), so a freshly popped index
            // always collects without parking. A `None` entry or `None`
            // take can only follow a duplicate push, which the
            // exactly-once waker protocol rules out — loop rather than
            // trust that with a panic.
            let Some(mut ticket) = self.tickets[index].take() else {
                continue;
            };
            let Some(result) = ticket.try_take() else {
                self.tickets[index] = Some(ticket);
                continue;
            };
            self.outstanding -= 1;
            return Some((index, result));
        }
    }
}

/// A pool of [`NormService`]s over one layer shape: each *site* is a set
/// of affine parameters (one per LayerNorm location in a model), and
/// services are materialized lazily per `(site, method)` and cached — so
/// every forward pass, from any thread, shares the same service objects.
/// This is what the transformer's per-layer cached plans became. The
/// template's sharding/backpressure knobs flow through to every built
/// service.
#[derive(Debug)]
pub struct NormServicePool {
    template: ServiceConfig,
    sites: Vec<Site>,
    cache: Mutex<HashMap<(usize, String), Arc<NormService>>>,
}

#[derive(Debug)]
struct Site {
    gamma_bits: Option<Vec<u32>>,
    beta_bits: Option<Vec<u32>>,
}

impl NormServicePool {
    /// Pool whose services share `template`'s dimension, format, backend,
    /// threads, reduction order and sharding/backpressure knobs (the
    /// template's own affine parameters and method are ignored — sites and
    /// lookups supply those).
    pub fn new(template: ServiceConfig) -> Self {
        NormServicePool {
            template,
            sites: Vec::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Register a normalization site with its affine parameters (storage
    /// bit patterns), returning its id.
    pub fn add_site(&mut self, gamma_bits: Option<&[u32]>, beta_bits: Option<&[u32]>) -> usize {
        self.sites.push(Site {
            gamma_bits: gamma_bits.map(<[u32]>::to_vec),
            beta_bits: beta_bits.map(<[u32]>::to_vec),
        });
        self.sites.len() - 1
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site has been registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared vector length `d`.
    pub fn d(&self) -> usize {
        self.template.d
    }

    /// The service for `(site, method)`, built on first use and shared
    /// afterwards. The cache lock recovers from poisoning (a panic during
    /// a build leaves the map itself intact), so one panicked build never
    /// turns every later lookup into a panic.
    ///
    /// # Errors
    ///
    /// The [`ServiceConfig::build`] errors (a site whose affine lengths
    /// disagree with `d` surfaces here).
    ///
    /// # Panics
    ///
    /// Panics if `site` was never returned by
    /// [`add_site`](NormServicePool::add_site) — a wiring bug, not input.
    pub fn service(&self, site: usize, method: &MethodSpec) -> Result<Arc<NormService>, NormError> {
        assert!(site < self.sites.len(), "unknown norm site {site}");
        let key = (site, method.label());
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(service) = cache.get(&key) {
            return Ok(Arc::clone(service));
        }
        let params = &self.sites[site];
        let mut config = self.template.clone().with_method(*method);
        config.gamma_bits = params.gamma_bits.clone();
        config.beta_bits = params.beta_bits.clone();
        let service = Arc::new(config.build()?);
        cache.insert(key, Arc::clone(&service));
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::build_backend;

    fn row_bits(d: usize, salt: u64) -> Vec<u32> {
        (0..d as u64)
            .map(|i| {
                Fp32::from_f64(
                    (((i.wrapping_mul(2654435761).wrapping_add(salt)) % 1000) as f64) / 250.0 - 2.0,
                )
                .to_bits()
            })
            .collect()
    }

    #[test]
    fn config_validation_errors_surface_at_build() {
        assert_eq!(
            ServiceConfig::new(0).build().unwrap_err(),
            NormError::EmptyInput
        );
        assert_eq!(
            ServiceConfig::new(8).with_threads(0).build().unwrap_err(),
            NormError::ZeroThreads
        );
        assert_eq!(
            ServiceConfig::new(8).with_shards(0).build().unwrap_err(),
            NormError::ZeroShards
        );
        // Depth 0 would reject every request under a window — refused up
        // front instead of misbehaving at runtime.
        assert_eq!(
            ServiceConfig::new(8)
                .with_queue_depth(0)
                .build()
                .unwrap_err(),
            NormError::ZeroQueueDepth
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_backend(BackendKind::Native)
                .with_format(FormatKind::Fp16)
                .build()
                .unwrap_err(),
            NormError::BackendFormatMismatch {
                backend: "native-f32",
                format: "FP16",
            }
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_gamma_bits(&[0; 7])
                .build()
                .unwrap_err(),
            NormError::GammaLengthMismatch {
                expected: 8,
                actual: 7
            }
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_shards(2)
                .with_shard_threads(&[1, 2, 3])
                .build()
                .unwrap_err(),
            NormError::ShardThreadsMismatch {
                shards: 2,
                actual: 3
            }
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_shards(2)
                .with_shard_threads(&[1, 0])
                .build()
                .unwrap_err(),
            NormError::ZeroThreads
        );
        let invalid = AdaptiveWindow {
            interval: Duration::ZERO,
            ..AdaptiveWindow::default()
        };
        assert!(matches!(
            ServiceConfig::new(8)
                .with_adaptive_window(invalid)
                .build()
                .unwrap_err(),
            NormError::InvalidAdaptiveWindow { .. }
        ));
    }

    #[test]
    fn executor_knobs_round_trip_and_build() {
        let config = ServiceConfig::new(8)
            .with_shards(2)
            .with_shard_threads(&[2, 1])
            .with_adaptive_window(AdaptiveWindow::default());
        assert_eq!(config.shard_threads(), Some(&[2usize, 1][..]));
        assert_eq!(
            config.adaptive_window(),
            Some(AdaptiveWindow::default()),
            "adaptive knob reads back"
        );
        assert_eq!(config.shard_thread_count(0), 2);
        assert_eq!(config.shard_thread_count(1), 1);
        let service = config.build().unwrap();
        let bits = row_bits(8, 1);
        let response = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(response.rows(), 1);
        // Without the per-shard override, every shard gets `threads`.
        let uniform = ServiceConfig::new(8).with_threads(3);
        assert_eq!(uniform.shard_threads(), None);
        assert_eq!(uniform.shard_thread_count(0), 3);
    }

    #[test]
    fn config_reports_sharding_and_backpressure_knobs() {
        let config = ServiceConfig::new(8)
            .with_shards(4)
            .with_queue_depth(7)
            .with_buffer_pool(false);
        assert_eq!(config.shards(), 4);
        assert_eq!(config.queue_depth(), 7);
        assert!(!config.buffer_pool());
        let service = config.build().unwrap();
        assert_eq!(service.shards(), 4);
        assert_eq!(service.config().queue_depth(), 7);
        // Defaults: one shard, bounded queue, pooled buffers.
        let default = ServiceConfig::new(8);
        assert_eq!(default.shards(), 1);
        assert_eq!(default.queue_depth(), DEFAULT_QUEUE_DEPTH);
        assert!(default.buffer_pool());
    }

    #[test]
    fn submit_matches_direct_backend_execution() {
        let d = 24;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits: Vec<u32> = (0..3).flat_map(|r| row_bits(d, r)).collect();
        let response = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(response.rows(), 3);
        assert_eq!(response.batch_requests(), 1);

        let mut reference = build_backend(
            BackendKind::Emulated,
            FormatKind::Fp32,
            d,
            &MethodSpec::iterl2(5),
            ReduceOrder::HwTree,
        )
        .unwrap();
        let mut expect = vec![0u32; bits.len()];
        reference
            .normalize_batch_bits(&bits, &mut expect, 1)
            .unwrap();
        assert_eq!(response.bits(), &expect[..]);

        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.queue_full_rejections, 0);
        assert!(stats.execute > Duration::ZERO, "execute time was recorded");
    }

    #[test]
    fn sharded_services_are_bitwise_equivalent_to_single_shard() {
        let d = 24;
        let bits: Vec<u32> = (0..3).flat_map(|r| row_bits(d, r)).collect();
        let expect = ServiceConfig::new(d)
            .build()
            .unwrap()
            .submit(NormRequest::bits(&bits))
            .unwrap()
            .into_bits();
        for shards in [2, 4] {
            for pooled in [true, false] {
                let service = ServiceConfig::new(d)
                    .with_shards(shards)
                    .with_buffer_pool(pooled)
                    .build()
                    .unwrap();
                // Several submits so round-robin visits every shard.
                for _ in 0..2 * shards {
                    let response = service.submit(NormRequest::bits(&bits)).unwrap();
                    assert_eq!(
                        response.bits(),
                        &expect[..],
                        "shards={shards} pooled={pooled}"
                    );
                }
                let stats = service.stats();
                assert_eq!(stats.requests, 2 * shards as u64, "stats aggregate shards");
                assert_eq!(stats.rows, 6 * shards as u64);
            }
        }
    }

    #[test]
    fn pooled_responses_return_buffers_for_reuse() {
        let d = 16;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 3);
        // Drop responses between submits: the pooled buffer must come back
        // with the same contents contract (zeroed lease, full overwrite).
        let first = service
            .submit(NormRequest::bits(&bits))
            .unwrap()
            .into_bits();
        for _ in 0..5 {
            let response = service.submit(NormRequest::bits(&bits)).unwrap();
            assert_eq!(response.bits(), &first[..]);
        }
        // into_bits detaches the buffer from the pool: the caller owns it.
        let owned = service
            .submit(NormRequest::bits(&bits))
            .unwrap()
            .into_bits();
        assert_eq!(owned, first);
    }

    #[test]
    fn f32_requests_match_bits_requests() {
        let d = 16;
        let service = ServiceConfig::new(d)
            .with_backend(BackendKind::Native)
            .build()
            .unwrap();
        let values: Vec<f32> = (0..2 * d).map(|i| (i as f32 * 0.71).sin()).collect();
        let bits: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        let via_f32 = service.submit(NormRequest::f32(&values)).unwrap();
        let via_bits = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(via_f32.bits(), via_bits.bits());
        assert_eq!(via_f32.to_f32_vec().len(), 2 * d);
        // f64 decode agrees with the f32 view.
        for (a, b) in via_f32.to_f64_vec().iter().zip(via_f32.to_f32_vec()) {
            assert_eq!(*a, f64::from(b));
        }
    }

    #[test]
    fn empty_and_ragged_requests_are_rejected_up_front() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        assert_eq!(
            service.submit(NormRequest::bits(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        assert_eq!(
            service.submit(NormRequest::f32(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        let ragged = vec![0u32; d + 1];
        assert_eq!(
            service.submit(NormRequest::bits(&ragged)).unwrap_err(),
            NormError::BatchLengthMismatch {
                rows: 1,
                d,
                actual: d + 1
            }
        );
        assert_eq!(
            service.submit_detailed(NormRequest::bits(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        // Rejections never count as accepted traffic.
        assert_eq!(service.stats().requests, 0);
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let d = 8;
        let service = ServiceConfig::new(d).with_shards(2).build().unwrap();
        let bits = row_bits(d, 1);
        let _ = service.submit(NormRequest::bits(&bits)).unwrap();
        assert!(!service.is_shutdown());
        service.shutdown();
        assert!(service.is_shutdown());
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown
        );
        assert_eq!(
            service
                .submit_detailed(NormRequest::bits(&bits))
                .unwrap_err(),
            NormError::ServiceShutdown
        );
        // A clone shares the shutdown state.
        assert!(service.clone().is_shutdown());
    }

    #[test]
    fn detailed_row_agrees_with_submit_and_reports_moments() {
        let d = 32;
        for backend in BackendKind::ALL {
            let service = ServiceConfig::new(d).with_backend(backend).build().unwrap();
            let bits = row_bits(d, 5);
            let plain = service.submit(NormRequest::bits(&bits)).unwrap();
            let (detailed, moments) = service.submit_detailed(NormRequest::bits(&bits)).unwrap();
            assert_eq!(plain.bits(), detailed.bits(), "{backend:?}");
            assert!(moments.m > 0.0 && moments.scale.is_finite());
            // Multi-row requests are a single-row API misuse.
            let two = [bits.clone(), bits.clone()].concat();
            assert_eq!(
                service
                    .submit_detailed(NormRequest::bits(&two))
                    .unwrap_err(),
                NormError::InputLengthMismatch {
                    expected: d,
                    actual: 2 * d
                }
            );
        }
    }

    #[test]
    fn submit_into_matches_submit_and_validates_shapes() {
        let d = 20;
        for coalescing in [true, false] {
            let service = ServiceConfig::new(d)
                .with_coalescing(coalescing)
                .build()
                .unwrap();
            let bits: Vec<u32> = (0..2).flat_map(|r| row_bits(d, r)).collect();
            let expect = service.submit(NormRequest::bits(&bits)).unwrap();
            let mut out = vec![0u32; bits.len()];
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&bits), &mut out)
                    .unwrap(),
                2,
                "coalescing={coalescing}"
            );
            assert_eq!(&out[..], expect.bits(), "coalescing={coalescing}");
            let mut short = vec![0u32; d];
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&bits), &mut short)
                    .unwrap_err(),
                NormError::OutputLengthMismatch {
                    expected: 2 * d,
                    actual: d
                }
            );
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&[]), &mut [])
                    .unwrap_err(),
                NormError::EmptyRequest
            );
        }
        let service = ServiceConfig::new(d).build().unwrap();
        service.shutdown();
        let bits = row_bits(d, 1);
        let mut out = vec![0u32; d];
        assert_eq!(
            service
                .submit_into(NormRequest::bits(&bits), &mut out)
                .unwrap_err(),
            NormError::ServiceShutdown
        );
    }

    #[test]
    fn per_call_path_matches_service_path() {
        let d = 40;
        for backend in BackendKind::ALL {
            for spec in MethodSpec::REGISTRY {
                let service = ServiceConfig::new(d)
                    .with_backend(backend)
                    .with_method(spec)
                    .build()
                    .unwrap();
                let bits = row_bits(d, 9);
                let via_service = service.submit(NormRequest::bits(&bits)).unwrap();
                let via_per_call = service.normalize_per_call(&bits).unwrap();
                assert_eq!(via_service.bits(), &via_per_call[..], "{}", service.label());
            }
        }
        let service = ServiceConfig::new(d).build().unwrap();
        assert_eq!(
            service.normalize_per_call(&[]).unwrap_err(),
            NormError::EmptyRequest
        );
    }

    #[test]
    fn rsqrt_trace_matches_typed_iteration() {
        let service = ServiceConfig::new(1)
            .with_format(FormatKind::Fp16)
            .build()
            .unwrap();
        let trace = service.rsqrt_trace(10.5, 4);
        let typed = iterate(Fp16::from_f64(10.5), &IterConfig::fixed_steps(4));
        assert_eq!(trace.m, Fp16::from_f64(10.5).to_f64());
        assert_eq!(trace.a0, typed.a0.to_f64());
        assert_eq!(trace.lambda, typed.lambda.to_f64());
        assert_eq!(trace.steps.len(), 4);
        for (a, b) in trace.steps.iter().zip(&typed.steps) {
            assert_eq!(*a, b.to_f64());
        }
    }

    #[test]
    fn pool_caches_services_and_applies_site_affine() {
        let d = 12;
        let gamma: Vec<u32> = (0..d)
            .map(|i| Fp32::from_f64(1.0 + i as f64 * 0.05).to_bits())
            .collect();
        let beta: Vec<u32> = (0..d)
            .map(|i| Fp32::from_f64(i as f64 * 0.01).to_bits())
            .collect();
        let mut pool = NormServicePool::new(ServiceConfig::new(d));
        assert!(pool.is_empty());
        let plain = pool.add_site(None, None);
        let affine = pool.add_site(Some(&gamma), Some(&beta));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.d(), d);

        let spec = MethodSpec::iterl2(5);
        let first = pool.service(affine, &spec).unwrap();
        let again = pool.service(affine, &spec).unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "cache must return the same service"
        );
        let other = pool.service(plain, &spec).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));

        // The affine site's output matches a directly built affine service.
        let bits = row_bits(d, 3);
        let expect = ServiceConfig::new(d)
            .with_affine_bits(&gamma, &beta)
            .build()
            .unwrap()
            .submit(NormRequest::bits(&bits))
            .unwrap();
        let got = first.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(got.bits(), expect.bits());
        let got_plain = other.submit(NormRequest::bits(&bits)).unwrap();
        assert_ne!(got_plain.bits(), expect.bits(), "affine must matter");
    }

    #[test]
    fn sharded_pool_template_flows_through_to_services() {
        let d = 12;
        let gamma: Vec<u32> = (0..d)
            .map(|i| Fp32::from_f64(1.0 + i as f64 * 0.05).to_bits())
            .collect();
        let mut pool =
            NormServicePool::new(ServiceConfig::new(d).with_shards(2).with_queue_depth(16));
        let site = pool.add_site(Some(&gamma), None);
        let spec = MethodSpec::iterl2(5);
        let service = pool.service(site, &spec).unwrap();
        assert_eq!(service.shards(), 2);
        let bits = row_bits(d, 4);
        let expect = ServiceConfig::new(d)
            .with_gamma_bits(&gamma)
            .build()
            .unwrap()
            .submit(NormRequest::bits(&bits))
            .unwrap();
        let got = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(got.bits(), expect.bits(), "sharded pool service bits");
    }

    #[test]
    #[should_panic(expected = "unknown norm site")]
    fn pool_rejects_unknown_site() {
        let pool = NormServicePool::new(ServiceConfig::new(4));
        let _ = pool.service(0, &MethodSpec::iterl2(5));
    }

    #[test]
    fn submit_async_matches_blocking_submit() {
        let d = 24;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits: Vec<u32> = (0..3).flat_map(|r| row_bits(d, r)).collect();
        let expect = service.submit(NormRequest::bits(&bits)).unwrap();

        // wait() parks until the resident driver's round delivers.
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        assert_eq!(ticket.rows(), 3);
        let waited = ticket.wait().unwrap();
        assert_eq!(waited.bits(), expect.bits());
        assert_eq!(waited.rows(), 3);

        // try_take() never parks; the resident driver completes the
        // round on its own schedule — poll under a generous deadline.
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let polled = loop {
            if let Some(result) = ticket.try_take() {
                break result;
            }
            assert!(Instant::now() < deadline, "driver never served the ticket");
            std::thread::yield_now();
        };
        assert_eq!(polled.unwrap().bits(), expect.bits());

        // wait_timeout() within budget delivers the same bits.
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let timed = ticket
            .wait_timeout(Duration::from_secs(5))
            .expect("bounded wait covers the driver's round");
        assert_eq!(timed.unwrap().bits(), expect.bits());

        // The "effectively forever" idiom must wait, not overflow-panic.
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let forever = ticket
            .wait_timeout(Duration::MAX)
            .expect("an unbounded wait always delivers");
        assert_eq!(forever.unwrap().bits(), expect.bits());
    }

    #[test]
    fn submit_async_per_request_mode_returns_completed_ticket() {
        let d = 16;
        let service = ServiceConfig::new(d)
            .with_coalescing(false)
            .build()
            .unwrap();
        let bits = row_bits(d, 2);
        let expect = service.submit(NormRequest::bits(&bits)).unwrap();
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let response = ticket
            .try_take()
            .expect("per-request tickets are complete at submit")
            .unwrap();
        assert_eq!(response.bits(), expect.bits());
        assert_eq!(response.batch_requests(), 1);
    }

    #[test]
    fn submit_async_rejects_bad_shapes_and_shutdown_at_the_door() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        assert_eq!(
            service.submit_async(NormRequest::bits(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        let ragged = vec![0u32; d + 1];
        assert_eq!(
            service
                .submit_async(NormRequest::bits(&ragged))
                .unwrap_err(),
            NormError::BatchLengthMismatch {
                rows: 1,
                d,
                actual: d + 1
            }
        );
        service.shutdown();
        let bits = row_bits(d, 1);
        assert_eq!(
            service.submit_async(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown
        );
    }

    #[test]
    #[should_panic(expected = "result already taken")]
    fn spent_ticket_panics_on_reuse() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 1);
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let _ = ticket.wait();
        let _ = ticket.try_take();
    }

    #[test]
    fn abandoned_tickets_are_counted_and_service_keeps_working() {
        let d = 16;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 4);
        let expect = service.submit(NormRequest::bits(&bits)).unwrap();

        // Dropped before collection: the resident driver still executes
        // the orphaned entry, and the abandoned slot recycles its result
        // buffer instead of stranding it.
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        drop(ticket);
        assert_eq!(service.stats().abandoned_tickets, 1);
        let after = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(after.bits(), expect.bits());

        // Dropped after its round ran: the delivered outcome is reclaimed
        // at drop time. The blocking submit returning proves the earlier
        // ticket's entry was already served — the driver drains the whole
        // queue every round, in order.
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let kicked = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(kicked.bits(), expect.bits());
        drop(ticket);
        assert_eq!(service.stats().abandoned_tickets, 2);
        // The service stays fully usable.
        let last = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(last.bits(), expect.bits());
    }

    #[test]
    fn request_hash_placement_is_deterministic_and_in_range() {
        let d = 8;
        let service = ServiceConfig::new(d)
            .with_shards(4)
            .with_placement(Placement::RequestHash)
            .build()
            .unwrap();
        assert_eq!(service.config().placement(), Placement::RequestHash);
        for key in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let shard = service.shard_for(key);
            assert!(shard < 4);
            for _ in 0..3 {
                assert_eq!(service.shard_for(key), shard, "sticky for key {key}");
            }
        }
        // Distinct keys spread: 64 sequential keys must not all collapse
        // onto one shard (splitmix64 mixes sequential inputs).
        let hit: std::collections::BTreeSet<usize> =
            (0..64u64).map(|k| service.shard_for(k)).collect();
        assert!(hit.len() > 1, "sequential keys all landed on one shard");
        // Keyed submissions produce the same bits as unkeyed ones.
        let bits = row_bits(d, 6);
        let unkeyed = service.submit(NormRequest::bits(&bits)).unwrap();
        let keyed = service
            .submit(NormRequest::bits(&bits).with_key(42))
            .unwrap();
        assert_eq!(unkeyed.bits(), keyed.bits());
        let mut ticket = service
            .submit_async(NormRequest::bits(&bits).with_key(42))
            .unwrap();
        assert_eq!(ticket.shard(), service.shard_for(42));
        assert_eq!(ticket.wait().unwrap().bits(), unkeyed.bits());
    }

    #[test]
    fn placement_parses_and_displays() {
        assert_eq!(Placement::parse("round-robin"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("RR"), Some(Placement::RoundRobin));
        assert_eq!(
            Placement::parse("Request-Hash"),
            Some(Placement::RequestHash)
        );
        assert_eq!(Placement::parse("hash"), Some(Placement::RequestHash));
        assert_eq!(Placement::parse("random"), None);
        for placement in Placement::ALL {
            assert_eq!(Placement::parse(placement.name()), Some(placement));
            assert_eq!(placement.to_string(), placement.name());
        }
        assert_eq!(Placement::default(), Placement::RoundRobin);
    }

    #[test]
    fn request_key_accessors_round_trip() {
        let data = [0u32; 4];
        let plain = NormRequest::bits(&data);
        assert_eq!(plain.key(), None);
        assert_eq!(plain.with_key(9).key(), Some(9));
        let values = [0.0f32; 4];
        assert_eq!(NormRequest::f32(&values).with_key(3).key(), Some(3));
    }

    #[test]
    fn priority_parses_and_displays() {
        assert_eq!(Priority::parse("normal"), Some(Priority::Normal));
        assert_eq!(Priority::parse("HIGH"), Some(Priority::High));
        assert_eq!(Priority::parse("urgent"), None);
        for priority in Priority::ALL {
            assert_eq!(Priority::parse(priority.name()), Some(priority));
            assert_eq!(priority.to_string(), priority.name());
        }
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn request_priority_accessors_round_trip() {
        let data = [0u32; 4];
        assert_eq!(NormRequest::bits(&data).priority(), Priority::Normal);
        assert_eq!(
            NormRequest::bits(&data)
                .with_priority(Priority::High)
                .priority(),
            Priority::High
        );
        // Priority composes with keys and never affects output bits.
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 3);
        let normal = service.submit(NormRequest::bits(&bits)).unwrap();
        let high = service
            .submit(
                NormRequest::bits(&bits)
                    .with_priority(Priority::High)
                    .with_key(5),
            )
            .unwrap();
        assert_eq!(normal.bits(), high.bits());
    }

    #[test]
    fn stats_snapshot_mirrors_every_counter() {
        let stats = ServiceStats {
            requests: 1,
            batches: 2,
            coalesced_requests: 3,
            rows: 4,
            queue_full_rejections: 5,
            abandoned_tickets: 6,
            queue_wait: Duration::from_micros(7),
            execute: Duration::from_micros(8),
            whiten_requests: 9,
            whiten_rows: 10,
            worker_busy: Duration::from_micros(11),
            worker_idle: Duration::from_micros(12),
            worker_wakeups: 13,
            waker_panics: 14,
        };
        let snap = stats.snapshot();
        assert_eq!(snap.queue_wait_us, 7);
        assert_eq!(snap.execute_us, 8);
        // fields() covers each counter exactly once, in declaration
        // order, with the struct's own values.
        let fields = snap.fields();
        let expect = [
            ("requests", 1u64),
            ("batches", 2),
            ("coalesced_requests", 3),
            ("rows", 4),
            ("queue_full_rejections", 5),
            ("abandoned_tickets", 6),
            ("queue_wait_us", 7),
            ("execute_us", 8),
            ("whiten_requests", 9),
            ("whiten_rows", 10),
            ("worker_busy_us", 11),
            ("worker_idle_us", 12),
            ("worker_wakeups", 13),
            ("waker_panics", 14),
        ];
        assert_eq!(fields, expect);
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fields.len(), "duplicate field name");
    }

    #[test]
    fn stats_snapshot_saturates_on_absurd_durations() {
        let stats = ServiceStats {
            queue_wait: Duration::MAX,
            ..ServiceStats::default()
        };
        assert_eq!(stats.snapshot().queue_wait_us, u64::MAX);
    }

    #[test]
    fn live_service_snapshot_tracks_traffic() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 1);
        let _ = service.submit(NormRequest::bits(&bits)).unwrap();
        let _ = service.submit(NormRequest::bits(&bits)).unwrap();
        let snap = service.stats().snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.rows, 2);
        assert_eq!(snap.queue_full_rejections, 0);
    }
}
