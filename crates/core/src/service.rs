//! The type-erased normalization serving API: one front door over
//! format × method × backend × threads, with request micro-batching.
//!
//! The execution layer underneath ([`backend`](crate::backend)) is already
//! runtime-polymorphic, but every caller still had to monomorphize its own
//! dispatch (the CLI's old `with_exec!` macro, the transformer's typed
//! per-layer plans). [`NormService`] removes that: a [`ServiceConfig`]
//! names the whole execution point — dimension, format, scale method,
//! backend, worker threads, reduction order, affine parameters — and
//! [`ServiceConfig::build`] erases it behind one object. Callers submit
//! [`NormRequest`]s (row-major `u32` storage bits, or native `f32` slices)
//! and get [`NormResponse`]s with per-request execution metadata. No
//! generic parameters, no macros.
//!
//! # Micro-batching
//!
//! A service is [`Clone`] + [`Sync`]: concurrent callers share one plan,
//! one scratch pool, one backend. Requests that arrive while the backend
//! is busy — or within the configured coalescing
//! [`window`](ServiceConfig::with_window) — are packed into **one**
//! partitioned [`normalize_batch_bits`](crate::NormBackend::normalize_batch_bits)
//! call and split back per caller. Rows are independent and the engine
//! processes a batch row by row in order, so the coalesced output bits are
//! **identical** to serial per-request execution (enforced across
//! formats × methods × submitter counts by
//! `tests/service_bit_identity.rs`). Coalescing therefore changes only
//! throughput, never results; the wins show up only under concurrent
//! load — a single submitting thread always finds an idle backend and
//! runs exactly one request per batch.
//!
//! # Example
//!
//! ```
//! use iterl2norm::service::{NormRequest, ServiceConfig};
//! use iterl2norm::{BackendKind, FormatKind, MethodSpec};
//!
//! # fn main() -> Result<(), iterl2norm::NormError> {
//! let d = 64;
//! let service = ServiceConfig::new(d)
//!     .with_format(FormatKind::Fp32)
//!     .with_backend(BackendKind::Native)
//!     .with_method(MethodSpec::iterl2(5))
//!     .with_threads(2)
//!     .build()?;
//!
//! // Native f32 traffic straight in; two rows in one request.
//! let rows: Vec<f32> = (0..2 * d).map(|i| (i as f32 * 0.37).sin()).collect();
//! let response = service.submit(NormRequest::f32(&rows))?;
//! assert_eq!(response.rows(), 2);
//! assert_eq!(response.bits().len(), 2 * d);
//! # Ok(())
//! # }
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use softfloat::{Bf16, Float, Fp16, Fp32, HostF32};

use crate::backend::{build_backend_affine, BackendKind, FormatKind, NormBackend, RowMoments};
use crate::config::IterConfig;
use crate::engine::MethodSpec;
use crate::error::NormError;
use crate::hworder::ReduceOrder;
use crate::iteration::iterate;
use crate::layernorm::{layer_norm, LayerNormInputs};

/// Dispatch a body over the concrete [`Float`] type a validated
/// `(backend, format)` pair executes. Only reachable after
/// [`ServiceConfig::build`] has rejected native + non-FP32, so the native
/// arm is unconditionally `HostF32`. This is the single place the
/// type-erasure boundary is crossed back into generics.
macro_rules! with_exec_float {
    ($backend:expr, $format:expr, $f:ident => $body:expr) => {
        match ($backend, $format) {
            (BackendKind::Native, _) => {
                type $f = HostF32;
                $body
            }
            (BackendKind::Emulated, FormatKind::Fp32) => {
                type $f = Fp32;
                $body
            }
            (BackendKind::Emulated, FormatKind::Fp16) => {
                type $f = Fp16;
                $body
            }
            (BackendKind::Emulated, FormatKind::Bf16) => {
                type $f = Bf16;
                $body
            }
        }
    };
}

/// Everything that defines one normalization execution point. Built with
/// [`ServiceConfig::new`] plus `with_*` steps, validated once by
/// [`ServiceConfig::build`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    d: usize,
    format: FormatKind,
    method: MethodSpec,
    backend: BackendKind,
    threads: usize,
    reduce: ReduceOrder,
    gamma_bits: Option<Vec<u32>>,
    beta_bits: Option<Vec<u32>>,
    window: Duration,
    coalescing: bool,
}

impl ServiceConfig {
    /// Defaults for vectors of length `d`: emulated FP32, `iterl2[5]`,
    /// one worker thread, hardware-tree reduction, no affine parameters,
    /// opportunistic coalescing with a zero window.
    pub fn new(d: usize) -> Self {
        ServiceConfig {
            d,
            format: FormatKind::default(),
            method: MethodSpec::iterl2(5),
            backend: BackendKind::default(),
            threads: 1,
            reduce: ReduceOrder::default(),
            gamma_bits: None,
            beta_bits: None,
            window: Duration::ZERO,
            coalescing: true,
        }
    }

    /// Same config with a different float format.
    pub fn with_format(mut self, format: FormatKind) -> Self {
        self.format = format;
        self
    }

    /// Same config with a different scale method.
    pub fn with_method(mut self, method: MethodSpec) -> Self {
        self.method = method;
        self
    }

    /// Same config with a different execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Same config with a different worker-thread count for batch
    /// execution (validated at build; output bits never depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same config with a different reduction order.
    pub fn with_reduce(mut self, reduce: ReduceOrder) -> Self {
        self.reduce = reduce;
        self
    }

    /// Same config with per-element scale γ, given as storage bit
    /// patterns (length validated at build).
    pub fn with_gamma_bits(mut self, gamma: &[u32]) -> Self {
        self.gamma_bits = Some(gamma.to_vec());
        self
    }

    /// Same config with per-element shift β, given as storage bit
    /// patterns (length validated at build).
    pub fn with_beta_bits(mut self, beta: &[u32]) -> Self {
        self.beta_bits = Some(beta.to_vec());
        self
    }

    /// Same config with both affine parameters as storage bit patterns.
    pub fn with_affine_bits(self, gamma: &[u32], beta: &[u32]) -> Self {
        self.with_gamma_bits(gamma).with_beta_bits(beta)
    }

    /// Same config with a coalescing window: a submitter that finds the
    /// backend idle waits this long before executing, so requests from
    /// other threads can join its batch. Zero (the default) never delays
    /// a request — coalescing then happens only opportunistically, for
    /// requests that queue up while the backend is busy.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Same config with coalescing disabled entirely: every request runs
    /// as its own backend call (requests still serialize on the backend).
    /// This is the per-request baseline the `service_bench` compares
    /// against; output bits are identical either way.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// The vector length `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The float format.
    pub fn format(&self) -> FormatKind {
        self.format
    }

    /// The scale method.
    pub fn method(&self) -> MethodSpec {
        self.method
    }

    /// The execution backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The worker-thread count for batch execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The reduction order.
    pub fn reduce(&self) -> ReduceOrder {
        self.reduce
    }

    /// The coalescing window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Whether micro-batching is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Validate the configuration and erase it behind a [`NormService`].
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`, [`NormError::ZeroThreads`]
    /// when `threads == 0`, [`NormError::BackendFormatMismatch`] for
    /// native + non-FP32, and the γ/β length-mismatch variants.
    pub fn build(self) -> Result<NormService, NormError> {
        if self.threads == 0 {
            return Err(NormError::ZeroThreads);
        }
        let backend = build_backend_affine(
            self.backend,
            self.format,
            self.d,
            &self.method,
            self.reduce,
            self.gamma_bits.as_deref(),
            self.beta_bits.as_deref(),
        )?;
        Ok(NormService {
            inner: Arc::new(Inner {
                label: backend.label(),
                config: self,
                queue: Mutex::new(QueueState::default()),
                queue_cv: Condvar::new(),
                backend: Mutex::new(backend),
            }),
        })
    }
}

/// One unit of normalization work: row-major data with stride `d`.
///
/// Bits are the service's exchange currency (every format stores one `u32`
/// per element); native `f32` slices are accepted as a convenience for
/// FP32-shaped serving traffic — for an FP32 service they are re-tagged
/// bit for bit, for FP16/BF16 they are rounded into the format.
#[derive(Debug, Clone, Copy)]
pub enum NormRequest<'a> {
    /// Row-major storage bit patterns (`rows × d` elements).
    Bits(&'a [u32]),
    /// Row-major native `f32` values (`rows × d` elements).
    F32(&'a [f32]),
}

impl<'a> NormRequest<'a> {
    /// Request over raw storage bit patterns.
    pub fn bits(data: &'a [u32]) -> Self {
        NormRequest::Bits(data)
    }

    /// Request over native `f32` values.
    pub fn f32(data: &'a [f32]) -> Self {
        NormRequest::F32(data)
    }

    /// Number of `u32`/`f32` elements in the request.
    pub fn len(&self) -> usize {
        match self {
            NormRequest::Bits(b) => b.len(),
            NormRequest::F32(v) => v.len(),
        }
    }

    /// `true` when the request carries no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode into the service's storage bits. FP32 keeps `f32` payloads
    /// bit for bit; narrower formats round each value in.
    fn encode(&self, format: FormatKind) -> Vec<u32> {
        match *self {
            NormRequest::Bits(b) => b.to_vec(),
            NormRequest::F32(v) => match format {
                FormatKind::Fp32 => v.iter().map(|x| x.to_bits()).collect(),
                _ => v.iter().map(|&x| format.encode_f64(f64::from(x))).collect(),
            },
        }
    }

    /// [`encode`](NormRequest::encode) without copying when the request
    /// already carries storage bits — the uncontended submit path borrows
    /// the caller's buffer for the duration of the backend call.
    fn encode_cow(&self, format: FormatKind) -> Cow<'a, [u32]> {
        match *self {
            NormRequest::Bits(b) => Cow::Borrowed(b),
            NormRequest::F32(_) => Cow::Owned(self.encode(format)),
        }
    }
}

/// The result of one request: normalized storage bits plus metadata about
/// how the request was executed (useful for observing coalescing).
#[derive(Debug, Clone)]
pub struct NormResponse {
    bits: Vec<u32>,
    format: FormatKind,
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
    elapsed: Duration,
}

impl NormResponse {
    /// The normalized rows as storage bit patterns, row-major.
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// Consume the response, keeping the bit buffer.
    pub fn into_bits(self) -> Vec<u32> {
        self.bits
    }

    /// Number of rows in this request.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total rows of the backend batch this request executed in
    /// (`>= rows()`; larger means the request was coalesced).
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Number of requests that shared the backend batch (1 = ran alone).
    pub fn batch_requests(&self) -> usize {
        self.batch_requests
    }

    /// Wall-clock time from submission to completion, queueing and
    /// coalescing window included.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The output decoded to `f64` (exact widening of every format).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| self.format.decode_f64(b))
            .collect()
    }

    /// The output as native `f32` values (exact for FP32 services; for
    /// FP16/BF16 this is the exact widening of the narrow result).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self.format {
            FormatKind::Fp32 => self.bits.iter().map(|&b| f32::from_bits(b)).collect(),
            _ => self
                .bits
                .iter()
                .map(|&b| self.format.decode_f64(b) as f32)
                .collect(),
        }
    }
}

/// Counters describing how a service has executed its traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (valid shape, not rejected at the door).
    pub requests: u64,
    /// Backend batch calls issued.
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total rows normalized.
    pub rows: u64,
}

/// The scalar `1/√m` iteration trace, widened to `f64` — what the CLI's
/// `rsqrt` subcommand reports. See [`NormService::rsqrt_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarTrace {
    /// `m` after rounding into the service's format.
    pub m: f64,
    /// The exponent-derived seed `a₀` (paper Eq. 6).
    pub a0: f64,
    /// The exponent-derived rate λ (paper Eq. 10).
    pub lambda: f64,
    /// The iterate after each step.
    pub steps: Vec<f64>,
}

type SlotOutcome = Result<SlotResult, NormError>;

struct SlotResult {
    bits: Vec<u32>,
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
}

/// What one combining round executed (for the leader's stats update).
struct RoundStats {
    requests: usize,
    rows: usize,
}

/// What the shared submission protocol reports back to the public entry
/// points: the request's own rows plus how it was executed.
struct Served {
    rows: usize,
    batch_rows: usize,
    batch_requests: usize,
}

/// Copy a round-served result into the caller's buffer.
fn finish(result: SlotResult, out: &mut [u32]) -> Result<Served, NormError> {
    out.copy_from_slice(&result.bits);
    Ok(Served {
        rows: result.rows,
        batch_rows: result.batch_rows,
        batch_requests: result.batch_requests,
    })
}

/// One waiting submitter's mailbox. Filled by whichever submitter runs
/// the round that serves it; waiters are woken through the queue-level
/// condvar (`Inner::queue_cv`), not per slot.
struct Slot {
    state: Mutex<Option<SlotOutcome>>,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(None),
        })
    }

    fn fill(&self, outcome: SlotOutcome) {
        *self.state.lock().expect("slot lock poisoned") = Some(outcome);
    }

    fn take(&self) -> Option<SlotOutcome> {
        self.state.lock().expect("slot lock poisoned").take()
    }
}

#[derive(Default)]
struct QueueState {
    pending: Vec<(Vec<u32>, Arc<Slot>)>,
    leader: bool,
    shutdown: bool,
    stats: ServiceStats,
}

struct Inner {
    config: ServiceConfig,
    label: String,
    queue: Mutex<QueueState>,
    /// Wakes waiting submitters when a round completes (their slot may be
    /// filled, or leadership may be free for one of them to claim).
    queue_cv: Condvar,
    backend: Mutex<Box<dyn NormBackend>>,
}

/// The type-erased serving front door: one shared execution point that any
/// number of threads submit normalization work to. Cloning is cheap (the
/// clones share the same plan, scratch and coalescing queue). See the
/// [module docs](self) for the contract and an example.
#[derive(Clone)]
pub struct NormService {
    inner: Arc<Inner>,
}

impl core::fmt::Debug for NormService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NormService")
            .field("label", &self.inner.label)
            .field("d", &self.inner.config.d)
            .finish_non_exhaustive()
    }
}

impl NormService {
    /// The configuration this service was built from.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The vector length `d`.
    pub fn d(&self) -> usize {
        self.inner.config.d
    }

    /// The format.
    pub fn format(&self) -> FormatKind {
        self.inner.config.format
    }

    /// The backend kind.
    pub fn backend(&self) -> BackendKind {
        self.inner.config.backend
    }

    /// The scale method.
    pub fn method(&self) -> MethodSpec {
        self.inner.config.method
    }

    /// The worker-thread count batch execution partitions across.
    pub fn threads(&self) -> usize {
        self.inner.config.threads
    }

    /// Combined report label, e.g. `"native-f32/FP32/iterl2[5]"`.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Execution counters so far.
    pub fn stats(&self) -> ServiceStats {
        self.inner.queue.lock().expect("queue lock poisoned").stats
    }

    /// Refuse all future requests. Requests already accepted are still
    /// completed; subsequent [`submit`](NormService::submit) calls return
    /// [`NormError::ServiceShutdown`].
    pub fn shutdown(&self) {
        let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
        queue.shutdown = true;
    }

    /// `true` once [`shutdown`](NormService::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.inner
            .queue
            .lock()
            .expect("queue lock poisoned")
            .shutdown
    }

    /// Normalize one request. Blocks until the result is ready; requests
    /// from concurrent submitters may be executed together in one backend
    /// batch (see the [module docs](self)) — the output bits are identical
    /// either way.
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after [`shutdown`](NormService::shutdown),
    /// [`NormError::EmptyRequest`] for a zero-row request,
    /// [`NormError::BatchLengthMismatch`] when the data is not whole
    /// `d`-length rows, plus any backend execution error.
    pub fn submit(&self, request: NormRequest<'_>) -> Result<NormResponse, NormError> {
        let start = Instant::now();
        self.validate_shape(&request)?;
        let mut out = vec![0u32; request.len()];
        let served = self.serve(&request, &mut out)?;
        Ok(self.response(
            out,
            served.rows,
            served.batch_rows,
            served.batch_requests,
            start,
        ))
    }

    /// [`submit`](NormService::submit) writing the normalized bits into a
    /// caller-provided buffer instead of allocating a response — the
    /// hot-path variant for callers that reuse buffers across calls (the
    /// transformer's forward pass). On the uncontended fast path this
    /// performs **zero** service-layer allocations for bit requests; under
    /// contention it falls back to the combining queue and copies the
    /// served result into `out`. Returns the number of rows. Output bits
    /// are identical to [`submit`](NormService::submit).
    ///
    /// # Errors
    ///
    /// The [`submit`](NormService::submit) errors, plus
    /// [`NormError::OutputLengthMismatch`] when `out` differs in length.
    pub fn submit_into(
        &self,
        request: NormRequest<'_>,
        out: &mut [u32],
    ) -> Result<usize, NormError> {
        self.validate_shape(&request)?;
        if out.len() != request.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: request.len(),
                actual: out.len(),
            });
        }
        Ok(self.serve(&request, out)?.rows)
    }

    /// The submission protocol both public entry points share, writing the
    /// normalized bits into `out` (already length-checked by the caller):
    ///
    /// 1. **Per-request mode** (coalescing disabled): one backend call,
    ///    borrowing bit payloads — the same deal the fast path gets, so
    ///    the two modes stay comparable in benchmarks.
    /// 2. **Uncontended fast path** (zero window, no active leader,
    ///    nothing queued): claim leadership, run the borrowed request
    ///    directly — no owned copy, no slot machinery.
    /// 3. **Combining queue**: enqueue, then either run one round as
    ///    leader or wait until some round serves us. Leadership is
    ///    released after every round and handed to a woken waiter, so no
    ///    submitter is ever held serving other callers' traffic
    ///    indefinitely — submit latency stays bounded under sustained
    ///    load.
    fn serve(&self, request: &NormRequest<'_>, out: &mut [u32]) -> Result<Served, NormError> {
        let rows = request.len() / self.inner.config.d;

        if !self.inner.config.coalescing {
            {
                let queue = self.inner.queue.lock().expect("queue lock poisoned");
                if queue.shutdown {
                    return Err(NormError::ServiceShutdown);
                }
            }
            let bits = request.encode_cow(self.inner.config.format);
            self.execute_into(&bits, out)?;
            let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
            queue.stats.requests += 1;
            queue.stats.batches += 1;
            queue.stats.rows += rows as u64;
            return Ok(Served {
                rows,
                batch_rows: rows,
                batch_requests: 1,
            });
        }

        // A window must hold the request back so others can join, and
        // queued requests deserve to share our round — both skip the fast
        // path and go through the combining queue.
        if self.inner.config.window.is_zero() {
            let claimed = {
                let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
                if queue.shutdown {
                    return Err(NormError::ServiceShutdown);
                }
                if !queue.leader && queue.pending.is_empty() {
                    queue.leader = true;
                    queue.stats.requests += 1;
                    true
                } else {
                    false
                }
            };
            if claimed {
                let bits = request.encode_cow(self.inner.config.format);
                let outcome = self.execute_into(&bits, out);
                {
                    let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
                    queue.stats.batches += 1;
                    queue.stats.rows += rows as u64;
                    queue.leader = false;
                }
                // Requests that queued behind us get the next round: wake
                // a waiter so one of them claims leadership.
                self.inner.queue_cv.notify_all();
                outcome?;
                return Ok(Served {
                    rows,
                    batch_rows: rows,
                    batch_requests: 1,
                });
            }
        }

        let slot = Slot::new();
        let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
        if queue.shutdown {
            return Err(NormError::ServiceShutdown);
        }
        queue.stats.requests += 1;
        queue
            .pending
            .push((request.encode(self.inner.config.format), Arc::clone(&slot)));
        loop {
            if let Some(outcome) = slot.take() {
                drop(queue);
                return finish(outcome?, out);
            }
            if !queue.leader {
                // Leadership is only ever released after the round's slots
                // are filled, so an unserved request (ours) is still in
                // `pending` — the round below is guaranteed to serve it.
                queue.leader = true;
                drop(queue);
                if !self.inner.config.window.is_zero() {
                    // Give concurrent submitters the configured window to
                    // join this batch before draining the queue.
                    std::thread::sleep(self.inner.config.window);
                }
                let round = self.run_round();
                {
                    let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
                    queue.stats.batches += 1;
                    queue.stats.rows += round.rows as u64;
                    if round.requests > 1 {
                        queue.stats.coalesced_requests += round.requests as u64;
                    }
                    queue.leader = false;
                }
                self.inner.queue_cv.notify_all();
                let result = slot
                    .take()
                    .expect("a round serves every request pending when it starts")?;
                return finish(result, out);
            }
            queue = self
                .inner
                .queue_cv
                .wait(queue)
                .expect("queue lock poisoned");
        }
    }

    /// One backend call over `bits` into a caller-provided buffer.
    fn execute_into(&self, bits: &[u32], out: &mut [u32]) -> Result<usize, NormError> {
        let mut backend = self.inner.backend.lock().expect("backend lock poisoned");
        backend.normalize_batch_bits(bits, out, self.inner.config.threads)
    }

    fn response(
        &self,
        bits: Vec<u32>,
        rows: usize,
        batch_rows: usize,
        batch_requests: usize,
        start: Instant,
    ) -> NormResponse {
        NormResponse {
            bits,
            format: self.inner.config.format,
            rows,
            batch_rows,
            batch_requests,
            elapsed: start.elapsed(),
        }
    }

    /// Run one combining round: drain everything queued, execute it as a
    /// single partitioned backend call, split the output back per caller
    /// and fill the waiters' slots. Exactly one round per leadership
    /// claim — the caller releases leadership afterwards and wakes a
    /// waiter to take the next round.
    fn run_round(&self) -> RoundStats {
        let d = self.inner.config.d;
        let drained: Vec<(Vec<u32>, Arc<Slot>)> = {
            let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
            std::mem::take(&mut queue.pending)
        };
        let total: usize = drained.iter().map(|(bits, _)| bits.len()).sum();
        let batch_requests = drained.len();
        let batch_rows = total / d;
        if batch_requests == 1 {
            // A lone request needs no concat/split: execute it in place
            // and hand the output buffer to the slot whole, sparing the
            // two batch-sized copies (which dominate for large requests).
            let (bits, slot) = drained.into_iter().next().expect("one request");
            let mut out = vec![0u32; bits.len()];
            let exec = self.execute_into(&bits, &mut out);
            slot.fill(exec.map(|_| SlotResult {
                bits: out,
                rows: batch_rows,
                batch_rows,
                batch_requests: 1,
            }));
        } else {
            let mut input = Vec::with_capacity(total);
            for (bits, _) in &drained {
                input.extend_from_slice(bits);
            }
            let mut out = vec![0u32; total];
            match self.execute_into(&input, &mut out) {
                Ok(_) => {
                    let mut offset = 0;
                    for (bits, slot) in drained {
                        let len = bits.len();
                        slot.fill(Ok(SlotResult {
                            bits: out[offset..offset + len].to_vec(),
                            rows: len / d,
                            batch_rows,
                            batch_requests,
                        }));
                        offset += len;
                    }
                }
                Err(err) => {
                    for (_, slot) in drained {
                        slot.fill(Err(err.clone()));
                    }
                }
            }
        }
        RoundStats {
            requests: batch_requests,
            rows: batch_rows,
        }
    }

    /// Normalize exactly one `d`-length row, additionally returning the
    /// scalar intermediates ([`RowMoments`]) — the reporting path behind
    /// the CLI's `normalize` and `demo`. Runs directly on the backend
    /// (never coalesced — the batch path does not surface per-row stats);
    /// the output bits are identical to [`submit`](NormService::submit).
    ///
    /// # Errors
    ///
    /// [`NormError::ServiceShutdown`] after shutdown,
    /// [`NormError::EmptyRequest`] for an empty request,
    /// [`NormError::InputLengthMismatch`] when the request is not exactly
    /// one row.
    pub fn submit_detailed(
        &self,
        request: NormRequest<'_>,
    ) -> Result<(NormResponse, RowMoments), NormError> {
        let start = Instant::now();
        if request.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        let bits = request.encode(self.inner.config.format);
        {
            let queue = self.inner.queue.lock().expect("queue lock poisoned");
            if queue.shutdown {
                return Err(NormError::ServiceShutdown);
            }
        }
        let mut out = vec![0u32; bits.len()];
        let moments = {
            let mut backend = self.inner.backend.lock().expect("backend lock poisoned");
            backend.normalize_row_bits_detailed(&bits, &mut out)?
        };
        let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
        queue.stats.requests += 1;
        queue.stats.batches += 1;
        queue.stats.rows += 1;
        drop(queue);
        Ok((
            NormResponse {
                bits: out,
                format: self.inner.config.format,
                rows: 1,
                batch_rows: 1,
                batch_requests: 1,
                elapsed: start.elapsed(),
            },
            moments,
        ))
    }

    /// The one-shot compatibility path: normalize one `d`-length row the
    /// way pre-engine callers did — constants re-rounded and buffers
    /// allocated per call, honoring this service's method, reduction
    /// order and affine parameters. Exists so benchmarks (the CLI `batch`
    /// subcommand) can measure the engine against its historical baseline
    /// without re-implementing format dispatch.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyRequest`] for an empty row, plus the shape errors
    /// of [`layer_norm`].
    pub fn normalize_per_call(&self, row_bits: &[u32]) -> Result<Vec<u32>, NormError> {
        if row_bits.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        let config = &self.inner.config;
        with_exec_float!(config.backend, config.format, F => {
            let x: Vec<F> = row_bits.iter().map(|&b| F::from_bits(b)).collect();
            let gamma: Option<Vec<F>> = config
                .gamma_bits
                .as_ref()
                .map(|g| g.iter().map(|&b| F::from_bits(b)).collect());
            let beta: Option<Vec<F>> = config
                .beta_bits
                .as_ref()
                .map(|b| b.iter().map(|&bit| F::from_bits(bit)).collect());
            let mut inputs = LayerNormInputs::unscaled(&x).with_reduce(config.reduce);
            inputs.gamma = gamma.as_deref();
            inputs.beta = beta.as_deref();
            let z = layer_norm(inputs, &config.method.build::<F>())?;
            Ok(z.iter().map(|v| v.to_bits()).collect())
        })
    }

    /// The scalar `1/√m` iteration trace in this service's format and
    /// backend arithmetic (bit-identical between the two backends for
    /// FP32) — the runtime-polymorphic replacement for the CLI's old
    /// per-format `rsqrt` dispatch.
    pub fn rsqrt_trace(&self, m: f64, steps: u32) -> ScalarTrace {
        let config = &self.inner.config;
        with_exec_float!(config.backend, config.format, F => {
            let mf = F::from_f64(m);
            let trace = iterate(mf, &IterConfig::fixed_steps(steps));
            ScalarTrace {
                m: mf.to_f64(),
                a0: trace.a0.to_f64(),
                lambda: trace.lambda.to_f64(),
                steps: trace.steps.iter().map(|a| a.to_f64()).collect(),
            }
        })
    }

    /// Reject malformed requests at the door, before they can touch the
    /// queue — shape errors are therefore independent of coalescing.
    fn validate_shape(&self, request: &NormRequest<'_>) -> Result<(), NormError> {
        if request.is_empty() {
            return Err(NormError::EmptyRequest);
        }
        let d = self.inner.config.d;
        let len = request.len();
        if !len.is_multiple_of(d) {
            return Err(NormError::BatchLengthMismatch {
                rows: len / d,
                d,
                actual: len,
            });
        }
        Ok(())
    }
}

/// A pool of [`NormService`]s over one layer shape: each *site* is a set
/// of affine parameters (one per LayerNorm location in a model), and
/// services are materialized lazily per `(site, method)` and cached — so
/// every forward pass, from any thread, shares the same service objects.
/// This is what the transformer's per-layer cached plans became.
#[derive(Debug)]
pub struct NormServicePool {
    template: ServiceConfig,
    sites: Vec<Site>,
    cache: Mutex<HashMap<(usize, String), Arc<NormService>>>,
}

#[derive(Debug)]
struct Site {
    gamma_bits: Option<Vec<u32>>,
    beta_bits: Option<Vec<u32>>,
}

impl NormServicePool {
    /// Pool whose services share `template`'s dimension, format, backend,
    /// threads and reduction order (the template's own affine parameters
    /// and method are ignored — sites and lookups supply those).
    pub fn new(template: ServiceConfig) -> Self {
        NormServicePool {
            template,
            sites: Vec::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Register a normalization site with its affine parameters (storage
    /// bit patterns), returning its id.
    pub fn add_site(&mut self, gamma_bits: Option<&[u32]>, beta_bits: Option<&[u32]>) -> usize {
        self.sites.push(Site {
            gamma_bits: gamma_bits.map(<[u32]>::to_vec),
            beta_bits: beta_bits.map(<[u32]>::to_vec),
        });
        self.sites.len() - 1
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site has been registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared vector length `d`.
    pub fn d(&self) -> usize {
        self.template.d
    }

    /// The service for `(site, method)`, built on first use and shared
    /// afterwards.
    ///
    /// # Errors
    ///
    /// The [`ServiceConfig::build`] errors (a site whose affine lengths
    /// disagree with `d` surfaces here).
    ///
    /// # Panics
    ///
    /// Panics if `site` was never returned by
    /// [`add_site`](NormServicePool::add_site) — a wiring bug, not input.
    pub fn service(&self, site: usize, method: &MethodSpec) -> Result<Arc<NormService>, NormError> {
        assert!(site < self.sites.len(), "unknown norm site {site}");
        let key = (site, method.label());
        let mut cache = self.cache.lock().expect("pool lock poisoned");
        if let Some(service) = cache.get(&key) {
            return Ok(Arc::clone(service));
        }
        let params = &self.sites[site];
        let mut config = self.template.clone().with_method(*method);
        config.gamma_bits = params.gamma_bits.clone();
        config.beta_bits = params.beta_bits.clone();
        let service = Arc::new(config.build()?);
        cache.insert(key, Arc::clone(&service));
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::build_backend;

    fn row_bits(d: usize, salt: u64) -> Vec<u32> {
        (0..d as u64)
            .map(|i| {
                Fp32::from_f64(
                    (((i.wrapping_mul(2654435761).wrapping_add(salt)) % 1000) as f64) / 250.0 - 2.0,
                )
                .to_bits()
            })
            .collect()
    }

    #[test]
    fn config_validation_errors_surface_at_build() {
        assert_eq!(
            ServiceConfig::new(0).build().unwrap_err(),
            NormError::EmptyInput
        );
        assert_eq!(
            ServiceConfig::new(8).with_threads(0).build().unwrap_err(),
            NormError::ZeroThreads
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_backend(BackendKind::Native)
                .with_format(FormatKind::Fp16)
                .build()
                .unwrap_err(),
            NormError::BackendFormatMismatch {
                backend: "native-f32",
                format: "FP16",
            }
        );
        assert_eq!(
            ServiceConfig::new(8)
                .with_gamma_bits(&[0; 7])
                .build()
                .unwrap_err(),
            NormError::GammaLengthMismatch {
                expected: 8,
                actual: 7
            }
        );
    }

    #[test]
    fn submit_matches_direct_backend_execution() {
        let d = 24;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits: Vec<u32> = (0..3).flat_map(|r| row_bits(d, r)).collect();
        let response = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(response.rows(), 3);
        assert_eq!(response.batch_requests(), 1);

        let mut reference = build_backend(
            BackendKind::Emulated,
            FormatKind::Fp32,
            d,
            &MethodSpec::iterl2(5),
            ReduceOrder::HwTree,
        )
        .unwrap();
        let mut expect = vec![0u32; bits.len()];
        reference
            .normalize_batch_bits(&bits, &mut expect, 1)
            .unwrap();
        assert_eq!(response.bits(), &expect[..]);

        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.rows, 3);
    }

    #[test]
    fn f32_requests_match_bits_requests() {
        let d = 16;
        let service = ServiceConfig::new(d)
            .with_backend(BackendKind::Native)
            .build()
            .unwrap();
        let values: Vec<f32> = (0..2 * d).map(|i| (i as f32 * 0.71).sin()).collect();
        let bits: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        let via_f32 = service.submit(NormRequest::f32(&values)).unwrap();
        let via_bits = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(via_f32.bits(), via_bits.bits());
        assert_eq!(via_f32.to_f32_vec().len(), 2 * d);
        // f64 decode agrees with the f32 view.
        for (a, b) in via_f32.to_f64_vec().iter().zip(via_f32.to_f32_vec()) {
            assert_eq!(*a, f64::from(b));
        }
    }

    #[test]
    fn empty_and_ragged_requests_are_rejected_up_front() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        assert_eq!(
            service.submit(NormRequest::bits(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        assert_eq!(
            service.submit(NormRequest::f32(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        let ragged = vec![0u32; d + 1];
        assert_eq!(
            service.submit(NormRequest::bits(&ragged)).unwrap_err(),
            NormError::BatchLengthMismatch {
                rows: 1,
                d,
                actual: d + 1
            }
        );
        assert_eq!(
            service.submit_detailed(NormRequest::bits(&[])).unwrap_err(),
            NormError::EmptyRequest
        );
        // Rejections never count as accepted traffic.
        assert_eq!(service.stats().requests, 0);
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let d = 8;
        let service = ServiceConfig::new(d).build().unwrap();
        let bits = row_bits(d, 1);
        service.submit(NormRequest::bits(&bits)).unwrap();
        assert!(!service.is_shutdown());
        service.shutdown();
        assert!(service.is_shutdown());
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown
        );
        assert_eq!(
            service
                .submit_detailed(NormRequest::bits(&bits))
                .unwrap_err(),
            NormError::ServiceShutdown
        );
        // A clone shares the shutdown state.
        assert!(service.clone().is_shutdown());
    }

    #[test]
    fn detailed_row_agrees_with_submit_and_reports_moments() {
        let d = 32;
        for backend in BackendKind::ALL {
            let service = ServiceConfig::new(d).with_backend(backend).build().unwrap();
            let bits = row_bits(d, 5);
            let plain = service.submit(NormRequest::bits(&bits)).unwrap();
            let (detailed, moments) = service.submit_detailed(NormRequest::bits(&bits)).unwrap();
            assert_eq!(plain.bits(), detailed.bits(), "{backend:?}");
            assert!(moments.m > 0.0 && moments.scale.is_finite());
            // Multi-row requests are a single-row API misuse.
            let two = [bits.clone(), bits.clone()].concat();
            assert_eq!(
                service
                    .submit_detailed(NormRequest::bits(&two))
                    .unwrap_err(),
                NormError::InputLengthMismatch {
                    expected: d,
                    actual: 2 * d
                }
            );
        }
    }

    #[test]
    fn submit_into_matches_submit_and_validates_shapes() {
        let d = 20;
        for coalescing in [true, false] {
            let service = ServiceConfig::new(d)
                .with_coalescing(coalescing)
                .build()
                .unwrap();
            let bits: Vec<u32> = (0..2).flat_map(|r| row_bits(d, r)).collect();
            let expect = service.submit(NormRequest::bits(&bits)).unwrap();
            let mut out = vec![0u32; bits.len()];
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&bits), &mut out)
                    .unwrap(),
                2,
                "coalescing={coalescing}"
            );
            assert_eq!(&out[..], expect.bits(), "coalescing={coalescing}");
            let mut short = vec![0u32; d];
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&bits), &mut short)
                    .unwrap_err(),
                NormError::OutputLengthMismatch {
                    expected: 2 * d,
                    actual: d
                }
            );
            assert_eq!(
                service
                    .submit_into(NormRequest::bits(&[]), &mut [])
                    .unwrap_err(),
                NormError::EmptyRequest
            );
        }
        let service = ServiceConfig::new(d).build().unwrap();
        service.shutdown();
        let bits = row_bits(d, 1);
        let mut out = vec![0u32; d];
        assert_eq!(
            service
                .submit_into(NormRequest::bits(&bits), &mut out)
                .unwrap_err(),
            NormError::ServiceShutdown
        );
    }

    #[test]
    fn per_call_path_matches_service_path() {
        let d = 40;
        for backend in BackendKind::ALL {
            for spec in MethodSpec::REGISTRY {
                let service = ServiceConfig::new(d)
                    .with_backend(backend)
                    .with_method(spec)
                    .build()
                    .unwrap();
                let bits = row_bits(d, 9);
                let via_service = service.submit(NormRequest::bits(&bits)).unwrap();
                let via_per_call = service.normalize_per_call(&bits).unwrap();
                assert_eq!(via_service.bits(), &via_per_call[..], "{}", service.label());
            }
        }
        let service = ServiceConfig::new(d).build().unwrap();
        assert_eq!(
            service.normalize_per_call(&[]).unwrap_err(),
            NormError::EmptyRequest
        );
    }

    #[test]
    fn rsqrt_trace_matches_typed_iteration() {
        let service = ServiceConfig::new(1)
            .with_format(FormatKind::Fp16)
            .build()
            .unwrap();
        let trace = service.rsqrt_trace(10.5, 4);
        let typed = iterate(Fp16::from_f64(10.5), &IterConfig::fixed_steps(4));
        assert_eq!(trace.m, Fp16::from_f64(10.5).to_f64());
        assert_eq!(trace.a0, typed.a0.to_f64());
        assert_eq!(trace.lambda, typed.lambda.to_f64());
        assert_eq!(trace.steps.len(), 4);
        for (a, b) in trace.steps.iter().zip(&typed.steps) {
            assert_eq!(*a, b.to_f64());
        }
    }

    #[test]
    fn pool_caches_services_and_applies_site_affine() {
        let d = 12;
        let gamma: Vec<u32> = (0..d)
            .map(|i| Fp32::from_f64(1.0 + i as f64 * 0.05).to_bits())
            .collect();
        let beta: Vec<u32> = (0..d)
            .map(|i| Fp32::from_f64(i as f64 * 0.01).to_bits())
            .collect();
        let mut pool = NormServicePool::new(ServiceConfig::new(d));
        assert!(pool.is_empty());
        let plain = pool.add_site(None, None);
        let affine = pool.add_site(Some(&gamma), Some(&beta));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.d(), d);

        let spec = MethodSpec::iterl2(5);
        let first = pool.service(affine, &spec).unwrap();
        let again = pool.service(affine, &spec).unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "cache must return the same service"
        );
        let other = pool.service(plain, &spec).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));

        // The affine site's output matches a directly built affine service.
        let bits = row_bits(d, 3);
        let expect = ServiceConfig::new(d)
            .with_affine_bits(&gamma, &beta)
            .build()
            .unwrap()
            .submit(NormRequest::bits(&bits))
            .unwrap();
        let got = first.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(got.bits(), expect.bits());
        let got_plain = other.submit(NormRequest::bits(&bits)).unwrap();
        assert_ne!(got_plain.bits(), expect.bits(), "affine must matter");
    }

    #[test]
    #[should_panic(expected = "unknown norm site")]
    fn pool_rejects_unknown_site() {
        let pool = NormServicePool::new(ServiceConfig::new(4));
        let _ = pool.service(0, &MethodSpec::iterl2(5));
    }
}
