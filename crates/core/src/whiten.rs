//! Iterative whitening engine: Newton–Schulz `Σ^{-1/2}` as a batch
//! workload (IterNorm, Huang et al. — "Iterative Normalization: Beyond
//! Standardization towards Efficient Whitening").
//!
//! The paper's core trick — replacing an exact inverse square root with a
//! cheap convergent iteration — generalizes from the per-row *scalar*
//! `1/√m` of IterL2Norm to the *matrix* inverse square root a whitening
//! layer needs. One whitening request is a row-major `m × d` **group**
//! `X`; the engine computes
//!
//! ```text
//! Xc   = X − mean(X)                  (per column; GroupMode::Center)
//! Σ    = (1/m)·Xcᵀ·Xc + eps·I
//! Σ_N  = Σ / trace(Σ)                 (trace normalization)
//! P₀   = I
//! P_{k+1} = 1.5·P_k − 0.5·P_k³·Σ_N    (T Newton–Schulz steps)
//! Y    = (P_T / √trace(Σ)) · Xcᵀ      (apply Σ^{-1/2} ≈ P_T·trace^{-1/2})
//! ```
//!
//! applied row-wise, so `Y` is the whitened group in the same `m × d`
//! layout. Trace normalization pulls `Σ_N`'s spectrum into `(0, 1]`,
//! which is what makes the fixed-point iteration converge without an
//! eigendecomposition — the exact matrix analogue of the paper's
//! exponent-seeded scalar iteration.
//!
//! # Execution paths and bit-identity
//!
//! Exactly like the normalization engine, two implementations share one
//! object-safe interface ([`WhitenExec`]):
//!
//! * [`Emulated<F>`](crate::backend::Emulated)-style softfloat execution
//!   for every format (FP32/FP16/BF16) — the bit-accurate reference
//!   oracle.
//! * A host-`f32` native path (FP32 only) that reuses the existing
//!   [`SimdLevel`] dispatch for the `d × d` matrix kernels — AVX2, SSE2,
//!   portable, or forced scalar, runtime-resolved exactly like the
//!   normalization backend and never silently downgraded.
//!
//! The native path is **bit-identical** to the emulated FP32 oracle at
//! every SIMD level. The argument is the same as `simd.rs`, but it is
//! worth restating for matmuls, where "SIMD changes the answer" folklore
//! comes from: every loop in this module is written so that the
//! reduction chain of each *output element* is a fixed, sequential
//! left-to-right fold, and SIMD lanes only ever span *independent
//! output elements* (the contiguous last index of each buffer). The
//! covariance fills `Σ[i][j] += Xc[k][i]·Xc[k][j]` with `k` outermost;
//! the matmuls run `C[i][j] += A[i][k]·B[k][j]` with `k` in the middle
//! loop; the apply step runs `Y[k][i] += Xc[k][j]·WMᵀ[j][i]` with `j`
//! in the middle loop. In all three, the innermost loop is an
//! elementwise multiply-then-add over a contiguous row — a vector lane
//! owns one output element and performs the identical IEEE-754 binary32
//! round-to-nearest-even operation sequence the scalar code performs,
//! in the same order. No FMA is used on the value path (explicit mul
//! then add; Rust never contracts, and intrinsic calls are never
//! contracted), and no reduction is ever reassociated across lanes.
//! `tests/whiten_bit_identity.rs` enforces native ≡ emulated for every
//! forced level × d × T.
//!
//! Division and square root are correctly rounded in both IEEE binary32
//! hardware and the softfloat emulator, so `1/trace` and `√(1/trace)`
//! carry the equivalence too.
//!
//! Inputs are expected to be finite (or canonical quiet NaNs, which
//! propagate identically). Non-canonical NaN payloads and invalid
//! operations that *create* NaNs (`∞ − ∞`, `√negative`) are outside the
//! bit-identity contract: hardware and emulator pick different payloads
//! there, exactly as for the normalization engine.
#![allow(unsafe_code)]

use core::fmt;

use softfloat::{Bf16, Float, Fp16, Fp32};
use std::sync::{Mutex, PoisonError};

/// One worker's pre-split group run (row counts + bit slices), parked
/// behind its own mutex for the shared-closure `&mut` hand-off.
type GroupChunk<'a> = Mutex<Option<(&'a [usize], &'a [u32], &'a mut [u32])>>;

use crate::backend::{BackendKind, FormatKind};
use crate::error::NormError;
use crate::simd::{self, SimdKernel, SimdLevel};

/// How a whitening group is shifted before its covariance is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GroupMode {
    /// Subtract the per-column mean of the group first (the standard
    /// whitening definition — covariance of the centered samples).
    #[default]
    Center,
    /// Use the group as-is (second-moment whitening; what a caller wants
    /// when the data is already centered upstream).
    Raw,
}

impl GroupMode {
    /// Both modes, for sweeps and CLI help.
    pub const ALL: [GroupMode; 2] = [GroupMode::Center, GroupMode::Raw];

    /// Parse a mode name (`"center"`, `"raw"`), case-insensitively.
    /// Returns `None` for anything else.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "center" => Some(GroupMode::Center),
            "raw" => Some(GroupMode::Raw),
            _ => None,
        }
    }

    /// Canonical name (`"center"` / `"raw"`).
    pub fn name(self) -> &'static str {
        match self {
            GroupMode::Center => "center",
            GroupMode::Raw => "raw",
        }
    }
}

impl fmt::Display for GroupMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The whitening workload's registry entry, alongside
/// [`MethodSpec`](crate::MethodSpec): how many Newton–Schulz steps run,
/// how much ridge is added to the covariance diagonal, and whether the
/// group is centered first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhitenSpec {
    /// Newton–Schulz step count `T`. `T = 0` applies the trace-normalized
    /// identity — output is `√(1/trace(Σ))·Xc`, a pure rescale.
    pub t: u32,
    /// Ridge added to the covariance diagonal (`Σ += eps·I`) before trace
    /// normalization, rounded once into the executed format. Keeps a
    /// degenerate group (`m < d`, or `m = 1` centered) invertible-ish and
    /// the iteration finite.
    pub eps: f64,
    /// Whether the group is mean-centered before its covariance is taken.
    pub group_mode: GroupMode,
}

impl Default for WhitenSpec {
    fn default() -> Self {
        WhitenSpec {
            t: 5,
            eps: 1e-5,
            group_mode: GroupMode::Center,
        }
    }
}

impl WhitenSpec {
    /// The default spec (`t = 5`, `eps = 1e-5`, centered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the Newton–Schulz step count.
    pub fn with_t(mut self, t: u32) -> Self {
        self.t = t;
        self
    }

    /// Set the covariance ridge.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Set the group shift mode.
    pub fn with_group_mode(mut self, group_mode: GroupMode) -> Self {
        self.group_mode = group_mode;
        self
    }

    /// Report label, e.g. `"whiten[t=5,eps=1e-5,center]"`.
    pub fn label(&self) -> String {
        format!(
            "whiten[t={},eps={:e},{}]",
            self.t,
            self.eps,
            self.group_mode.name()
        )
    }
}

/// Scalar diagnostics of one whitened group, widened to `f64` for
/// type-erased reporting — the whitening analogue of
/// [`RowMoments`](crate::backend::RowMoments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhitenDetail {
    /// Mean of all `m·d` input elements (format arithmetic, widened).
    pub mean: f64,
    /// `trace(Σ)` after the ridge — the total variance the group carries.
    pub trace: f64,
    /// The global scale `√(1/trace(Σ))` folded into the whiten matrix.
    pub scale: f64,
    /// Convergence residual `‖P_T²·Σ_N − I‖_max`, evaluated in `f64` off
    /// the bit path. Small (≲ 1e-3) when the iteration converged; `NaN`
    /// when it blew up.
    pub residual: f64,
}

/// A whitening executor: `m × d` groups of raw storage bits in, whitened
/// bits out — the whitening counterpart of
/// [`NormBackend`](crate::backend::NormBackend), object-safe for the same
/// reason (heterogeneous value types behind one service).
pub trait WhitenExec: Send {
    /// Which arithmetic implementation this is.
    fn backend(&self) -> BackendKind;

    /// The executed format's display name (e.g. `"FP32"`).
    fn format_name(&self) -> &'static str;

    /// The feature length `d` (groups are `m × d`, any `m ≥ 1`).
    fn d(&self) -> usize;

    /// The spec this executor runs.
    fn spec(&self) -> WhitenSpec;

    /// The *resolved* SIMD execution level — never [`SimdLevel::Auto`];
    /// scalar implementations report [`SimdLevel::Scalar`].
    fn simd_level(&self) -> SimdLevel {
        SimdLevel::Scalar
    }

    /// Combined report label, e.g. `"native-f32/FP32/whiten[t=5,…]"`.
    fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.backend().name(),
            self.format_name(),
            self.spec().label()
        )
    }

    /// Whiten a concatenation of groups: `group_rows[g]` is the sample
    /// count `m` of group `g`, and `input`/`out` hold the groups
    /// back-to-back in row-major order. Groups are independent, so an
    /// implementation may partition them across up to `threads` workers —
    /// output bits never depend on the thread count (each group's
    /// operation chain is internally sequential either way). Returns the
    /// total row count.
    ///
    /// # Errors
    ///
    /// [`NormError::ZeroThreads`] when `threads == 0`,
    /// [`NormError::OutputLengthMismatch`] when `out` differs from
    /// `input` in length, [`NormError::EmptyRequest`] when there are no
    /// groups or a group has `m = 0`, and
    /// [`NormError::GroupShapeMismatch`] when the buffer is not the
    /// concatenation the row counts describe.
    fn whiten_groups(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        group_rows: &[usize],
        threads: usize,
    ) -> Result<usize, NormError>;

    /// [`whiten_groups`](WhitenExec::whiten_groups) over an injected
    /// [`PartitionRunner`](crate::executor::PartitionRunner) — the
    /// serving path's resident per-shard pool. The default executes
    /// through the thread-count entry point at the runner's width
    /// (bits never depend on the vehicle); the native executor
    /// overrides it to partition groups on the runner itself.
    ///
    /// # Errors
    ///
    /// The shape errors of [`whiten_groups`](WhitenExec::whiten_groups).
    fn whiten_groups_runner(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        group_rows: &[usize],
        runner: &dyn crate::executor::PartitionRunner,
    ) -> Result<usize, NormError> {
        self.whiten_groups(input, out, group_rows, runner.width().max(1))
    }

    /// Whiten exactly one group, additionally returning the scalar
    /// diagnostics as [`WhitenDetail`] — the detailed path behind
    /// reporting front ends (the CLI's `whiten`). The output bits are
    /// identical to the same group going through
    /// [`whiten_groups`](WhitenExec::whiten_groups).
    ///
    /// # Errors
    ///
    /// The shape errors of [`whiten_groups`](WhitenExec::whiten_groups).
    fn whiten_group_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<WhitenDetail, NormError>;

    /// [`whiten_group_detailed`](WhitenExec::whiten_group_detailed) with
    /// a convergence bar: when the residual is not finite or exceeds
    /// `tol`, the error names the step budget, the measured residual and
    /// the tolerance. The output buffer still holds the (unconverged)
    /// whitened bits, so a caller can inspect what the iteration did.
    ///
    /// # Errors
    ///
    /// The shape errors, plus [`NormError::WhitenNotConverged`].
    fn whiten_group_checked(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        tol: f64,
    ) -> Result<WhitenDetail, NormError> {
        let detail = self.whiten_group_detailed(input, out)?;
        if !(detail.residual.is_finite() && detail.residual <= tol) {
            return Err(NormError::WhitenNotConverged {
                steps: self.spec().t,
                residual_bits: detail.residual.to_bits(),
                tol_bits: tol.to_bits(),
            });
        }
        Ok(detail)
    }
}

/// Shared shape validation for a multi-group call. Returns the total row
/// count.
fn validate_groups(
    d: usize,
    input: &[u32],
    out: &[u32],
    group_rows: &[usize],
    threads: usize,
) -> Result<usize, NormError> {
    if threads == 0 {
        return Err(NormError::ZeroThreads);
    }
    if out.len() != input.len() {
        return Err(NormError::OutputLengthMismatch {
            expected: input.len(),
            actual: out.len(),
        });
    }
    if group_rows.is_empty() || group_rows.contains(&0) {
        return Err(NormError::EmptyRequest);
    }
    let rows: usize = group_rows.iter().sum();
    if !input.len().is_multiple_of(d) || rows * d != input.len() {
        return Err(NormError::GroupShapeMismatch {
            rows: input.len() / d,
            d,
            actual: input.len(),
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------------
// Generic softfloat path: the oracle, every format. The loop structure
// below is the canonical operation order; the f32 kernel path mirrors
// it statement for statement (same fold directions, same mul-then-add),
// which is what the bit-identity suite pins.
// --------------------------------------------------------------------

/// Reusable per-call buffers for one group, in format values.
#[derive(Debug, Clone)]
struct Scratch<F> {
    mean: Vec<F>,   // d
    xc: Vec<F>,     // m·d   centered group
    sigma: Vec<F>,  // d·d   covariance + ridge (kept for diagnostics)
    sigman: Vec<F>, // d·d   trace-normalized covariance
    p: Vec<F>,      // d·d   Newton–Schulz iterate
    p2: Vec<F>,     // d·d
    p3: Vec<F>,     // d·d
    g: Vec<F>,      // d·d   P³·Σ_N, then reused as the whiten matrix
    wmt: Vec<F>,    // d·d   transposed whiten matrix
}

impl<F> Default for Scratch<F> {
    fn default() -> Self {
        Scratch {
            mean: Vec::new(),
            xc: Vec::new(),
            sigma: Vec::new(),
            sigman: Vec::new(),
            p: Vec::new(),
            p2: Vec::new(),
            p3: Vec::new(),
            g: Vec::new(),
            wmt: Vec::new(),
        }
    }
}

impl<F: Float> Scratch<F> {
    fn reserve(&mut self, m: usize, d: usize) {
        self.mean.resize(d, F::zero());
        self.xc.resize(m * d, F::zero());
        for buf in [
            &mut self.sigma,
            &mut self.sigman,
            &mut self.p,
            &mut self.p2,
            &mut self.p3,
            &mut self.g,
            &mut self.wmt,
        ] {
            buf.resize(d * d, F::zero());
        }
    }
}

/// `c = a·b` for `d × d` row-major matrices: zero the output, then the
/// i-k-j axpy order — each `c[i][j]` accumulates `a[i][k]·b[k][j]` over
/// `k` ascending, one multiply then one add per term.
// normlint: kernel-begin
fn matmul_soft<F: Float>(c: &mut [F], a: &[F], b: &[F], d: usize) {
    c.fill(F::zero());
    for i in 0..d {
        let crow = &mut c[i * d..(i + 1) * d];
        for k in 0..d {
            let aik = a[i * d + k];
            let brow = &b[k * d..(k + 1) * d];
            for (cij, &bkj) in crow.iter_mut().zip(brow) {
                *cij = *cij + aik * bkj;
            }
        }
    }
}
// normlint: kernel-end

/// Whiten one group in format arithmetic. `x` is `m × d`; the whitened
/// rows land in `y`. The scratch keeps `sigma`, `sigman` and `p` for the
/// diagnostics path.
fn whiten_group_soft<F: Float>(
    x: &[F],
    y: &mut [F],
    d: usize,
    spec: &WhitenSpec,
    eps: F,
    s: &mut Scratch<F>,
) {
    let m = x.len() / d;
    s.reserve(m, d);
    let inv_m = F::one() / F::from_f64(m as f64);
    // Center (or copy) the group.
    match spec.group_mode {
        GroupMode::Center => {
            s.mean.fill(F::zero());
            for row in x.chunks_exact(d) {
                for (mj, &xj) in s.mean.iter_mut().zip(row) {
                    *mj = *mj + xj;
                }
            }
            for mj in s.mean.iter_mut() {
                *mj = *mj * inv_m;
            }
            for (xcrow, xrow) in s.xc.chunks_exact_mut(d).zip(x.chunks_exact(d)) {
                for ((xcj, &xj), &mj) in xcrow.iter_mut().zip(xrow).zip(&s.mean) {
                    *xcj = xj - mj;
                }
            }
        }
        GroupMode::Raw => s.xc.copy_from_slice(x),
    }
    // Covariance: Σ[i][j] += Xc[k][i]·Xc[k][j], k outermost so each
    // output element folds over k ascending.
    s.sigma.fill(F::zero());
    for xcrow in s.xc.chunks_exact(d) {
        for i in 0..d {
            let xki = xcrow[i];
            let srow = &mut s.sigma[i * d..(i + 1) * d];
            for (sij, &xkj) in srow.iter_mut().zip(xcrow) {
                *sij = *sij + xki * xkj;
            }
        }
    }
    for sij in s.sigma.iter_mut() {
        *sij = *sij * inv_m;
    }
    for i in 0..d {
        s.sigma[i * d + i] = s.sigma[i * d + i] + eps;
    }
    // Trace normalization: a sequential fold over the diagonal.
    let mut tr = F::zero();
    for i in 0..d {
        tr = tr + s.sigma[i * d + i];
    }
    let rtr = F::one() / tr;
    for (nij, &sij) in s.sigman.iter_mut().zip(&s.sigma) {
        *nij = sij * rtr;
    }
    // Newton–Schulz: P ← 1.5·P − 0.5·(P³·Σ_N).
    s.p.fill(F::zero());
    for i in 0..d {
        s.p[i * d + i] = F::one();
    }
    let three_halves = F::from_f64(1.5);
    let half = F::from_f64(0.5);
    // normlint: kernel-begin
    for _ in 0..spec.t {
        let (p2, p3, g) = (&mut s.p2, &mut s.p3, &mut s.g);
        matmul_soft(p2, &s.p, &s.p, d);
        matmul_soft(p3, p2, &s.p, d);
        matmul_soft(g, p3, &s.sigman, d);
        for (pij, &gij) in s.p.iter_mut().zip(s.g.iter()) {
            *pij = (three_halves * *pij) - (half * gij);
        }
    }
    // normlint: kernel-end
    // Fold the trace scale back in and transpose for a contiguous apply.
    let scale = rtr.sqrt();
    for (wij, &pij) in s.g.iter_mut().zip(&s.p) {
        *wij = pij * scale;
    }
    for i in 0..d {
        for j in 0..d {
            s.wmt[j * d + i] = s.g[i * d + j];
        }
    }
    // Apply: Y[k][i] += Xc[k][j]·WMᵀ[j][i], j in the middle loop so each
    // output element folds over j ascending.
    y.fill(F::zero());
    for (yrow, xcrow) in y.chunks_exact_mut(d).zip(s.xc.chunks_exact(d)) {
        for (j, &xkj) in xcrow.iter().enumerate() {
            let wrow = &s.wmt[j * d..(j + 1) * d];
            for (yki, &wji) in yrow.iter_mut().zip(wrow) {
                *yki = *yki + xkj * wji;
            }
        }
    }
}

/// `f64` diagnostics computed from the post-run scratch state, off the
/// bit path (the widening is exact for every ≤ 32-bit format).
fn detail_from_scratch<F: Float>(x: &[F], s: &Scratch<F>, d: usize, t: u32) -> WhitenDetail {
    let mean = x.iter().map(|v| v.to_f64()).sum::<f64>() / x.len() as f64;
    let trace = (0..d).map(|i| s.sigma[i * d + i].to_f64()).sum::<f64>();
    let scale = (1.0 / trace).sqrt();
    let p: Vec<f64> = s.p.iter().map(|v| v.to_f64()).collect();
    let sigman: Vec<f64> = s.sigman.iter().map(|v| v.to_f64()).collect();
    WhitenDetail {
        mean,
        trace,
        scale,
        residual: residual_f64(&p, &sigman, d, t),
    }
}

/// `‖P²·Σ_N − I‖_max` in `f64` — the Newton–Schulz convergence measure.
/// `T = 0` means the caller asked for the pure trace rescale, which is
/// exact by definition, so the residual is reported as 0.
fn residual_f64(p: &[f64], sigman: &[f64], d: usize, t: u32) -> f64 {
    if t == 0 {
        return 0.0;
    }
    let mut p2 = vec![0.0f64; d * d];
    for i in 0..d {
        for k in 0..d {
            let aik = p[i * d + k];
            for j in 0..d {
                p2[i * d + j] += aik * p[k * d + j];
            }
        }
    }
    let mut worst = 0.0f64;
    for i in 0..d {
        for j in 0..d {
            let mut v = 0.0f64;
            for k in 0..d {
                v += p2[i * d + k] * sigman[k * d + j];
            }
            let target = if i == j { 1.0 } else { 0.0 };
            let err = (v - target).abs();
            if !err.is_finite() {
                return f64::NAN;
            }
            if err > worst {
                worst = err;
            }
        }
    }
    worst
}

/// The softfloat whitening executor: bit-accurate emulation of format
/// `F`. The only option for FP16/BF16, and the reference oracle for
/// FP32. Runs groups serially — it is the correctness yardstick, not the
/// fast path.
#[derive(Debug, Clone)]
pub struct EmulatedWhiten<F: Float> {
    d: usize,
    spec: WhitenSpec,
    eps: F,
    decoded: Vec<F>,
    encoded: Vec<F>,
    scratch: Scratch<F>,
}

impl<F: Float> EmulatedWhiten<F> {
    /// Executor for `d`-feature groups under `spec`.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`.
    pub fn new(d: usize, spec: WhitenSpec) -> Result<Self, NormError> {
        if d == 0 {
            return Err(NormError::EmptyInput);
        }
        Ok(EmulatedWhiten {
            d,
            spec,
            eps: F::from_f64(spec.eps),
            decoded: Vec::new(),
            encoded: Vec::new(),
            scratch: Scratch::default(),
        })
    }

    fn run_group(&mut self, input: &[u32], out: &mut [u32]) {
        self.decoded.clear();
        self.decoded.extend(input.iter().map(|&b| F::from_bits(b)));
        self.encoded.clear();
        self.encoded.resize(input.len(), F::zero());
        whiten_group_soft(
            &self.decoded,
            &mut self.encoded,
            self.d,
            &self.spec,
            self.eps,
            &mut self.scratch,
        );
        for (slot, v) in out.iter_mut().zip(&self.encoded) {
            *slot = v.to_bits();
        }
    }
}

impl<F: Float> WhitenExec for EmulatedWhiten<F> {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        F::NAME
    }

    fn d(&self) -> usize {
        self.d
    }

    fn spec(&self) -> WhitenSpec {
        self.spec
    }

    fn whiten_groups(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        group_rows: &[usize],
        threads: usize,
    ) -> Result<usize, NormError> {
        let rows = validate_groups(self.d, input, out, group_rows, threads)?;
        // Serial on purpose: groups are independent, so bits cannot
        // depend on the thread count either way, and the oracle's job is
        // reference semantics, not throughput.
        let mut offset = 0;
        for &m in group_rows {
            let len = m * self.d;
            self.run_group(&input[offset..offset + len], &mut out[offset..offset + len]);
            offset += len;
        }
        Ok(rows)
    }

    fn whiten_group_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<WhitenDetail, NormError> {
        let rows = input.len() / self.d.max(1);
        validate_groups(self.d, input, out, &[rows], 1)?;
        self.run_group(input, out);
        Ok(detail_from_scratch(
            &self.decoded,
            &self.scratch,
            self.d,
            self.spec.t,
        ))
    }
}

// --------------------------------------------------------------------
// Native f32 path: the same operation order, with the elementwise inner
// loops routed through a SIMD kernel tier. Lanes span output elements
// only; the per-element operation chain is the scalar one.
// --------------------------------------------------------------------

/// The five elementwise primitives every whitening loop reduces to. Each
/// is a lanewise map over contiguous `f32` slices — implementations
/// differ only in lane width, never in per-element operation order.
///
/// Methods are `unsafe` because implementations may use instructions the
/// host must support — callers reach them only through kernels resolved
/// by [`simd::resolve`] for this host.
trait WhitenOps {
    /// `dst[i] = dst[i] + src[i]`.
    ///
    /// # Safety: callers must hold the implementation's ISA requirement
    /// (kernels are resolved for this host by [`simd::resolve`]).
    unsafe fn add_assign(&self, dst: &mut [f32], src: &[f32]);
    /// `dst[i] = dst[i] * s`.
    ///
    /// # Safety: callers must hold the implementation's ISA requirement
    /// (kernels are resolved for this host by [`simd::resolve`]).
    unsafe fn scale_assign(&self, dst: &mut [f32], s: f32);
    /// `dst[i] = a[i] - b[i]`.
    ///
    /// # Safety: callers must hold the implementation's ISA requirement
    /// (kernels are resolved for this host by [`simd::resolve`]).
    unsafe fn sub_into(&self, dst: &mut [f32], a: &[f32], b: &[f32]);
    /// `dst[i] = dst[i] + (a * src[i])` — multiply, then add, never FMA.
    ///
    /// # Safety: callers must hold the implementation's ISA requirement
    /// (kernels are resolved for this host by [`simd::resolve`]).
    unsafe fn axpy(&self, dst: &mut [f32], a: f32, src: &[f32]);
    /// `p[i] = (1.5 * p[i]) - (0.5 * g[i])` — the Newton–Schulz combine.
    ///
    /// # Safety: callers must hold the implementation's ISA requirement
    /// (kernels are resolved for this host by [`simd::resolve`]).
    unsafe fn ns_combine(&self, p: &mut [f32], g: &[f32]);
}

/// Plain scalar loops — the forced-`SimdLevel::Scalar` tier, and the
/// per-element semantics every wider tier must reproduce.
struct ScalarOps;

impl WhitenOps for ScalarOps {
    // SAFETY: plain scalar loops — no instruction-set requirement.
    #[inline(always)]
    unsafe fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    // SAFETY: plain scalar loops — no instruction-set requirement.
    #[inline(always)]
    unsafe fn scale_assign(&self, dst: &mut [f32], s: f32) {
        for d in dst.iter_mut() {
            *d *= s;
        }
    }

    // SAFETY: plain scalar loops — no instruction-set requirement.
    #[inline(always)]
    unsafe fn sub_into(&self, dst: &mut [f32], a: &[f32], b: &[f32]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x - y;
        }
    }

    // SAFETY: plain scalar loops — no instruction-set requirement.
    #[inline(always)]
    unsafe fn axpy(&self, dst: &mut [f32], a: f32, src: &[f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += a * s;
        }
    }

    // SAFETY: plain scalar loops — no instruction-set requirement.
    #[inline(always)]
    unsafe fn ns_combine(&self, p: &mut [f32], g: &[f32]) {
        for (pi, &gi) in p.iter_mut().zip(g) {
            *pi = (1.5 * *pi) - (0.5 * gi);
        }
    }
}

/// Lane width of the portable tier's explicit chunks.
const PORTABLE_LANES: usize = 8;

/// Fixed-width chunks in plain Rust, shaped so the autovectorizer can
/// widen them on any architecture. Elementwise maps carry no cross-lane
/// state, so the chunking cannot change bits — it only exposes the
/// parallelism.
struct PortableOps;

macro_rules! portable_map {
    ($dst:expr, |$d:ident| $body:expr) => {{
        let mut chunks = $dst.chunks_exact_mut(PORTABLE_LANES);
        for chunk in &mut chunks {
            for $d in chunk.iter_mut() {
                $body
            }
        }
        for $d in chunks.into_remainder().iter_mut() {
            $body
        }
    }};
}

macro_rules! portable_zip {
    ($dst:expr, $src:expr, |$d:ident, $s:ident| $body:expr) => {{
        let mut dc = $dst.chunks_exact_mut(PORTABLE_LANES);
        let mut sc = $src.chunks_exact(PORTABLE_LANES);
        for (dchunk, schunk) in (&mut dc).zip(&mut sc) {
            for ($d, &$s) in dchunk.iter_mut().zip(schunk) {
                $body
            }
        }
        for ($d, &$s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            $body
        }
    }};
}

impl WhitenOps for PortableOps {
    // SAFETY: portable lanewise loops — no target-specific instructions.
    #[inline(always)]
    unsafe fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        portable_zip!(dst, src, |d, s| *d += s);
    }

    // SAFETY: portable lanewise loops — no target-specific instructions.
    #[inline(always)]
    unsafe fn scale_assign(&self, dst: &mut [f32], s: f32) {
        portable_map!(dst, |d| *d *= s);
    }

    // SAFETY: portable lanewise loops — no target-specific instructions.
    #[inline(always)]
    unsafe fn sub_into(&self, dst: &mut [f32], a: &[f32], b: &[f32]) {
        let mut dc = dst.chunks_exact_mut(PORTABLE_LANES);
        let mut ac = a.chunks_exact(PORTABLE_LANES);
        let mut bc = b.chunks_exact(PORTABLE_LANES);
        for ((dchunk, achunk), bchunk) in (&mut dc).zip(&mut ac).zip(&mut bc) {
            for ((d, &x), &y) in dchunk.iter_mut().zip(achunk).zip(bchunk) {
                *d = x - y;
            }
        }
        for ((d, &x), &y) in dc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *d = x - y;
        }
    }

    // SAFETY: portable lanewise loops — no target-specific instructions.
    #[inline(always)]
    unsafe fn axpy(&self, dst: &mut [f32], a: f32, src: &[f32]) {
        portable_zip!(dst, src, |d, s| *d += a * s);
    }

    // SAFETY: portable lanewise loops — no target-specific instructions.
    #[inline(always)]
    unsafe fn ns_combine(&self, p: &mut [f32], g: &[f32]) {
        portable_zip!(p, g, |pi, gi| *pi = (1.5 * *pi) - (0.5 * gi));
    }
}

/// Reusable per-call `f32` buffers (see [`Scratch`] for the roles).
#[derive(Debug, Clone, Default)]
struct ScratchF32 {
    mean: Vec<f32>,
    xc: Vec<f32>,
    sigma: Vec<f32>,
    sigman: Vec<f32>,
    p: Vec<f32>,
    p2: Vec<f32>,
    p3: Vec<f32>,
    g: Vec<f32>,
    wmt: Vec<f32>,
}

impl ScratchF32 {
    fn reserve(&mut self, m: usize, d: usize) {
        self.mean.resize(d, 0.0);
        self.xc.resize(m * d, 0.0);
        for buf in [
            &mut self.sigma,
            &mut self.sigman,
            &mut self.p,
            &mut self.p2,
            &mut self.p3,
            &mut self.g,
            &mut self.wmt,
        ] {
            buf.resize(d * d, 0.0);
        }
    }
}

/// `c = a·b` through the kernel's axpy — the i-k-j order of
/// [`matmul_soft`], statement for statement.
// SAFETY: bounds-checked slice loops; `unsafe` only forwards the `ops` ISA contract.
#[inline(always)]
// normlint: kernel-begin
unsafe fn matmul_f32<O: WhitenOps>(ops: &O, c: &mut [f32], a: &[f32], b: &[f32], d: usize) {
    c.fill(0.0);
    for i in 0..d {
        let crow = &mut c[i * d..(i + 1) * d];
        for k in 0..d {
            ops.axpy(crow, a[i * d + k], &b[k * d..(k + 1) * d]);
        }
    }
}
// normlint: kernel-end

/// Whiten one group in host-`f32` arithmetic — the f32 twin of
/// [`whiten_group_soft`]: identical loop structure and fold directions,
/// with the elementwise inner loops routed through `ops`.
// SAFETY: bounds-checked slice loops; `unsafe` only forwards the `ops` ISA contract.
#[inline(always)]
unsafe fn whiten_group_f32<O: WhitenOps>(
    ops: &O,
    x: &[f32],
    y: &mut [f32],
    d: usize,
    spec: &WhitenSpec,
    eps: f32,
    s: &mut ScratchF32,
) {
    let m = x.len() / d;
    s.reserve(m, d);
    let inv_m = 1.0f32 / (m as f64 as f32);
    match spec.group_mode {
        GroupMode::Center => {
            s.mean.fill(0.0);
            for row in x.chunks_exact(d) {
                ops.add_assign(&mut s.mean, row);
            }
            ops.scale_assign(&mut s.mean, inv_m);
            for (xcrow, xrow) in s.xc.chunks_exact_mut(d).zip(x.chunks_exact(d)) {
                ops.sub_into(xcrow, xrow, &s.mean);
            }
        }
        GroupMode::Raw => s.xc.copy_from_slice(x),
    }
    s.sigma.fill(0.0);
    for xcrow in s.xc.chunks_exact(d) {
        for i in 0..d {
            ops.axpy(&mut s.sigma[i * d..(i + 1) * d], xcrow[i], xcrow);
        }
    }
    ops.scale_assign(&mut s.sigma, inv_m);
    for i in 0..d {
        s.sigma[i * d + i] += eps;
    }
    let mut tr = 0.0f32;
    for i in 0..d {
        tr += s.sigma[i * d + i];
    }
    let rtr = 1.0f32 / tr;
    s.sigman.copy_from_slice(&s.sigma);
    ops.scale_assign(&mut s.sigman, rtr);
    s.p.fill(0.0);
    for i in 0..d {
        s.p[i * d + i] = 1.0;
    }
    // normlint: kernel-begin
    for _ in 0..spec.t {
        matmul_f32(ops, &mut s.p2, &s.p, &s.p, d);
        matmul_f32(ops, &mut s.p3, &s.p2, &s.p, d);
        matmul_f32(ops, &mut s.g, &s.p3, &s.sigman, d);
        ops.ns_combine(&mut s.p, &s.g);
    }
    // normlint: kernel-end
    let scale = rtr.sqrt();
    s.g.copy_from_slice(&s.p);
    ops.scale_assign(&mut s.g, scale);
    for i in 0..d {
        for j in 0..d {
            s.wmt[j * d + i] = s.g[i * d + j];
        }
    }
    y.fill(0.0);
    for (yrow, xcrow) in y.chunks_exact_mut(d).zip(s.xc.chunks_exact(d)) {
        for (j, &xkj) in xcrow.iter().enumerate() {
            ops.axpy(yrow, xkj, &s.wmt[j * d..(j + 1) * d]);
        }
    }
}

/// Safe scalar entry point (no special instructions).
fn whiten_group_scalar(
    x: &[f32],
    y: &mut [f32],
    d: usize,
    spec: &WhitenSpec,
    eps: f32,
    s: &mut ScratchF32,
) {
    // SAFETY: ScalarOps uses no special instructions.
    unsafe { whiten_group_f32(&ScalarOps, x, y, d, spec, eps, s) }
}

/// Portable entry point (no special instructions; autovectorizable).
fn whiten_group_portable(
    x: &[f32],
    y: &mut [f32],
    d: usize,
    spec: &WhitenSpec,
    eps: f32,
    s: &mut ScratchF32,
) {
    // SAFETY: PortableOps uses no special instructions.
    unsafe { whiten_group_f32(&PortableOps, x, y, d, spec, eps, s) }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2/AVX2 lanewise maps. As in `simd.rs`, the generic pipeline is
    //! `#[inline(always)]` and instantiated *inside* each
    //! `#[target_feature]` entry point — routing through a function
    //! pointer would outline a copy without the feature attribute.

    use super::{whiten_group_f32, ScratchF32, WhitenOps, WhitenSpec};
    use core::arch::x86_64::*;

    pub(super) struct Sse2Ops;

    impl WhitenOps for Sse2Ops {
        // SAFETY: SSE2 ops on in-bounds offsets (`i + 4 <= len`); SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
            let mut i = 0;
            while i + 4 <= dst.len() {
                let d = _mm_loadu_ps(dst.as_ptr().add(i));
                let s = _mm_loadu_ps(src.as_ptr().add(i));
                _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_add_ps(d, s));
                i += 4;
            }
            while i < dst.len() {
                dst[i] += src[i];
                i += 1;
            }
        }

        // SAFETY: SSE2 ops on in-bounds offsets (`i + 4 <= len`); SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn scale_assign(&self, dst: &mut [f32], s: f32) {
            let sv = _mm_set1_ps(s);
            let mut i = 0;
            while i + 4 <= dst.len() {
                let d = _mm_loadu_ps(dst.as_ptr().add(i));
                _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_mul_ps(d, sv));
                i += 4;
            }
            while i < dst.len() {
                dst[i] *= s;
                i += 1;
            }
        }

        // SAFETY: SSE2 ops on in-bounds offsets (`i + 4 <= len`); SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn sub_into(&self, dst: &mut [f32], a: &[f32], b: &[f32]) {
            let mut i = 0;
            while i + 4 <= dst.len() {
                let x = _mm_loadu_ps(a.as_ptr().add(i));
                let y = _mm_loadu_ps(b.as_ptr().add(i));
                _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_sub_ps(x, y));
                i += 4;
            }
            while i < dst.len() {
                dst[i] = a[i] - b[i];
                i += 1;
            }
        }

        // SAFETY: SSE2 ops on in-bounds offsets (`i + 4 <= len`); SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn axpy(&self, dst: &mut [f32], a: f32, src: &[f32]) {
            // Multiply then add — never `_mm_fmadd_ps`; the scalar chain
            // is two roundings per term and the lanes must match it.
            let av = _mm_set1_ps(a);
            let mut i = 0;
            while i + 4 <= dst.len() {
                let d = _mm_loadu_ps(dst.as_ptr().add(i));
                let s = _mm_loadu_ps(src.as_ptr().add(i));
                let prod = _mm_mul_ps(av, s);
                _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_add_ps(d, prod));
                i += 4;
            }
            while i < dst.len() {
                dst[i] += a * src[i];
                i += 1;
            }
        }

        // SAFETY: SSE2 ops on in-bounds offsets (`i + 4 <= len`); SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn ns_combine(&self, p: &mut [f32], g: &[f32]) {
            let c15 = _mm_set1_ps(1.5);
            let c05 = _mm_set1_ps(0.5);
            let mut i = 0;
            while i + 4 <= p.len() {
                let pv = _mm_loadu_ps(p.as_ptr().add(i));
                let gv = _mm_loadu_ps(g.as_ptr().add(i));
                let lhs = _mm_mul_ps(c15, pv);
                let rhs = _mm_mul_ps(c05, gv);
                _mm_storeu_ps(p.as_mut_ptr().add(i), _mm_sub_ps(lhs, rhs));
                i += 4;
            }
            while i < p.len() {
                p[i] = (1.5 * p[i]) - (0.5 * g[i]);
                i += 1;
            }
        }
    }

    pub(super) struct Avx2Ops;

    impl WhitenOps for Avx2Ops {
        // SAFETY: AVX2 ops on in-bounds offsets; reached only through the AVX2-resolved kernel.
        #[inline(always)]
        unsafe fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
            let mut i = 0;
            while i + 8 <= dst.len() {
                let d = _mm256_loadu_ps(dst.as_ptr().add(i));
                let s = _mm256_loadu_ps(src.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
                i += 8;
            }
            while i < dst.len() {
                dst[i] += src[i];
                i += 1;
            }
        }

        // SAFETY: AVX2 ops on in-bounds offsets; reached only through the AVX2-resolved kernel.
        #[inline(always)]
        unsafe fn scale_assign(&self, dst: &mut [f32], s: f32) {
            let sv = _mm256_set1_ps(s);
            let mut i = 0;
            while i + 8 <= dst.len() {
                let d = _mm256_loadu_ps(dst.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(d, sv));
                i += 8;
            }
            while i < dst.len() {
                dst[i] *= s;
                i += 1;
            }
        }

        // SAFETY: AVX2 ops on in-bounds offsets; reached only through the AVX2-resolved kernel.
        #[inline(always)]
        unsafe fn sub_into(&self, dst: &mut [f32], a: &[f32], b: &[f32]) {
            let mut i = 0;
            while i + 8 <= dst.len() {
                let x = _mm256_loadu_ps(a.as_ptr().add(i));
                let y = _mm256_loadu_ps(b.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_sub_ps(x, y));
                i += 8;
            }
            while i < dst.len() {
                dst[i] = a[i] - b[i];
                i += 1;
            }
        }

        // SAFETY: AVX2 ops on in-bounds offsets; reached only through the AVX2-resolved kernel.
        #[inline(always)]
        unsafe fn axpy(&self, dst: &mut [f32], a: f32, src: &[f32]) {
            // Multiply then add — never `_mm256_fmadd_ps` (see Sse2Ops).
            let av = _mm256_set1_ps(a);
            let mut i = 0;
            while i + 8 <= dst.len() {
                let d = _mm256_loadu_ps(dst.as_ptr().add(i));
                let s = _mm256_loadu_ps(src.as_ptr().add(i));
                let prod = _mm256_mul_ps(av, s);
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, prod));
                i += 8;
            }
            while i < dst.len() {
                dst[i] += a * src[i];
                i += 1;
            }
        }

        // SAFETY: AVX2 ops on in-bounds offsets; reached only through the AVX2-resolved kernel.
        #[inline(always)]
        unsafe fn ns_combine(&self, p: &mut [f32], g: &[f32]) {
            let c15 = _mm256_set1_ps(1.5);
            let c05 = _mm256_set1_ps(0.5);
            let mut i = 0;
            while i + 8 <= p.len() {
                let pv = _mm256_loadu_ps(p.as_ptr().add(i));
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let lhs = _mm256_mul_ps(c15, pv);
                let rhs = _mm256_mul_ps(c05, gv);
                _mm256_storeu_ps(p.as_mut_ptr().add(i), _mm256_sub_ps(lhs, rhs));
                i += 8;
            }
            while i < p.len() {
                p[i] = (1.5 * p[i]) - (0.5 * g[i]);
                i += 1;
            }
        }
    }

    /// # Safety
    ///
    /// Caller guarantees SSE2 (the x86-64 baseline — always true here).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn whiten_group_sse2(
        x: &[f32],
        y: &mut [f32],
        d: usize,
        spec: &WhitenSpec,
        eps: f32,
        s: &mut ScratchF32,
    ) {
        whiten_group_f32(&Sse2Ops, x, y, d, spec, eps, s)
    }

    /// # Safety
    ///
    /// Caller guarantees AVX2+FMA were runtime-detected. FMA is enabled
    /// for parity with the resolver's detection, but no FMA intrinsic is
    /// used — the value path is mul-then-add throughout.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn whiten_group_avx2(
        x: &[f32],
        y: &mut [f32],
        d: usize,
        spec: &WhitenSpec,
        eps: f32,
        s: &mut ScratchF32,
    ) {
        whiten_group_f32(&Avx2Ops, x, y, d, spec, eps, s)
    }
}

/// The native whitening executor: host `f32` arithmetic running the
/// identical operation order as the softfloat oracle, with the `d × d`
/// kernels dispatched through the resolved [`SimdLevel`]. FP32 only;
/// bit-identical to [`EmulatedWhiten<Fp32>`](EmulatedWhiten) at every
/// level (enforced by `tests/whiten_bit_identity.rs`).
#[derive(Debug, Clone)]
pub struct NativeWhitenF32 {
    d: usize,
    spec: WhitenSpec,
    eps: f32,
    kernel: Option<SimdKernel>,
    scratch: ScratchF32,
}

impl NativeWhitenF32 {
    /// Executor at the best SIMD level the host supports.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`.
    pub fn new(d: usize, spec: WhitenSpec) -> Result<Self, NormError> {
        Self::with_simd(d, spec, SimdLevel::Auto)
    }

    /// Executor at a specific SIMD level.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] when `d == 0`;
    /// [`NormError::SimdUnsupported`] when `level` forces an instruction
    /// set this host does not have.
    pub fn with_simd(d: usize, spec: WhitenSpec, level: SimdLevel) -> Result<Self, NormError> {
        if d == 0 {
            return Err(NormError::EmptyInput);
        }
        let kernel = simd::resolve(level, BackendKind::Native)?;
        Ok(NativeWhitenF32 {
            d,
            spec,
            // The ridge is rounded into the format once, here — the same
            // value the oracle's `F::from_f64(spec.eps)` produces.
            eps: spec.eps as f32,
            kernel,
            scratch: ScratchF32::default(),
        })
    }

    fn run_group(&self, input: &[u32], out: &mut [u32], scratch: &mut ScratchF32) {
        let x: Vec<f32> = input.iter().map(|&b| f32::from_bits(b)).collect();
        let mut y = vec![0.0f32; x.len()];
        self.run_group_f32(&x, &mut y, scratch);
        for (slot, v) in out.iter_mut().zip(&y) {
            *slot = v.to_bits();
        }
    }

    fn run_group_f32(&self, x: &[f32], y: &mut [f32], scratch: &mut ScratchF32) {
        match self.kernel {
            None => whiten_group_scalar(x, y, self.d, &self.spec, self.eps, scratch),
            Some(SimdKernel::Portable) => {
                whiten_group_portable(x, y, self.d, &self.spec, self.eps, scratch)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `simd::resolve` yields Sse2 only on x86-64, where SSE2 is baseline.
            Some(SimdKernel::Sse2) => unsafe {
                x86::whiten_group_sse2(x, y, self.d, &self.spec, self.eps, scratch)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `simd::resolve` yields Avx2 only after runtime-detecting AVX2+FMA.
            Some(SimdKernel::Avx2) => unsafe {
                x86::whiten_group_avx2(x, y, self.d, &self.spec, self.eps, scratch)
            },
            #[cfg(not(target_arch = "x86_64"))]
            Some(SimdKernel::Sse2) | Some(SimdKernel::Avx2) => {
                unreachable!("x86 kernels are never resolved off x86-64")
            }
        }
    }
}

impl WhitenExec for NativeWhitenF32 {
    fn backend(&self) -> BackendKind {
        BackendKind::Native
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        self.d
    }

    fn spec(&self) -> WhitenSpec {
        self.spec
    }

    fn simd_level(&self) -> SimdLevel {
        self.kernel.map_or(SimdLevel::Scalar, SimdKernel::level)
    }

    fn whiten_groups(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        group_rows: &[usize],
        threads: usize,
    ) -> Result<usize, NormError> {
        let rows = validate_groups(self.d, input, out, group_rows, threads)?;
        let workers = threads.min(group_rows.len());
        if workers <= 1 {
            let mut scratch = core::mem::take(&mut self.scratch);
            let mut offset = 0;
            for &m in group_rows {
                let len = m * self.d;
                self.run_group(
                    &input[offset..offset + len],
                    &mut out[offset..offset + len],
                    &mut scratch,
                );
                offset += len;
            }
            self.scratch = scratch;
            return Ok(rows);
        }
        // Partition *groups* (not rows) across workers: each group's
        // operation chain is internally sequential, so any partition of
        // whole groups produces the same bits.
        let per = group_rows.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let mut in_rest = input;
            let mut out_rest = out;
            for chunk in group_rows.chunks(per) {
                let take: usize = chunk.iter().map(|&m| m * self.d).sum();
                let (in_chunk, in_tail) = in_rest.split_at(take);
                let (out_chunk, out_tail) = out_rest.split_at_mut(take);
                in_rest = in_tail;
                out_rest = out_tail;
                let this = &*self;
                scope.spawn(move || {
                    let mut scratch = ScratchF32::default();
                    let mut offset = 0;
                    for &m in chunk {
                        let len = m * this.d;
                        this.run_group(
                            &in_chunk[offset..offset + len],
                            &mut out_chunk[offset..offset + len],
                            &mut scratch,
                        );
                        offset += len;
                    }
                });
            }
        });
        Ok(rows)
    }

    fn whiten_groups_runner(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        group_rows: &[usize],
        runner: &dyn crate::executor::PartitionRunner,
    ) -> Result<usize, NormError> {
        let width = runner.width().max(1);
        let rows = validate_groups(self.d, input, out, group_rows, width)?;
        let workers = width.min(group_rows.len());
        if workers <= 1 {
            return self.whiten_groups(input, out, group_rows, 1);
        }
        // The same group-wise chunking as the scoped path (identical
        // `chunks(per)` split → identical bits), with the per-part mutex
        // hand-off the other runner paths use.
        let per = group_rows.len().div_ceil(workers);
        let mut parts: Vec<GroupChunk<'_>> = Vec::new();
        let mut in_rest = input;
        let mut out_rest = out;
        for chunk in group_rows.chunks(per) {
            let take: usize = chunk.iter().map(|&m| m * self.d).sum();
            let (in_chunk, in_tail) = in_rest.split_at(take);
            let (out_chunk, out_tail) = out_rest.split_at_mut(take);
            in_rest = in_tail;
            out_rest = out_tail;
            parts.push(Mutex::new(Some((chunk, in_chunk, out_chunk))));
        }
        let this = &*self;
        runner.run(parts.len(), &|wi| {
            let taken = parts[wi]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            let Some((chunk, in_chunk, out_chunk)) = taken else {
                return;
            };
            let mut scratch = ScratchF32::default();
            let mut offset = 0;
            for &m in chunk {
                let len = m * this.d;
                this.run_group(
                    &in_chunk[offset..offset + len],
                    &mut out_chunk[offset..offset + len],
                    &mut scratch,
                );
                offset += len;
            }
        });
        Ok(rows)
    }

    fn whiten_group_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<WhitenDetail, NormError> {
        let rows = input.len() / self.d.max(1);
        validate_groups(self.d, input, out, &[rows], 1)?;
        let mut scratch = core::mem::take(&mut self.scratch);
        self.run_group(input, out, &mut scratch);
        let d = self.d;
        let x: Vec<f64> = input.iter().map(|&b| f32::from_bits(b) as f64).collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let trace = (0..d).map(|i| scratch.sigma[i * d + i] as f64).sum::<f64>();
        let p: Vec<f64> = scratch.p.iter().map(|&v| v as f64).collect();
        let sigman: Vec<f64> = scratch.sigman.iter().map(|&v| v as f64).collect();
        let detail = WhitenDetail {
            mean,
            trace,
            scale: (1.0 / trace).sqrt(),
            residual: residual_f64(&p, &sigman, d, self.spec.t),
        };
        self.scratch = scratch;
        Ok(detail)
    }
}

/// Build the whitening executor for a `(backend, format)` selection —
/// the single dispatch point the service, CLI and benches share, mirror
/// of [`build_backend_simd`](crate::backend::build_backend_simd).
///
/// # Errors
///
/// [`NormError::EmptyInput`] when `d == 0`,
/// [`NormError::BackendFormatMismatch`] when the native backend is
/// requested for a non-FP32 format, and [`NormError::SimdUnsupported`]
/// when `simd` forces a level this host or backend cannot run.
pub fn build_whiten(
    backend: BackendKind,
    format: FormatKind,
    d: usize,
    spec: WhitenSpec,
    simd: SimdLevel,
) -> Result<Box<dyn WhitenExec>, NormError> {
    // Resolve the SIMD level first so an unsupported forced level fails
    // cleanly on every backend kind (the emulator accepts auto/scalar).
    let kernel = simd::resolve(simd, backend)?;
    match backend {
        BackendKind::Emulated => Ok(match format {
            FormatKind::Fp32 => Box::new(EmulatedWhiten::<Fp32>::new(d, spec)?),
            FormatKind::Fp16 => Box::new(EmulatedWhiten::<Fp16>::new(d, spec)?),
            FormatKind::Bf16 => Box::new(EmulatedWhiten::<Bf16>::new(d, spec)?),
        }),
        BackendKind::Native => {
            if format != FormatKind::Fp32 {
                return Err(NormError::BackendFormatMismatch {
                    backend: backend.name(),
                    format: format.name(),
                });
            }
            let mut exec = NativeWhitenF32::with_simd(d, spec, SimdLevel::Scalar)?;
            exec.kernel = kernel;
            Ok(Box::new(exec))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_bits(m: usize, d: usize, salt: u64) -> Vec<u32> {
        // Deterministic moderate values; enough spread to make Σ well
        // conditioned at the test sizes.
        (0..m * d)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                let v = ((h >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
                Fp32::from_f64(v).to_bits()
            })
            .collect()
    }

    fn emulated(d: usize, spec: WhitenSpec) -> Box<dyn WhitenExec> {
        build_whiten(
            BackendKind::Emulated,
            FormatKind::Fp32,
            d,
            spec,
            SimdLevel::Auto,
        )
        .expect("emulated fp32 always builds")
    }

    #[test]
    fn group_mode_registry_round_trips_and_rejects_garbage() {
        for mode in GroupMode::ALL {
            assert_eq!(GroupMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(GroupMode::parse("CENTER"), Some(GroupMode::Center));
        assert_eq!(GroupMode::parse("Raw"), Some(GroupMode::Raw));
        for text in ["", " center", "raw ", "zca", "centered", "0"] {
            assert_eq!(GroupMode::parse(text), None, "{text:?} must be rejected");
        }
    }

    #[test]
    fn spec_defaults_builders_and_label() {
        let spec = WhitenSpec::default();
        assert_eq!(spec.t, 5);
        assert_eq!(spec.eps, 1e-5);
        assert_eq!(spec.group_mode, GroupMode::Center);
        let spec = WhitenSpec::new()
            .with_t(3)
            .with_eps(1e-4)
            .with_group_mode(GroupMode::Raw);
        assert_eq!(spec.t, 3);
        assert_eq!(spec.eps, 1e-4);
        assert_eq!(spec.group_mode, GroupMode::Raw);
        let label = spec.label();
        assert!(label.contains("whiten") && label.contains("t=3") && label.contains("raw"));
        assert!(WhitenSpec::default().label().contains("center"));
    }

    #[test]
    fn whitened_output_decorrelates_the_group() {
        // The statistical point of the workload: cov(Y) ≈ I for a well
        // conditioned group. Checked in f64 on the decoded output.
        let (m, d) = (256usize, 8usize);
        let bits = group_bits(m, d, 1);
        let mut exec = emulated(d, WhitenSpec::default().with_t(8));
        let mut out = vec![0u32; bits.len()];
        exec.whiten_groups(&bits, &mut out, &[m], 1).unwrap();
        let y: Vec<f64> = out.iter().map(|&b| f32::from_bits(b) as f64).collect();
        // Column means of Y (centering was part of the transform).
        let mut mean = vec![0.0f64; d];
        for row in y.chunks_exact(d) {
            for (mj, &v) in mean.iter_mut().zip(row) {
                *mj += v;
            }
        }
        for mj in mean.iter_mut() {
            *mj /= m as f64;
        }
        let mut worst = 0.0f64;
        for i in 0..d {
            for j in 0..d {
                let mut cov = 0.0;
                for row in y.chunks_exact(d) {
                    cov += (row[i] - mean[i]) * (row[j] - mean[j]);
                }
                cov /= m as f64;
                let target = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((cov - target).abs());
            }
        }
        assert!(worst < 0.05, "cov(Y) must approximate I, worst dev {worst}");
    }

    #[test]
    fn t0_is_the_pure_trace_rescale() {
        // T = 0 leaves P = I: the output must be exactly √(1/tr)·Xc in
        // format arithmetic. Verified structurally: y/xc is one global
        // constant (up to format rounding, checked loosely in f64).
        let (m, d) = (16usize, 6usize);
        let bits = group_bits(m, d, 2);
        let mut exec = emulated(d, WhitenSpec::default().with_t(0));
        let mut out = vec![0u32; bits.len()];
        let detail = exec.whiten_group_detailed(&bits, &mut out).unwrap();
        assert_eq!(detail.residual, 0.0, "T = 0 is exact by definition");
        // Recompute the centered group and expected scale in f64.
        let x: Vec<f64> = bits.iter().map(|&b| f32::from_bits(b) as f64).collect();
        let mut mean = vec![0.0f64; d];
        for row in x.chunks_exact(d) {
            for (mj, &v) in mean.iter_mut().zip(row) {
                *mj += v;
            }
        }
        for mj in mean.iter_mut() {
            *mj /= m as f64;
        }
        for (k, row) in x.chunks_exact(d).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let xc = v - mean[j];
                let got = f32::from_bits(out[k * d + j]) as f64;
                let expect = detail.scale * xc;
                assert!(
                    (got - expect).abs() <= 1e-4 * expect.abs().max(1.0),
                    "row {k} col {j}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn m1_centered_group_whitens_to_zero() {
        // A single centered sample is identically zero after the shift;
        // Σ = eps·I, and zero in → zero out (finite, no NaN).
        let d = 5;
        let bits = group_bits(1, d, 3);
        let mut exec = emulated(d, WhitenSpec::default());
        let mut out = vec![0u32; d];
        exec.whiten_groups(&bits, &mut out, &[1], 1).unwrap();
        for (j, &b) in out.iter().enumerate() {
            let v = f32::from_bits(b);
            assert_eq!(v, 0.0, "col {j}: expected exact zero, got {v}");
        }
    }

    #[test]
    fn nan_input_propagates_to_nan_output() {
        // One canonical-qNaN element poisons the covariance and thus the
        // whole group's output — NaN in, NaN out, never a panic.
        let (m, d) = (4usize, 4usize);
        let mut bits = group_bits(m, d, 4);
        bits[5] = 0x7FC0_0000;
        let mut exec = emulated(d, WhitenSpec::default());
        let mut out = vec![0u32; bits.len()];
        exec.whiten_groups(&bits, &mut out, &[m], 1).unwrap();
        assert!(
            out.iter().any(|&b| f32::from_bits(b).is_nan()),
            "NaN must propagate into the whitened group"
        );
        // And the checked path reports non-convergence, not success.
        let err = exec
            .whiten_group_checked(&bits, &mut out, 1e-3)
            .expect_err("a NaN residual can never pass the convergence bar");
        assert!(matches!(err, NormError::WhitenNotConverged { .. }), "{err}");
    }

    #[test]
    fn checked_path_raises_not_converged_for_tight_tolerance() {
        let (m, d) = (32usize, 8usize);
        let bits = group_bits(m, d, 5);
        let mut exec = emulated(d, WhitenSpec::default().with_t(1));
        let mut out = vec![0u32; bits.len()];
        let err = exec
            .whiten_group_checked(&bits, &mut out, 1e-12)
            .expect_err("one step cannot hit 1e-12");
        match err {
            NormError::WhitenNotConverged {
                steps,
                residual_bits,
                tol_bits,
            } => {
                assert_eq!(steps, 1);
                assert!(f64::from_bits(residual_bits) > f64::from_bits(tol_bits));
            }
            other => panic!("expected WhitenNotConverged, got {other}"),
        }
        // More steps converge under a realistic bar.
        let mut exec = emulated(d, WhitenSpec::default().with_t(8));
        let detail = exec.whiten_group_checked(&bits, &mut out, 1e-2).unwrap();
        assert!(detail.residual < 1e-2, "{detail:?}");
    }

    #[test]
    fn residual_shrinks_with_more_steps() {
        let (m, d) = (64usize, 8usize);
        let bits = group_bits(m, d, 6);
        let mut out = vec![0u32; bits.len()];
        let mut last = f64::INFINITY;
        for t in [1u32, 3, 6] {
            let mut exec = emulated(d, WhitenSpec::default().with_t(t));
            let detail = exec.whiten_group_detailed(&bits, &mut out).unwrap();
            assert!(
                detail.residual < last,
                "t = {t}: residual {} did not shrink from {last}",
                detail.residual
            );
            last = detail.residual;
        }
    }

    #[test]
    fn shape_errors_surface_not_panics() {
        let d = 4;
        let mut exec = emulated(d, WhitenSpec::default());
        let bits = group_bits(2, d, 7);
        let mut out = vec![0u32; bits.len()];
        assert_eq!(
            exec.whiten_groups(&bits, &mut out, &[2], 0).unwrap_err(),
            NormError::ZeroThreads
        );
        let mut short = vec![0u32; d];
        assert_eq!(
            exec.whiten_groups(&bits, &mut short, &[2], 1).unwrap_err(),
            NormError::OutputLengthMismatch {
                expected: 2 * d,
                actual: d
            }
        );
        assert_eq!(
            exec.whiten_groups(&bits, &mut out, &[], 1).unwrap_err(),
            NormError::EmptyRequest
        );
        assert_eq!(
            exec.whiten_groups(&bits, &mut out, &[2, 0], 1).unwrap_err(),
            NormError::EmptyRequest
        );
        // Ragged buffer: not a whole number of rows.
        let ragged = &bits[..2 * d - 1];
        let mut rout = vec![0u32; 2 * d - 1];
        assert_eq!(
            exec.whiten_groups(ragged, &mut rout, &[2], 1).unwrap_err(),
            NormError::GroupShapeMismatch {
                rows: 1,
                d,
                actual: 2 * d - 1
            }
        );
        // Row counts that do not describe the buffer.
        assert_eq!(
            exec.whiten_groups(&bits, &mut out, &[3], 1).unwrap_err(),
            NormError::GroupShapeMismatch {
                rows: 2,
                d,
                actual: 2 * d
            }
        );
    }

    #[test]
    fn factory_rejects_impossible_combinations() {
        let spec = WhitenSpec::default();
        assert_eq!(
            build_whiten(
                BackendKind::Native,
                FormatKind::Fp16,
                8,
                spec,
                SimdLevel::Auto
            )
            .err()
            .expect("native fp16 must be rejected"),
            NormError::BackendFormatMismatch {
                backend: "native-f32",
                format: "FP16",
            }
        );
        assert_eq!(
            build_whiten(
                BackendKind::Emulated,
                FormatKind::Fp32,
                8,
                spec,
                SimdLevel::Avx2
            )
            .err()
            .expect("emulated has no vector path"),
            NormError::SimdUnsupported {
                level: "avx2",
                backend: "emulated",
            }
        );
        for backend in BackendKind::ALL {
            assert_eq!(
                build_whiten(backend, FormatKind::Fp32, 0, spec, SimdLevel::Auto)
                    .err()
                    .expect("d = 0 must be rejected"),
                NormError::EmptyInput
            );
        }
        // Every emulated format and native fp32 build fine.
        for format in FormatKind::ALL {
            assert!(build_whiten(BackendKind::Emulated, format, 8, spec, SimdLevel::Auto).is_ok());
        }
        assert!(build_whiten(
            BackendKind::Native,
            FormatKind::Fp32,
            8,
            spec,
            SimdLevel::Auto
        )
        .is_ok());
    }

    #[test]
    fn resolved_levels_are_reported_never_auto() {
        let spec = WhitenSpec::default();
        let auto = build_whiten(
            BackendKind::Native,
            FormatKind::Fp32,
            8,
            spec,
            SimdLevel::Auto,
        )
        .unwrap();
        assert_ne!(auto.simd_level(), SimdLevel::Auto);
        assert_ne!(auto.simd_level(), SimdLevel::Scalar);
        let scalar = build_whiten(
            BackendKind::Native,
            FormatKind::Fp32,
            8,
            spec,
            SimdLevel::Scalar,
        )
        .unwrap();
        assert_eq!(scalar.simd_level(), SimdLevel::Scalar);
        let emulated = emulated(8, spec);
        assert_eq!(emulated.simd_level(), SimdLevel::Scalar);
        assert!(emulated.label().contains("whiten"), "{}", emulated.label());
    }

    #[test]
    fn multi_group_call_matches_per_group_calls_any_thread_count() {
        let d = 6;
        let groups = [3usize, 1, 8, 2];
        let mut flat = Vec::new();
        for (g, &m) in groups.iter().enumerate() {
            flat.extend(group_bits(m, d, 100 + g as u64));
        }
        for backend in BackendKind::ALL {
            let mut exec = build_whiten(
                backend,
                FormatKind::Fp32,
                d,
                WhitenSpec::default(),
                SimdLevel::Auto,
            )
            .unwrap();
            // Reference: each group whitened alone.
            let mut expect = vec![0u32; flat.len()];
            let mut offset = 0;
            for &m in &groups {
                let len = m * d;
                let (i, o) = (
                    &flat[offset..offset + len],
                    &mut expect[offset..offset + len],
                );
                exec.whiten_groups(i, o, &[m], 1).unwrap();
                offset += len;
            }
            for threads in [1usize, 2, 7] {
                let mut out = vec![0u32; flat.len()];
                let rows = exec
                    .whiten_groups(&flat, &mut out, &groups, threads)
                    .unwrap();
                assert_eq!(rows, groups.iter().sum::<usize>());
                assert_eq!(out, expect, "{backend:?} × {threads} threads");
            }
        }
    }

    #[test]
    fn detailed_matches_groups_path_and_reports_diagnostics() {
        let (m, d) = (24usize, 8usize);
        let bits = group_bits(m, d, 9);
        for backend in BackendKind::ALL {
            let mut exec = build_whiten(
                backend,
                FormatKind::Fp32,
                d,
                WhitenSpec::default(),
                SimdLevel::Auto,
            )
            .unwrap();
            let mut via_groups = vec![0u32; bits.len()];
            exec.whiten_groups(&bits, &mut via_groups, &[m], 1).unwrap();
            let mut via_detailed = vec![0u32; bits.len()];
            let detail = exec
                .whiten_group_detailed(&bits, &mut via_detailed)
                .unwrap();
            assert_eq!(via_groups, via_detailed, "{backend:?}");
            assert!(detail.trace > 0.0 && detail.scale.is_finite());
            assert!(detail.residual.is_finite(), "{detail:?}");
        }
    }
}
