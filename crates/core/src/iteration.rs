//! The scalar IterL2Norm iteration (paper Eqs. 5, 6 and 10).

use softfloat::Float;

use crate::config::{InitRule, IterConfig, LambdaRule, StopRule, UpdateStyle};

/// Initialization of `a₀` from the exponent field of `m` (paper Eq. 6):
///
/// ```text
/// a₀ = 2^(−(E(m) − bias + 1)/2)
/// ```
///
/// built exactly the way the macro's initialize module does it — one
/// subtraction, one addition and one arithmetic right shift on the biased
/// exponent field, written next to a zero mantissa. The `/2` therefore
/// floors toward −∞; the paper's analysis gives `0.7 < a₀/a∞ < 1` for odd
/// unbiased exponents of `m` and `1 ≤ a₀/a∞ < √2` for even ones — both
/// firmly inside the iteration's basin of attraction.
///
/// `m = 0` and subnormal `m` read an exponent field of 0, which seeds the
/// largest representable power of two the formula produces — harmless,
/// because for `m = 0` every update step is 0 and the normalized output of
/// an all-equal vector is 0 regardless of `a`.
///
/// # Examples
///
/// ```
/// use iterl2norm::a0_from_exponent;
/// use softfloat::{Float, Fp32};
///
/// // m = 16 = 2⁴ ⇒ a₀ = 2^(−(4+1)/2) = 2^−2 (shift floors 5/2 to 2).
/// let a0 = a0_from_exponent(Fp32::from_f64(16.0));
/// assert_eq!(a0.to_f64(), 0.25);
/// // True a∞ = 1/√16 = 0.25: the seed is exact here.
/// ```
pub fn a0_from_exponent<F: Float>(m: F) -> F {
    let e_field = m.exponent_field() as i32; // E(m)
    let s = e_field - F::BIAS + 1; // E(m) − bias + 1
    let shift = s >> 1; // arithmetic shift: floors toward −∞
    let a0_field = F::BIAS - shift;
    // Clamp into the normal range: exponent field 0 would denote zero and
    // the all-ones field denotes inf/NaN. Saturation only triggers for
    // extreme m (overflow/underflow territory); the clamped seed still
    // converges, just more slowly.
    let max_field = (1i32 << F::EXP_BITS) - 2;
    let a0_field = a0_field.clamp(1, max_field) as u32;
    F::from_fields(false, a0_field, 0)
}

/// Update-rate selection from the exponent field of `m` (paper Eq. 10):
///
/// ```text
/// λ = 0.345 · 2^(−(E(m) − bias))
/// ```
///
/// The constant 0.345 comes from requiring the exponential transient of the
/// analytical solution (Eq. 9) to fall below `δ_c = 10⁻³` within `n_c = 5`
/// steps: `λ > −ln δ_c/(2·m·n_c) = 0.69/m`, and since
/// `2^(−E(m)+bias) ≥ 1/(2m)` holds for every significand, doubling the
/// coefficient to `0.345·2` = 0.69 is guaranteed by the exponent shift
/// alone — no divider needed.
///
/// # Examples
///
/// ```
/// use iterl2norm::lambda_from_exponent;
/// use softfloat::{Float, Fp32};
///
/// let m = Fp32::from_f64(8.0); // E(m) − bias = 3
/// let lambda = lambda_from_exponent(m);
/// assert_eq!(lambda.to_f64(), 0.345f32 as f64 / 8.0);
/// ```
pub fn lambda_from_exponent<F: Float>(m: F) -> F {
    let e = m.exponent_field() as i32 - F::BIAS;
    F::from_f64(0.345).scale_by_pow2(-e)
}

/// One update step of Eq. (5), in the exact operation order of the macro's
/// update module (Fig. 2b): `t₁ = m·a`, `t₂ = t₁·a`, `t₃ = 1 − t₂`,
/// `t₄ = λ·t₁`, `Δa = t₄·t₃`.
///
/// Both this software implementation and the cycle-accurate macro simulator
/// call this function, which is what makes them bit-exactly comparable.
#[inline]
pub fn update_step<F: Float>(m: F, a: F, lambda: F) -> F {
    let t1 = m * a;
    let t2 = t1 * a;
    let t3 = F::one() - t2;
    let t4 = lambda * t1;
    t4 * t3
}

/// One update step evaluated with fused multiply-adds
/// ([`UpdateStyle::Fused`]): `t₃ = fma(−t₁, a, 1)` and the returned value
/// folds into the caller's `a' = fma(t₄, t₃, a)` — see [`apply_update`].
#[inline]
pub fn update_step_fused<F: Float>(m: F, a: F, lambda: F) -> (F, F) {
    let t1 = m * a;
    let t3 = (-t1).mul_add(a, F::one());
    let t4 = lambda * t1;
    (t4, t3)
}

/// Apply one update step in the configured style, returning the new `a`
/// and the step value Δa (for the tolerance stop rule, the separate-path
/// Δa; for the fused path, the rounded product `t₄·t₃`).
#[inline]
pub fn apply_update<F: Float>(m: F, a: F, lambda: F, style: UpdateStyle) -> (F, F) {
    match style {
        UpdateStyle::Separate => {
            let da = update_step(m, a, lambda);
            (a + da, da)
        }
        UpdateStyle::Fused => {
            let (t4, t3) = update_step_fused(m, a, lambda);
            (t4.mul_add(t3, a), t4 * t3)
        }
    }
}

/// Step-by-step record of one iteration run, for convergence analysis
/// (Fig. 4) and debugging.
#[derive(Debug, Clone)]
pub struct IterTrace<F> {
    /// The seed `a₀`.
    pub a0: F,
    /// The update rate λ used.
    pub lambda: F,
    /// `a` after each executed step (`a_1, a_2, …`).
    pub steps: Vec<F>,
}

impl<F: Float> IterTrace<F> {
    /// The final `a` (the seed if no step executed).
    pub fn final_a(&self) -> F {
        *self.steps.last().unwrap_or(&self.a0)
    }

    /// Number of update steps executed.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when no update step was executed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Run the scalar iteration on `m = ‖y‖²` and return the full trace.
///
/// Use [`IterL2Norm`] for the plain "give me `a∞`" interface; this function
/// exposes the intermediate steps for the convergence experiments.
///
/// # Examples
///
/// ```
/// use iterl2norm::{iterate, IterConfig};
/// use softfloat::{Float, Fp32};
///
/// let m = Fp32::from_f64(10.0);
/// let trace = iterate(m, &IterConfig::fixed_steps(5));
/// let a = trace.final_a().to_f64();
/// assert!((a - 1.0 / 10.0f64.sqrt()).abs() < 1e-4);
/// assert_eq!(trace.len(), 5);
/// ```
pub fn iterate<F: Float>(m: F, cfg: &IterConfig) -> IterTrace<F> {
    let a0 = seed_for(m, cfg);
    let lambda = lambda_for(m, cfg);
    let mut trace = IterTrace {
        a0,
        lambda,
        steps: Vec::new(),
    };
    run_updates(m, a0, lambda, cfg, |a| trace.steps.push(a));
    trace
}

/// The one stop-rule state machine: run update steps from `a0` per `cfg`,
/// reporting every new `a` to `observe`, and return the final `a`.
///
/// Both [`iterate`] (observer pushes to the trace) and
/// [`IterL2Norm::a_infinity`] (no-op observer, allocation-free) drive this
/// same loop, so their final values are bit-identical by construction.
fn run_updates<F: Float>(
    m: F,
    a0: F,
    lambda: F,
    cfg: &IterConfig,
    mut observe: impl FnMut(F),
) -> F {
    let mut a = a0;
    match cfg.stop {
        StopRule::FixedSteps(n) => {
            for _ in 0..n {
                let (next, _da) = apply_update(m, a, lambda, cfg.update);
                a = next;
                observe(a);
            }
        }
        StopRule::Tolerance {
            delta_max,
            max_steps,
        } => {
            let dmax = F::from_f64(delta_max);
            for _ in 0..max_steps {
                let (next, da) = apply_update(m, a, lambda, cfg.update);
                a = next;
                observe(a);
                // Algorithm 1: continue while Δa > δ_max (signed comparison,
                // so an overshoot terminates too). NaN also terminates.
                if !matches!(da.partial_cmp(&dmax), Some(core::cmp::Ordering::Greater)) {
                    break;
                }
            }
        }
        StopRule::ToleranceAbs {
            delta_max,
            max_steps,
        } => {
            let dmax = F::from_f64(delta_max);
            for _ in 0..max_steps {
                let (next, da) = apply_update(m, a, lambda, cfg.update);
                a = next;
                observe(a);
                if !matches!(
                    da.abs().partial_cmp(&dmax),
                    Some(core::cmp::Ordering::Greater)
                ) {
                    break;
                }
            }
        }
    }
    a
}

/// Seed `a₀` selection per the configured [`InitRule`].
fn seed_for<F: Float>(m: F, cfg: &IterConfig) -> F {
    match cfg.init {
        InitRule::HwExponent => a0_from_exponent(m),
        InitRule::ExactRsqrt => {
            let md = m.to_f64();
            if md > 0.0 {
                F::from_f64(1.0 / md.sqrt())
            } else {
                a0_from_exponent(m)
            }
        }
        InitRule::Constant(c) => F::from_f64(c),
    }
}

/// Update-rate λ selection per the configured [`LambdaRule`].
fn lambda_for<F: Float>(m: F, cfg: &IterConfig) -> F {
    match cfg.lambda {
        LambdaRule::HwExponent => lambda_from_exponent(m),
        LambdaRule::ExactInverse => {
            let md = m.to_f64();
            if md > 0.0 {
                F::from_f64(0.69 / md)
            } else {
                lambda_from_exponent(m)
            }
        }
        LambdaRule::Constant(c) => F::from_f64(c),
    }
}

/// The IterL2Norm normalizer: computes `a∞ ≈ 1/‖y‖₂` from `m = ‖y‖²₂` and
/// serves as the scale-factor provider for
/// [`layer_norm`](crate::layer_norm).
///
/// # Examples
///
/// ```
/// use iterl2norm::{IterL2Norm, RsqrtScale};
/// use softfloat::{Float, Fp16};
///
/// let norm = IterL2Norm::with_steps(5);
/// // For a d=4 vector with ‖y‖² = 4: scale = √4 · 1/√4 = 1.
/// let s = norm.scale_factor(Fp16::from_f64(4.0), 4);
/// assert!((s.to_f64() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterL2Norm {
    /// Iteration configuration (stop rule, seed, update rate).
    pub config: IterConfig,
}

impl IterL2Norm {
    /// Paper-default normalizer (Eq. 6 seed, Eq. 10 rate, 5 steps).
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizer running a fixed number of steps (the macro's `n_c`).
    pub fn with_steps(steps: u32) -> Self {
        IterL2Norm {
            config: IterConfig::fixed_steps(steps),
        }
    }

    /// Normalizer with a fully custom configuration.
    pub fn with_config(config: IterConfig) -> Self {
        IterL2Norm { config }
    }

    /// Compute `a∞ ≈ 1/‖y‖₂` from `m = ‖y‖²₂`.
    ///
    /// Allocation-free: drives the same stop-rule loop (`run_updates`) as
    /// [`iterate`] (bit-identical final value) without recording the
    /// trace, so it can sit on the [`Normalizer`](crate::Normalizer) hot
    /// path.
    pub fn a_infinity<F: Float>(&self, m: F) -> F {
        let cfg = &self.config;
        let a0 = seed_for(m, cfg);
        let lambda = lambda_for(m, cfg);
        run_updates(m, a0, lambda, cfg, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::{Bf16, Fp16, Fp32};

    #[test]
    fn a0_is_within_paper_bounds_across_significands() {
        // Paper Sec. III-B: with the bit-built seed the ratio a₀/a∞ lies in
        // [1/√2, √2) across all significands and exponent parities.
        for e in -40..40 {
            for frac in 0..16 {
                let m_val = (1.0 + frac as f64 / 16.0) * (e as f64).exp2();
                let m = Fp32::from_f64(m_val);
                let a0 = a0_from_exponent(m).to_f64();
                let a_inf = 1.0 / m.to_f64().sqrt();
                let ratio = a0 / a_inf;
                assert!(
                    (0.7..1.4143).contains(&ratio),
                    "a0/a_inf = {ratio} out of basin for m = {m_val}"
                );
            }
        }
    }

    #[test]
    fn a0_costs_only_field_arithmetic() {
        // The seed must always be an exact power of two (zero mantissa).
        for &m_val in &[0.001, 0.1, 1.0, 3.7, 12.0, 1e4, 1e10] {
            let a0 = a0_from_exponent(Fp32::from_f64(m_val));
            assert_eq!(a0.to_bits() & 0x007F_FFFF, 0, "a0 has mantissa bits");
            assert!(!a0.is_sign_negative());
        }
    }

    #[test]
    fn a0_handles_zero_and_subnormal_m() {
        let a0 = a0_from_exponent(Fp32::ZERO);
        assert!(a0.is_finite() && !a0.is_zero());
        let sub = Fp32::MIN_SUBNORMAL;
        assert!(a0_from_exponent(sub).is_finite());
    }

    #[test]
    fn lambda_satisfies_convergence_inequality() {
        // Eq. 10 must guarantee λ > 0.69/(2m)·… specifically λ·m ∈ [0.345, 0.69).
        for e in -30..30 {
            for frac in 0..8 {
                let m_val = (1.0 + frac as f64 / 8.0) * (e as f64).exp2();
                let m = Fp32::from_f64(m_val);
                let lm = lambda_from_exponent(m).to_f64() * m.to_f64();
                assert!(
                    (0.34..0.70).contains(&lm),
                    "λ·m = {lm} outside [0.345, 0.69) for m = {m_val}"
                );
            }
        }
    }

    #[test]
    fn iteration_converges_in_five_steps_fp32() {
        for &m_val in &[0.037, 0.5, 1.0, 2.0, 3.99, 21.3, 341.0, 4096.0, 1e-3] {
            let m = Fp32::from_f64(m_val);
            let trace = iterate(m, &IterConfig::fixed_steps(5));
            let a = trace.final_a().to_f64();
            let expect = 1.0 / m_val.sqrt();
            let rel = (a - expect).abs() / expect;
            assert!(
                rel < 5e-3,
                "m = {m_val}: a = {a}, expected {expect}, rel err {rel}"
            );
        }
    }

    #[test]
    fn iteration_error_shrinks_with_steps() {
        let m = Fp32::from_f64(7.3);
        let expect = 1.0 / 7.3f64.sqrt();
        let mut last_err = f64::INFINITY;
        for steps in 1..=5 {
            let a = iterate(m, &IterConfig::fixed_steps(steps))
                .final_a()
                .to_f64();
            let err = (a - expect).abs();
            assert!(
                err <= last_err * 1.05,
                "error grew at step {steps}: {err} > {last_err}"
            );
            last_err = err;
        }
        assert!(last_err < 1e-3 * expect);
    }

    #[test]
    fn tolerance_rule_stops_early() {
        let m = Fp32::from_f64(2.0);
        let trace = iterate(m, &IterConfig::tolerance(1e-7, 100));
        assert!(trace.len() < 100, "tolerance loop never converged");
        let a = trace.final_a().to_f64();
        assert!((a - 1.0 / 2.0f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn zero_m_is_a_fixed_point() {
        let trace = iterate(Fp32::ZERO, &IterConfig::fixed_steps(5));
        assert_eq!(trace.final_a().to_bits(), trace.a0.to_bits());
    }

    #[test]
    fn works_in_fp16_and_bf16() {
        for &m_val in &[0.25f64, 1.7, 100.0, 340.0] {
            let expect = 1.0 / m_val.sqrt();
            let a16 = iterate(Fp16::from_f64(m_val), &IterConfig::fixed_steps(5))
                .final_a()
                .to_f64();
            assert!(
                (a16 - expect).abs() / expect < 2e-2,
                "fp16 m={m_val}: {a16} vs {expect}"
            );
            let ab = iterate(Bf16::from_f64(m_val), &IterConfig::fixed_steps(5))
                .final_a()
                .to_f64();
            assert!(
                (ab - expect).abs() / expect < 3e-2,
                "bf16 m={m_val}: {ab} vs {expect}"
            );
        }
    }

    #[test]
    fn exact_init_rule_converges_immediately() {
        let m = Fp32::from_f64(5.0);
        let cfg = IterConfig {
            init: InitRule::ExactRsqrt,
            ..IterConfig::fixed_steps(2)
        };
        let a = iterate(m, &cfg).final_a().to_f64();
        assert!((a - 1.0 / 5.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn constant_init_converges_slower_than_hw() {
        // For m far from 1, a constant seed of 1.0 leaves more error after
        // 5 steps than the exponent-trick seed (for m = 0.01 the naive seed
        // starts at u₀ = √m·a₀ = 0.1, deep below the fixed point).
        let m = Fp32::from_f64(0.01);
        let expect = 1.0 / 0.01f64.sqrt();
        let hw = iterate(m, &IterConfig::fixed_steps(5)).final_a().to_f64();
        let naive_cfg = IterConfig {
            init: InitRule::Constant(1.0),
            ..IterConfig::fixed_steps(5)
        };
        let naive = iterate(m, &naive_cfg).final_a().to_f64();
        assert!(hw.is_finite());
        assert!((hw - expect).abs() < (naive - expect).abs());
    }

    #[test]
    fn constant_init_outside_basin_diverges() {
        // A constant seed of 1.0 for a huge m puts u₀ = √m far outside the
        // basin of attraction: the iteration blows up — exactly the failure
        // mode Eq. (6) exists to prevent.
        let m = Fp32::from_f64(500.0);
        let naive_cfg = IterConfig {
            init: InitRule::Constant(1.0),
            ..IterConfig::fixed_steps(5)
        };
        let naive = iterate(m, &naive_cfg).final_a();
        let expect = 1.0 / 500.0f64.sqrt();
        let off = (naive.to_f64() - expect).abs();
        assert!(
            naive.is_nan() || off > 1.0,
            "expected divergence, got {naive:?}"
        );
        // The hardware seed converges fine on the same m.
        let hw = iterate(m, &IterConfig::fixed_steps(5)).final_a().to_f64();
        assert!((hw - expect).abs() / expect < 5e-3);
    }

    #[test]
    fn trace_records_every_step() {
        let m = Fp32::from_f64(3.0);
        let trace = iterate(m, &IterConfig::fixed_steps(7));
        assert_eq!(trace.len(), 7);
        assert!(!trace.is_empty());
        assert_eq!(
            trace.final_a().to_bits(),
            trace.steps.last().unwrap().to_bits()
        );
    }

    #[test]
    fn a_infinity_matches_trace_final_bitwise() {
        // The allocation-free path must follow the traced path exactly,
        // for every stop rule and update style.
        let configs = [
            IterConfig::fixed_steps(0),
            IterConfig::fixed_steps(5),
            IterConfig::fixed_steps(9),
            IterConfig::tolerance(1e-6, 40),
            IterConfig {
                stop: StopRule::ToleranceAbs {
                    delta_max: 1e-6,
                    max_steps: 40,
                },
                ..IterConfig::fixed_steps(5)
            },
            IterConfig {
                update: UpdateStyle::Fused,
                ..IterConfig::fixed_steps(5)
            },
        ];
        for cfg in &configs {
            for &m_val in &[0.0, 0.001, 0.7, 1.0, 3.99, 341.0, 1e6] {
                let norm = IterL2Norm::with_config(*cfg);
                let m = Fp32::from_f64(m_val);
                assert_eq!(
                    norm.a_infinity(m).to_bits(),
                    iterate(m, cfg).final_a().to_bits(),
                    "cfg {cfg:?}, m {m_val}"
                );
            }
        }
    }

    #[test]
    fn update_step_matches_formula_order() {
        // The documented order: Δa = (λ·(m·a)) · (1 − (m·a)·a).
        let m = Fp32::from_f64(2.5);
        let a = Fp32::from_f64(0.6);
        let l = Fp32::from_f64(0.1);
        let t1 = m * a;
        let expect = (l * t1) * (Fp32::ONE - t1 * a);
        assert_eq!(update_step(m, a, l).to_bits(), expect.to_bits());
    }
}
