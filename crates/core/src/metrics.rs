//! Error metrics of the paper's evaluation section: average/maximum
//! absolute error against the `f64` ground truth (Fig. 3, Table I) and the
//! error histograms of the Fig. 3 insets.

use softfloat::Float;

/// Aggregate absolute-error statistics over one or more vectors.
///
/// The paper's measure: elementwise `|approx − truth|`, averaged (and
/// maximized) over all elements of all trial vectors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean of `|approx − truth|` over every element observed.
    pub avg_abs: f64,
    /// Maximum of `|approx − truth|` over every element observed.
    pub max_abs: f64,
    /// Number of elements observed.
    pub count: usize,
}

impl ErrorStats {
    /// Accumulator for streaming element observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(approx, truth)` element pair.
    pub fn record(&mut self, approx: f64, truth: f64) {
        let err = (approx - truth).abs();
        let n = self.count as f64;
        self.avg_abs = (self.avg_abs * n + err) / (n + 1.0);
        self.max_abs = self.max_abs.max(err);
        self.count += 1;
    }

    /// Record a whole vector pair.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn record_vec<F: Float>(&mut self, approx: &[F], truth: &[f64]) {
        assert_eq!(approx.len(), truth.len(), "length mismatch");
        for (a, &t) in approx.iter().zip(truth) {
            self.record(a.to_f64(), t);
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        if other.count == 0 {
            return;
        }
        let total = (self.count + other.count) as f64;
        self.avg_abs =
            (self.avg_abs * self.count as f64 + other.avg_abs * other.count as f64) / total;
        self.max_abs = self.max_abs.max(other.max_abs);
        self.count += other.count;
    }
}

/// One-shot absolute-error statistics for a single vector pair.
///
/// # Examples
///
/// ```
/// use iterl2norm::metrics::abs_error_stats;
/// use softfloat::{Float, Fp32};
///
/// let approx = vec![Fp32::from_f64(1.0), Fp32::from_f64(2.5)];
/// let truth = vec![1.0, 2.0];
/// let stats = abs_error_stats(&approx, &truth);
/// assert_eq!(stats.max_abs, 0.5);
/// assert_eq!(stats.avg_abs, 0.25);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn abs_error_stats<F: Float>(approx: &[F], truth: &[f64]) -> ErrorStats {
    let mut s = ErrorStats::new();
    s.record_vec(approx, truth);
    s
}

/// Fixed-bin histogram of absolute errors on a log₁₀ scale, matching the
/// Fig. 3 insets (error distribution over 1,000 vectors at d = 384).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorHistogram {
    /// Lower edge (log₁₀ of absolute error) of the first bin.
    pub log10_min: f64,
    /// Bin width in decades.
    pub decade_width: f64,
    /// Bin counts; the first/last bins absorb under/overflow.
    pub counts: Vec<u64>,
    /// Count of exactly-zero errors (−∞ on the log scale).
    pub exact_zero: u64,
}

impl ErrorHistogram {
    /// Histogram spanning `[10^log10_min, 10^(log10_min + bins·width))`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `decade_width <= 0`.
    pub fn new(log10_min: f64, decade_width: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(decade_width > 0.0, "decade width must be positive");
        ErrorHistogram {
            log10_min,
            decade_width,
            counts: vec![0; bins],
            exact_zero: 0,
        }
    }

    /// Record one absolute error value.
    pub fn record(&mut self, abs_err: f64) {
        if abs_err == 0.0 {
            self.exact_zero += 1;
            return;
        }
        let pos = (abs_err.log10() - self.log10_min) / self.decade_width;
        let idx = pos.floor().clamp(0.0, (self.counts.len() - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    /// Total recorded observations (including exact zeros).
    pub fn total(&self) -> u64 {
        self.exact_zero + self.counts.iter().sum::<u64>()
    }

    /// `(bin_lower_log10, count)` pairs for report printing.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.log10_min + i as f64 * self.decade_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::Fp32;

    #[test]
    fn streaming_average_matches_batch() {
        let mut s = ErrorStats::new();
        let pairs = [(1.0, 1.1), (2.0, 1.7), (0.5, 0.5), (3.0, 3.4)];
        for (a, t) in pairs {
            s.record(a, t);
        }
        let errs: Vec<f64> = pairs.iter().map(|(a, t)| (a - t).abs()).collect();
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!((s.avg_abs - avg).abs() < 1e-12);
        assert!((s.max_abs - 0.4).abs() < 1e-12);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = ErrorStats::new();
        a.record(1.0, 0.9);
        a.record(2.0, 2.2);
        let mut b = ErrorStats::new();
        b.record(5.0, 5.5);
        let mut merged = a;
        merged.merge(&b);
        let mut all = ErrorStats::new();
        for (x, t) in [(1.0, 0.9), (2.0, 2.2), (5.0, 5.5)] {
            all.record(x, t);
        }
        assert!((merged.avg_abs - all.avg_abs).abs() < 1e-12);
        assert_eq!(merged.max_abs, all.max_abs);
        assert_eq!(merged.count, all.count);
        // Merging an empty accumulator is a no-op.
        let before = merged;
        merged.merge(&ErrorStats::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn record_vec_converts_formats() {
        let approx = [Fp32::from_f64(1.5), Fp32::from_f64(-0.5)];
        let truth = [1.0, 0.0];
        let s = abs_error_stats(&approx, &truth);
        assert_eq!(s.max_abs, 0.5);
        assert_eq!(s.count, 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn record_vec_rejects_mismatched_lengths() {
        let approx = [Fp32::from_f64(1.0)];
        let _ = abs_error_stats(&approx, &[1.0, 2.0]);
    }

    #[test]
    fn histogram_bins_and_saturation() {
        let mut h = ErrorHistogram::new(-6.0, 1.0, 6); // 1e-6 … 1
        h.record(1e-5); // bin 1 ([1e-5, 1e-4))
        h.record(3e-5); // bin 1
        h.record(0.5); // bin 5
        h.record(10.0); // overflow → last bin
        h.record(1e-9); // underflow → first bin
        h.record(0.0); // exact zero
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[5], 2);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.exact_zero, 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_bin_edges_are_reported() {
        let h = ErrorHistogram::new(-4.0, 0.5, 4);
        let edges: Vec<f64> = h.bins().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![-4.0, -3.5, -3.0, -2.5]);
    }
}
