//! Error type shared by the normalization entry points.

use core::fmt;

/// Error returned by [`layer_norm`](crate::layer_norm) and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NormError {
    /// The input vector was empty.
    EmptyInput,
    /// `gamma` had a different length than the input.
    GammaLengthMismatch {
        /// Input length `d`.
        expected: usize,
        /// Observed `gamma.len()`.
        actual: usize,
    },
    /// `beta` had a different length than the input.
    BetaLengthMismatch {
        /// Input length `d`.
        expected: usize,
        /// Observed `beta.len()`.
        actual: usize,
    },
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::EmptyInput => write!(f, "input vector is empty"),
            NormError::GammaLengthMismatch { expected, actual } => write!(
                f,
                "gamma length {actual} does not match input length {expected}"
            ),
            NormError::BetaLengthMismatch { expected, actual } => write!(
                f,
                "beta length {actual} does not match input length {expected}"
            ),
        }
    }
}

impl std::error::Error for NormError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NormError::GammaLengthMismatch {
            expected: 8,
            actual: 4,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
        assert_eq!(NormError::EmptyInput.to_string(), "input vector is empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NormError>();
    }
}
