//! Error type shared by the normalization entry points.

use core::fmt;

/// Error returned by [`layer_norm`](crate::layer_norm) and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NormError {
    /// The input vector was empty.
    EmptyInput,
    /// `gamma` had a different length than the input.
    GammaLengthMismatch {
        /// Input length `d`.
        expected: usize,
        /// Observed `gamma.len()`.
        actual: usize,
    },
    /// `beta` had a different length than the input.
    BetaLengthMismatch {
        /// Input length `d`.
        expected: usize,
        /// Observed `beta.len()`.
        actual: usize,
    },
    /// A single-row input did not match the plan's vector length.
    InputLengthMismatch {
        /// The plan's `d`.
        expected: usize,
        /// Observed input length.
        actual: usize,
    },
    /// An output buffer did not match the length the call requires.
    OutputLengthMismatch {
        /// Required output length.
        expected: usize,
        /// Observed output length.
        actual: usize,
    },
    /// A flat batch buffer was not a whole number of `d`-length rows.
    BatchLengthMismatch {
        /// Complete rows contained in the buffer (`actual / d`).
        rows: usize,
        /// The plan's row length `d`.
        d: usize,
        /// Observed buffer length.
        actual: usize,
    },
    /// A backend was asked to execute a format it has no native path for
    /// (e.g. the native-f32 backend with an FP16 or BF16 plan — those
    /// formats only exist in the softfloat emulator).
    BackendFormatMismatch {
        /// The requested backend's name (e.g. `"native-f32"`).
        backend: &'static str,
        /// The requested format's name (e.g. `"FP16"`).
        format: &'static str,
    },
    /// A parallel entry point was asked to run with zero worker threads.
    ZeroThreads,
    /// A service was asked to run with zero shards.
    ZeroShards,
    /// A service was asked to run with a zero queue depth. With no
    /// waiting line at all, any request that cannot execute immediately —
    /// which under a coalescing window is *every* request — would be
    /// rejected, so the misconfiguration is refused at build time.
    ZeroQueueDepth,
    /// A request arrived at a service shard whose waiting line was already
    /// at the configured depth bound — the service sheds load instead of
    /// buffering unboundedly behind a slow backend. The request was not
    /// accepted; retrying later (or raising the bound) is the caller's
    /// call.
    QueueFull {
        /// The configured per-shard queue-depth bound that was hit.
        depth: usize,
    },
    /// A request was submitted to a normalization service that has been
    /// shut down — the service accepts no further work.
    ServiceShutdown,
    /// A service request carried zero rows. Submitting nothing is almost
    /// always a caller bug (a drained buffer, an off-by-one on the row
    /// count), so the service rejects it instead of silently succeeding.
    EmptyRequest,
    /// A forced SIMD level cannot run here: the host lacks the instruction
    /// set, or the backend has no vector path at all (softfloat emulation
    /// is scalar by nature). Forcing a level must fail loudly rather than
    /// silently downgrade — otherwise benchmark points get mislabeled.
    /// `SimdLevel::Auto` is the degrade-gracefully path.
    SimdUnsupported {
        /// The requested level's name (e.g. `"avx2"`).
        level: &'static str,
        /// The backend the level was requested for (e.g. `"emulated"`).
        backend: &'static str,
    },
    /// A whitening group was not a positive whole number of `d`-length
    /// rows. The group analogue of [`BatchLengthMismatch`]: a whitening
    /// request is one `m × d` group, so a ragged buffer cannot even name
    /// its sample count `m`.
    ///
    /// [`BatchLengthMismatch`]: NormError::BatchLengthMismatch
    GroupShapeMismatch {
        /// Complete rows contained in the buffer (`actual / d`).
        rows: usize,
        /// The configured feature length `d`.
        d: usize,
        /// Observed buffer length.
        actual: usize,
    },
    /// A per-shard thread list (`ServiceConfig::with_shard_threads`) did
    /// not supply exactly one count per shard. The per-shard executor
    /// spawns its workers at build time, so the shape mismatch is
    /// refused up front instead of leaving some shard with a default.
    ShardThreadsMismatch {
        /// The configured shard count.
        shards: usize,
        /// The supplied thread-count list length.
        actual: usize,
    },
    /// The adaptive-coalescing configuration
    /// (`ServiceConfig::with_adaptive_window`) is degenerate: a zero
    /// estimator interval, a zero open threshold, or a close threshold
    /// above the open threshold (the hysteresis band would be inverted).
    InvalidAdaptiveWindow {
        /// The violated constraint, in words.
        reason: &'static str,
    },
    /// The Newton–Schulz whitening iteration did not reach the requested
    /// residual tolerance after its configured step budget — the produced
    /// `P_T` is not close enough to `Σ_N^{-1/2}`. The residual and the
    /// tolerance are carried as exact `f64` bit patterns (`f64::to_bits`)
    /// so the variant stays `Eq`; decode with `f64::from_bits`.
    WhitenNotConverged {
        /// Newton–Schulz steps that ran (the configured `t`).
        steps: u32,
        /// `f64::to_bits` of the measured residual `‖P_T² Σ_N − I‖_max`.
        residual_bits: u64,
        /// `f64::to_bits` of the requested tolerance.
        tol_bits: u64,
    },
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::EmptyInput => write!(f, "input vector is empty"),
            NormError::GammaLengthMismatch { expected, actual } => write!(
                f,
                "gamma length {actual} does not match input length {expected}"
            ),
            NormError::BetaLengthMismatch { expected, actual } => write!(
                f,
                "beta length {actual} does not match input length {expected}"
            ),
            NormError::InputLengthMismatch { expected, actual } => write!(
                f,
                "input length {actual} does not match the plan's d = {expected}"
            ),
            NormError::OutputLengthMismatch { expected, actual } => write!(
                f,
                "output buffer length {actual} does not match required length {expected}"
            ),
            NormError::BatchLengthMismatch { rows, d, actual } => write!(
                f,
                "batch buffer length {actual} is not a whole number of rows of length {d} \
                 ({rows} complete rows plus {} leftover elements)",
                // Saturating: the variant's fields are public, so Display
                // must stay total even for inconsistent hand-built values.
                actual.saturating_sub(rows.saturating_mul(*d))
            ),
            NormError::BackendFormatMismatch { backend, format } => write!(
                f,
                "backend '{backend}' cannot execute format {format} \
                 (only FP32 has a native fast path; use the emulated backend)"
            ),
            NormError::ZeroThreads => {
                write!(f, "thread count must be at least 1 (got 0)")
            }
            NormError::ZeroShards => {
                write!(f, "shard count must be at least 1 (got 0)")
            }
            NormError::ZeroQueueDepth => {
                write!(f, "queue depth must be at least 1 (got 0)")
            }
            NormError::QueueFull { depth } => {
                write!(
                    f,
                    "service queue is full ({depth} waiting requests per shard); \
                     retry later or raise the queue depth"
                )
            }
            NormError::ServiceShutdown => {
                write!(
                    f,
                    "normalization service is shut down and accepts no further requests"
                )
            }
            NormError::EmptyRequest => {
                write!(
                    f,
                    "request contains no rows (submit at least one d-length row)"
                )
            }
            NormError::SimdUnsupported { level, backend } => {
                write!(
                    f,
                    "simd level '{level}' is not available for backend '{backend}' on this \
                     host; use 'auto' to pick the best supported level or 'scalar' to force \
                     the generic path"
                )
            }
            NormError::GroupShapeMismatch { rows, d, actual } => write!(
                f,
                "whitening group of length {actual} is not a positive whole number of rows \
                 of length {d} ({rows} complete rows plus {} leftover elements); submit one \
                 m x d group per request",
                // Saturating: the variant's fields are public, so Display
                // must stay total even for inconsistent hand-built values.
                actual.saturating_sub(rows.saturating_mul(*d))
            ),
            NormError::ShardThreadsMismatch { shards, actual } => write!(
                f,
                "per-shard thread list has {actual} entries for {shards} shards; supply \
                 exactly one thread count per shard"
            ),
            NormError::InvalidAdaptiveWindow { reason } => {
                write!(f, "adaptive coalescing window is misconfigured: {reason}")
            }
            NormError::WhitenNotConverged {
                steps,
                residual_bits,
                tol_bits,
            } => write!(
                f,
                "whitening did not converge after {steps} Newton-Schulz steps: residual \
                 {:.3e} exceeds tolerance {:.3e}; raise the step count t, raise eps, or \
                 loosen the tolerance",
                f64::from_bits(*residual_bits),
                f64::from_bits(*tol_bits)
            ),
        }
    }
}

impl std::error::Error for NormError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NormError::GammaLengthMismatch {
            expected: 8,
            actual: 4,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
        assert_eq!(NormError::EmptyInput.to_string(), "input vector is empty");
    }

    #[test]
    fn every_variant_displays_its_numbers() {
        // Display coverage: each variant names every numeric field, so a
        // batch-shaped bug report is self-contained.
        let cases: [(NormError, &[usize]); 6] = [
            (NormError::EmptyInput, &[]),
            (
                NormError::GammaLengthMismatch {
                    expected: 8,
                    actual: 4,
                },
                &[8, 4],
            ),
            (
                NormError::BetaLengthMismatch {
                    expected: 9,
                    actual: 5,
                },
                &[9, 5],
            ),
            (
                NormError::InputLengthMismatch {
                    expected: 768,
                    actual: 767,
                },
                &[768, 767],
            ),
            (
                NormError::OutputLengthMismatch {
                    expected: 1536,
                    actual: 768,
                },
                &[1536, 768],
            ),
            (
                NormError::BatchLengthMismatch {
                    rows: 3,
                    d: 768,
                    actual: 2305,
                },
                &[3, 768, 2305],
            ),
        ];
        for (err, numbers) in cases {
            let s = err.to_string();
            assert!(
                s.chars().next().unwrap().is_lowercase(),
                "not lowercase: {s}"
            );
            for n in numbers {
                assert!(s.contains(&n.to_string()), "'{s}' missing {n}");
            }
        }
    }

    #[test]
    fn shard_threads_mismatch_displays_both_shapes() {
        let e = NormError::ShardThreadsMismatch {
            shards: 4,
            actual: 3,
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains('4') && s.contains('3'), "{s}");
        assert!(s.contains("per shard"), "{s}");
    }

    #[test]
    fn invalid_adaptive_window_displays_the_reason() {
        let e = NormError::InvalidAdaptiveWindow {
            reason: "interval must be non-zero",
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains("adaptive") && s.contains("non-zero"), "{s}");
    }

    #[test]
    fn backend_mismatch_displays_backend_and_format() {
        let e = NormError::BackendFormatMismatch {
            backend: "native-f32",
            format: "FP16",
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(
            s.contains("native-f32") && s.contains("FP16"),
            "'{s}' must name both the backend and the format"
        );
        // The message points at the escape hatch.
        assert!(s.contains("emulated"), "{s}");
    }

    #[test]
    fn service_shutdown_displays_the_refusal() {
        let s = NormError::ServiceShutdown.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(
            s.contains("shut down") && s.contains("no further"),
            "'{s}' must say the service is closed for good"
        );
    }

    #[test]
    fn empty_request_displays_the_fix() {
        let s = NormError::EmptyRequest.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        // The message must say what was wrong and what a valid request
        // looks like.
        assert!(
            s.contains("no rows") && s.contains("at least one"),
            "'{s}' must name the problem and the fix"
        );
    }

    #[test]
    fn zero_threads_displays_the_constraint() {
        let s = NormError::ZeroThreads.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains("at least 1") && s.contains('0'), "{s}");
    }

    #[test]
    fn zero_shards_displays_the_constraint() {
        let s = NormError::ZeroShards.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains("shard") && s.contains("at least 1"), "{s}");
    }

    #[test]
    fn zero_queue_depth_displays_the_constraint() {
        let s = NormError::ZeroQueueDepth.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains("queue depth") && s.contains("at least 1"), "{s}");
    }

    #[test]
    fn queue_full_displays_the_bound_and_the_fix() {
        let s = NormError::QueueFull { depth: 37 }.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        // The message must name the configured bound and point at the two
        // ways out (retrying and raising the depth).
        assert!(s.contains("37"), "'{s}' must name the depth bound");
        assert!(s.contains("full") && s.contains("retry"), "{s}");
        assert!(s.contains("queue depth"), "{s}");
    }

    #[test]
    fn simd_unsupported_displays_level_backend_and_escape_hatches() {
        let e = NormError::SimdUnsupported {
            level: "avx2",
            backend: "native-f32",
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(
            s.contains("avx2") && s.contains("native-f32"),
            "'{s}' must name both the level and the backend"
        );
        // The message points at both ways out: graceful auto-detection and
        // the always-available scalar path.
        assert!(s.contains("auto") && s.contains("scalar"), "{s}");
    }

    #[test]
    fn group_shape_mismatch_displays_its_numbers_and_the_fix() {
        let e = NormError::GroupShapeMismatch {
            rows: 3,
            d: 16,
            actual: 50,
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        for n in [3usize, 16, 50] {
            assert!(s.contains(&n.to_string()), "'{s}' missing {n}");
        }
        assert!(s.contains("2 leftover"), "{s}");
        // The message says what a valid whitening request looks like.
        assert!(s.contains("m x d group"), "{s}");
    }

    #[test]
    fn group_shape_mismatch_display_is_total_for_inconsistent_fields() {
        let e = NormError::GroupShapeMismatch {
            rows: usize::MAX,
            d: usize::MAX,
            actual: 1,
        };
        let _ = e.to_string();
        let e = NormError::GroupShapeMismatch {
            rows: 9,
            d: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("0 leftover"), "{e}");
    }

    #[test]
    fn whiten_not_converged_displays_steps_residual_tolerance_and_fixes() {
        let e = NormError::WhitenNotConverged {
            steps: 5,
            residual_bits: 0.25f64.to_bits(),
            tol_bits: 1e-3f64.to_bits(),
        };
        let s = e.to_string();
        assert!(
            s.chars().next().unwrap().is_lowercase(),
            "not lowercase: {s}"
        );
        assert!(s.contains('5'), "'{s}' must name the step budget");
        assert!(s.contains("2.500e-1"), "'{s}' must show the residual");
        assert!(s.contains("1.000e-3"), "'{s}' must show the tolerance");
        // The message points at every way out: more steps, more damping,
        // or a looser bar.
        assert!(
            s.contains('t') && s.contains("eps") && s.contains("tolerance"),
            "{s}"
        );
    }

    #[test]
    fn whiten_not_converged_display_is_total_for_nan_residuals() {
        // A NaN residual (a blown-up iteration) must still print.
        let e = NormError::WhitenNotConverged {
            steps: 1,
            residual_bits: f64::NAN.to_bits(),
            tol_bits: f64::INFINITY.to_bits(),
        };
        let s = e.to_string();
        assert!(s.contains("NaN"), "{s}");
    }

    #[test]
    fn batch_mismatch_reports_leftover_elements() {
        let e = NormError::BatchLengthMismatch {
            rows: 2,
            d: 100,
            actual: 250,
        };
        assert!(e.to_string().contains("50 leftover"), "{e}");
    }

    #[test]
    fn batch_mismatch_display_is_total_for_inconsistent_fields() {
        // The fields are public, so Display must not panic on hand-built
        // values that the engine itself would never produce.
        let e = NormError::BatchLengthMismatch {
            rows: 9,
            d: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("0 leftover"), "{e}");
        let e = NormError::BatchLengthMismatch {
            rows: usize::MAX,
            d: usize::MAX,
            actual: 1,
        };
        let _ = e.to_string();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NormError>();
    }
}
