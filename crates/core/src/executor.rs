//! Resident partition execution and the clock seam behind adaptive
//! coalescing.
//!
//! Before this module existed, every parallel batch call
//! ([`Normalizer::normalize_batch_parallel`](crate::Normalizer::normalize_batch_parallel),
//! the SIMD batch driver, the whitening group partitioner) spawned and
//! joined scoped OS threads *inside the call*. That is correct — rows
//! are independent and the partition math never changes output bits —
//! but it puts a `clone`+`spawn`+`join` on the latency path of every
//! round the serving layer runs. The pieces here let threads be paid
//! for **once**:
//!
//! - [`PartitionRunner`] is the seam the engines partition through: a
//!   width (how many parts to split into) and a `run(parts, task)`
//!   that executes `task(0..parts)` concurrently and returns when all
//!   parts finished. The engines keep owning the *partition math*
//!   (contiguous runs via `worker_rows`); the runner only supplies the
//!   execution vehicle, so output bits cannot depend on which runner
//!   ran.
//! - [`SerialRunner`] runs parts in a loop on the caller —
//!   the `threads == 1` behaviour, now spelled as a runner.
//! - [`ScopedRunner`] reproduces the legacy per-call
//!   `std::thread::scope` workers — kept as the reference vehicle the
//!   resident pool is tested against.
//! - [`PartitionPool`] is the resident vehicle: N helper threads spawn
//!   once, park on a condvar, execute claimed parts when a round
//!   arrives, and park again. The caller participates as the
//!   (N+1)-th worker, so a pool of `t-1` helpers gives the same
//!   `t`-way partition the scoped path produced with `threads = t`.
//!   Idle helpers burn zero CPU (no busy-spin — proven by the
//!   wake-up counter the thread-hygiene tests read), and
//!   [`PartitionPool::shutdown`]/`Drop` joins every helper.
//! - [`Clock`]/[`RealClock`]/[`TestClock`] is the monotonic-time seam
//!   the adaptive-coalescing estimator reads arrivals through, so the
//!   deterministic concurrency tests can script time instead of
//!   sleeping.
//!
//! Panic containment: a part that panics inside a pool round is caught
//! on the helper, recorded, and re-raised on the *calling* thread once
//! the round completes (every other part still runs). The pool itself
//! stays serviceable — the next round runs normally — which is what
//! lets the service layer translate a panicking request into its
//! fail-closed shutdown protocol instead of deadlocking on a dead
//! helper.

// The resident pool smuggles a borrowed task reference to parked
// helper threads, which requires one lifetime transmute (see the
// SAFETY argument at the erasure site). Everything else stays safe.
#![allow(unsafe_code)]

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution vehicle behind the engines' batch partitioning: a
/// fixed width and a fork-join `run`. Implementations must execute
/// every part index in `0..parts` exactly once and return only after
/// all of them finished; a panicking part must propagate to the caller
/// of [`run`](PartitionRunner::run) (after the surviving parts
/// completed), never be swallowed.
///
/// The engines split work into contiguous per-part chunks *before*
/// calling `run`, using the same `worker_rows` split for every
/// implementation — so the bits an engine produces are identical for
/// any runner, resident or scoped or serial.
pub trait PartitionRunner: Send + Sync {
    /// How many parts this runner wants work split into (callers may
    /// pass fewer parts to [`run`](PartitionRunner::run) when the
    /// batch is smaller). Always ≥ 1.
    fn width(&self) -> usize;

    /// Execute `task(part)` for every `part in 0..parts`, concurrently
    /// where the vehicle allows, returning once all parts completed.
    fn run(&self, parts: usize, task: &(dyn Fn(usize) + Sync));
}

/// Runs every part on the calling thread, in index order. The
/// `threads == 1` execution vehicle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl PartitionRunner for SerialRunner {
    fn width(&self) -> usize {
        1
    }

    fn run(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        for part in 0..parts.max(1) {
            task(part);
        }
    }
}

/// The legacy vehicle: per-call `std::thread::scope` workers, one
/// spawned thread per part beyond the caller's own. Kept as the
/// reference implementation the resident pool is checked against, and
/// as the fallback for one-shot call sites that never justified a
/// resident pool.
#[derive(Debug, Clone, Copy)]
pub struct ScopedRunner(pub usize);

impl PartitionRunner for ScopedRunner {
    fn width(&self) -> usize {
        self.0.max(1)
    }

    fn run(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        if parts <= 1 {
            task(0);
            return;
        }
        std::thread::scope(|scope| {
            for part in 1..parts {
                scope.spawn(move || task(part));
            }
            task(0);
        });
    }
}

/// One round of pool work, protected by the job mutex. The task
/// reference is lifetime-erased (see the SAFETY argument in
/// [`PartitionPool::run`]); it is `Some` strictly between a round's
/// publication and its retirement, both of which happen under this
/// mutex.
struct PoolJob {
    task: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Next part index to claim. Parts are claimed one at a time under
    /// the lock; `next == parts` means the round is fully claimed (but
    /// not necessarily finished — see `remaining`).
    next: usize,
    parts: usize,
    /// Parts claimed but whose `task(part)` call has not returned yet,
    /// plus parts not yet claimed. `0` means the round is done.
    remaining: usize,
    /// First panic payload caught in this round; re-raised on the
    /// calling thread at round end.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
    /// Times a parked helper woke from its condvar wait. An idle pool
    /// must not accumulate wake-ups — the thread-hygiene suite pins
    /// this (no busy-spin, no periodic polling).
    wakeups: u64,
}

struct PoolShared {
    job: Mutex<PoolJob>,
    /// Helpers park here; a published round (or shutdown) notifies.
    work_cv: Condvar,
    /// The round's caller parks here; the last completed part notifies.
    done_cv: Condvar,
    /// Callers wanting to publish a round park here while a previous
    /// round is still retiring (concurrent `run` calls are legal).
    idle_cv: Condvar,
}

impl PoolShared {
    /// Job-lock accessor recovering from poisoning: the pool's own
    /// locked sections never panic (task panics are caught *outside*
    /// the lock), so a poisoned job mutex still holds consistent state.
    fn job(&self) -> MutexGuard<'_, PoolJob> {
        self.job.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_work<'a>(&self, guard: MutexGuard<'a, PoolJob>) -> MutexGuard<'a, PoolJob> {
        self.work_cv
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_done<'a>(&self, guard: MutexGuard<'a, PoolJob>) -> MutexGuard<'a, PoolJob> {
        self.done_cv
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_idle<'a>(&self, guard: MutexGuard<'a, PoolJob>) -> MutexGuard<'a, PoolJob> {
        self.idle_cv
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A resident fork-join pool: `helpers` threads spawned once at
/// construction, parked on a condvar between rounds. The caller of
/// [`run`](PartitionPool::run) participates in the round it publishes,
/// so [`width`](PartitionRunner::width) is `helpers + 1` and a pool
/// built with `helpers = t - 1` replaces `threads = t` scoped workers
/// one for one.
///
/// Concurrent `run` calls from different threads are serialized: a
/// second caller parks until the first round retired. (The service
/// layer already serializes rounds through its backend mutex; this
/// guard makes the pool safe for the per-request path, where a
/// normalize and a whiten call can race on the same shard's pool.)
pub struct PartitionPool {
    shared: Arc<PoolShared>,
    helpers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for PartitionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionPool")
            .field("helpers", &self.helpers)
            .finish_non_exhaustive()
    }
}

impl PartitionPool {
    /// Spawn `helpers` parked helper threads. `helpers == 0` is a valid
    /// degenerate pool (width 1, every round runs serially on the
    /// caller). Thread names are `{label}h{index}`, truncated by the OS
    /// to 15 bytes — the thread-hygiene tests count threads by this
    /// prefix, so keep `label` short and unique per owner.
    pub fn new(helpers: usize, label: &str) -> Self {
        let shared = Arc::new(PoolShared {
            job: Mutex::new(PoolJob {
                task: None,
                next: 0,
                parts: 0,
                remaining: 0,
                panic: None,
                shutdown: false,
                wakeups: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(helpers);
        for i in 0..helpers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("{label}h{i}"))
                .spawn(move || helper_loop(&shared))
                .expect("spawning a pool helper thread failed");
            handles.push(handle);
        }
        PartitionPool {
            shared,
            helpers,
            handles: Mutex::new(handles),
        }
    }

    /// Total wake-ups parked helpers have experienced. A pool that is
    /// idle over a window must not accumulate any (beyond the rare
    /// spurious condvar wake) — the hygiene tests pin this.
    pub fn wakeups(&self) -> u64 {
        self.shared.job().wakeups
    }

    /// Ask every helper to exit and join them. Idempotent; also run by
    /// `Drop`. Never called from inside a round.
    pub fn shutdown(&self) {
        {
            let mut job = self.shared.job();
            job.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in handles.drain(..) {
            // A helper that panicked outside a task (impossible by
            // construction, but join returns Result) has already
            // terminated; either way the thread is gone.
            drop(handle.join());
        }
    }
}

impl Drop for PartitionPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl PartitionRunner for PartitionPool {
    fn width(&self) -> usize {
        self.helpers + 1
    }

    fn run(&self, parts: usize, task: &(dyn Fn(usize) + Sync)) {
        if parts <= 1 {
            task(0);
            return;
        }
        let shared = &self.shared;
        let mut job = shared.job();
        // Serialize concurrent rounds: publish only into an idle pool.
        while job.task.is_some() {
            job = shared.wait_idle(job);
        }
        // SAFETY: the task reference is only dereferenced by helpers
        // between this publication and the retirement below, both under
        // the job mutex. A helper copies the reference out only while
        // `task.is_some() && next < parts` holds, and signals it is done
        // with the call by decrementing `remaining` *after* `task(part)`
        // returned. `participate` does not return until `remaining == 0`
        // and it has set `task = None` back under the lock — so no
        // dereference can happen after `run` returns, which is exactly
        // the borrow the caller handed us. The erased reference never
        // escapes the pool.
        let erased: &'static (dyn Fn(usize) + Sync) =
            // SAFETY: see the invariant argument directly above.
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        job.task = Some(erased);
        job.next = 0;
        job.parts = parts;
        job.remaining = parts;
        drop(job);
        shared.work_cv.notify_all();
        if let Some(payload) = self.participate() {
            resume_unwind(payload);
        }
    }
}

impl PartitionPool {
    /// The calling thread's share of the round it just published: claim
    /// parts alongside the helpers, then wait for the stragglers,
    /// retire the task pointer, and hand back any caught panic.
    fn participate(&self) -> Option<Box<dyn Any + Send>> {
        let shared = &self.shared;
        let mut job = shared.job();
        loop {
            while job.next < job.parts {
                let part = job.next;
                job.next += 1;
                let Some(task) = job.task else { break };
                drop(job);
                let result = catch_unwind(AssertUnwindSafe(|| task(part)));
                job = shared.job();
                if let Err(payload) = result {
                    if job.panic.is_none() {
                        job.panic = Some(payload);
                    }
                }
                job.remaining -= 1;
            }
            if job.remaining == 0 {
                break;
            }
            job = shared.wait_done(job);
        }
        // Retire the round: after this no helper can observe the erased
        // reference, so the borrow `run` was given may end.
        job.task = None;
        let payload = job.panic.take();
        drop(job);
        shared.idle_cv.notify_all();
        payload
    }
}

/// A parked helper: wake on published work (or shutdown), claim parts
/// one at a time, run each outside the lock with panics caught, park
/// again when the round is fully claimed.
fn helper_loop(shared: &PoolShared) {
    let mut job = shared.job();
    loop {
        while !job.shutdown && (job.task.is_none() || job.next >= job.parts) {
            job = shared.wait_work(job);
            job.wakeups += 1;
        }
        if job.shutdown {
            return;
        }
        let part = job.next;
        job.next += 1;
        let Some(task) = job.task else {
            continue;
        };
        drop(job);
        let result = catch_unwind(AssertUnwindSafe(|| task(part)));
        job = shared.job();
        if let Err(payload) = result {
            if job.panic.is_none() {
                job.panic = Some(payload);
            }
        }
        job.remaining -= 1;
        if job.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Monotonic time as the adaptive-coalescing estimator sees it:
/// nanoseconds since an arbitrary per-clock origin. A seam rather than
/// `Instant` directly so the deterministic concurrency tests can script
/// arrival times instead of sleeping real wall-clock time. (The
/// estimator itself, [`crate::adaptive::ArrivalRateEstimator`], is a
/// pure function of the timestamps fed through this trait — value-path
/// clean per normlint L003.)
pub trait Clock: fmt::Debug + Send + Sync {
    /// Nanoseconds since this clock's origin. Must be monotone
    /// non-decreasing across calls (from any thread).
    fn now_nanos(&self) -> u64;
}

/// The production clock: `Instant` elapsed since construction.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of service uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced clock for deterministic tests: time moves only
/// when [`advance`](TestClock::advance)/[`set_nanos`](TestClock::set_nanos)
/// say so. Shared with a service via `Arc`, so a test thread can script
/// arrival timestamps while submitters run.
#[derive(Debug, Default)]
pub struct TestClock {
    nanos: AtomicU64,
}

impl TestClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        let nanos = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute timestamp. Must not move time backwards
    /// relative to concurrent readers' expectations; tests script this
    /// monotonically.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn count_parts(runner: &dyn PartitionRunner, parts: usize) -> Vec<usize> {
        let hits: Vec<AtomicUsize> = (0..parts).map(|_| AtomicUsize::new(0)).collect();
        runner.run(parts, &|part| {
            hits[part].fetch_add(1, Ordering::SeqCst);
        });
        hits.into_iter().map(|h| h.into_inner()).collect()
    }

    #[test]
    fn every_runner_executes_each_part_exactly_once() {
        let pool = PartitionPool::new(3, "xt1-");
        let runners: [&dyn PartitionRunner; 3] = [&SerialRunner, &ScopedRunner(4), &pool];
        for runner in runners {
            for parts in [1, 2, 3, 4, 7] {
                assert_eq!(count_parts(runner, parts), vec![1; parts]);
            }
        }
    }

    #[test]
    fn pool_width_counts_the_caller() {
        assert_eq!(PartitionPool::new(0, "xt2-").width(), 1);
        assert_eq!(PartitionPool::new(3, "xt3-").width(), 4);
        assert_eq!(SerialRunner.width(), 1);
        assert_eq!(ScopedRunner(0).width(), 1);
        assert_eq!(ScopedRunner(5).width(), 5);
    }

    #[test]
    fn pool_survives_many_rounds_and_shutdown_is_idempotent() {
        let pool = PartitionPool::new(2, "xt4-");
        for round in 0..100 {
            let sum = AtomicUsize::new(0);
            pool.run(3, &|part| {
                sum.fetch_add(part + round, Ordering::SeqCst);
            });
            assert_eq!(sum.into_inner(), 3 + 3 * round);
        }
        pool.shutdown();
        pool.shutdown();
    }

    #[test]
    fn panicking_part_reaches_the_caller_after_other_parts_ran() {
        let pool = PartitionPool::new(2, "xt5-");
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|part| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(part != 1, "boom in part 1");
            });
        }));
        assert!(caught.is_err(), "the part's panic must reach the caller");
        assert_eq!(ran.load(Ordering::SeqCst), 3, "surviving parts still ran");
        // The pool is still serviceable after a panicked round.
        assert_eq!(count_parts(&pool, 3), vec![1; 3]);
    }

    #[test]
    fn zero_helper_pool_runs_on_the_caller() {
        let pool = PartitionPool::new(0, "xt6-");
        let caller = std::thread::current().id();
        pool.run(1, &|_| assert_eq!(std::thread::current().id(), caller));
        // Even over-split rounds complete (serially, on the caller).
        assert_eq!(count_parts(&pool, 4), vec![1; 4]);
    }

    #[test]
    fn idle_pool_accumulates_no_wakeups() {
        let pool = PartitionPool::new(2, "xt7-");
        let after_spawn = pool.wakeups();
        std::thread::sleep(Duration::from_millis(60));
        // Spurious wakes are permitted by condvar semantics but never
        // systematic; an idle pool must not poll.
        assert!(
            pool.wakeups() - after_spawn <= 2,
            "idle pool woke {} times over an idle window",
            pool.wakeups() - after_spawn
        );
    }

    #[test]
    fn test_clock_is_script_driven() {
        let clock = TestClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(Duration::from_micros(5));
        assert_eq!(clock.now_nanos(), 5_000);
        clock.set_nanos(42);
        assert_eq!(clock.now_nanos(), 42);
        let real = RealClock::new();
        let a = real.now_nanos();
        let b = real.now_nanos();
        assert!(b >= a, "real clock is monotone");
    }
}
