//! Exact `f64` reference layer normalization — the experiments' ground
//! truth.
//!
//! The paper measures "absolute error" against PyTorch's CPU LayerNorm.
//! PyTorch computes `(x − μ)/√(σ² + ε)` with biased variance and
//! `ε = 10⁻⁵` by default. This module computes the same thing in `f64`,
//! which is strictly tighter than any of the evaluated formats, with ε as a
//! parameter (pass 0 for the pure mathematical normalization).

/// Mean of a slice (0 for an empty slice).
pub fn mean_f64(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Biased variance (division by `d`, as layer normalization uses).
pub fn variance_f64(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mu = mean_f64(x);
    x.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / x.len() as f64
}

/// `(x − μ)/√(σ² + ε)`: normalization without the affine output step
/// (γ = 1, β = 0). Returns an empty vector for empty input.
///
/// # Examples
///
/// ```
/// use iterl2norm::reference::normalize_f64;
///
/// let z = normalize_f64(&[1.0, 2.0, 3.0, 4.0], 0.0);
/// let mean: f64 = z.iter().sum::<f64>() / 4.0;
/// let var: f64 = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
/// assert!(mean.abs() < 1e-12);
/// assert!((var - 1.0).abs() < 1e-12);
/// ```
pub fn normalize_f64(x: &[f64], eps: f64) -> Vec<f64> {
    let mu = mean_f64(x);
    let var = variance_f64(x);
    let denom = (var + eps).sqrt();
    if denom == 0.0 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|&v| (v - mu) / denom).collect()
}

/// Full layer normalization `γ·(x − μ)/√(σ² + ε) + β` in `f64`.
///
/// # Panics
///
/// Panics if `gamma` or `beta` lengths differ from `x`.
pub fn layer_norm_f64(x: &[f64], gamma: &[f64], beta: &[f64], eps: f64) -> Vec<f64> {
    assert_eq!(gamma.len(), x.len(), "gamma length mismatch");
    assert_eq!(beta.len(), x.len(), "beta length mismatch");
    normalize_f64(x, eps)
        .into_iter()
        .zip(gamma.iter().zip(beta))
        .map(|(n, (&g, &b))| n * g + b)
        .collect()
}

/// PyTorch's default ε for `nn.LayerNorm`.
pub const TORCH_DEFAULT_EPS: f64 = 1e-5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean_f64(&x), 5.0);
        assert_eq!(variance_f64(&x), 4.0); // classic example, σ = 2
    }

    #[test]
    fn empty_input_conventions() {
        assert_eq!(mean_f64(&[]), 0.0);
        assert_eq!(variance_f64(&[]), 0.0);
        assert!(normalize_f64(&[], 0.0).is_empty());
    }

    #[test]
    fn normalized_output_has_unit_std() {
        let x: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 1.3).sin() * 7.0 + 3.0)
            .collect();
        let z = normalize_f64(&x, 0.0);
        assert!((mean_f64(&z)).abs() < 1e-12);
        assert!((variance_f64(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eps_damps_small_variance() {
        let x = [1.0, 1.0 + 1e-8];
        let no_eps = normalize_f64(&x, 0.0);
        let with_eps = normalize_f64(&x, TORCH_DEFAULT_EPS);
        assert!(no_eps[1] > 0.9); // normalizes to ±1
        assert!(with_eps[1].abs() < 1e-2); // ε dominates the tiny variance
    }

    #[test]
    fn constant_input_yields_zeros() {
        let x = [5.0; 16];
        assert!(normalize_f64(&x, 0.0).iter().all(|&v| v == 0.0));
        assert!(normalize_f64(&x, 1e-5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn affine_parameters_apply() {
        let x = [1.0, 3.0];
        let z = layer_norm_f64(&x, &[2.0, 2.0], &[1.0, 1.0], 0.0);
        // normalized = [−1, 1] → ×2 + 1 = [−1, 3]
        assert!((z[0] - -1.0).abs() < 1e-12);
        assert!((z[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma length mismatch")]
    fn mismatched_gamma_panics() {
        let _ = layer_norm_f64(&[1.0, 2.0], &[1.0], &[0.0, 0.0], 0.0);
    }
}
