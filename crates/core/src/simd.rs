//! SIMD execution tier for the native-f32 backend.
//!
//! The generic engine ([`Normalizer`](crate::Normalizer) over
//! [`softfloat::HostF32`]) executes one scalar lane at a time. This module
//! adds vector kernels that run the *identical* float operation DAG — and
//! therefore produce identical bits — across multiple lanes at once:
//!
//! * **Reduction kernel**: the hardware-order sum / sum-of-squares
//!   ([`crate::hworder`]) is already shaped like a SIMD reduction — eight
//!   8-input L1 adder trees per 64-element chunk, then one L2 tree. An
//!   8×8 register transpose turns the eight L1 trees into *lanewise*
//!   vector adds (lane `g` of the accumulator is exactly L1 tree `g`),
//!   so the operation tree is unchanged, only executed eight trees at a
//!   time. Short tail chunks are padded with `+0.0`: the scalar path
//!   substitutes `+0` for every missing tree input and leaves
//!   fully-empty L1 slots at `+0`, and `+0 + +0 = +0` under
//!   round-to-nearest-even, so the padded full-width kernel reproduces
//!   the scalar short-chunk semantics bit for bit.
//! * **Multi-row lane kernel**: the Newton update of the IterL2Norm
//!   iteration and the scale/affine application are per-row independent,
//!   so a register holds one *row* per lane (8 rows for AVX2, 4 per
//!   `__m128` for SSE2) and every lanewise `mul`/`sub`/`add` is the same
//!   IEEE-754 operation the scalar code performs on that row.
//!
//! Three kernels implement this, selected through [`SimdLevel`]:
//! `x86-64` AVX2+FMA and SSE2 [`core::arch`] kernels behind runtime
//! [`std::arch::is_x86_feature_detected!`] dispatch, plus a portable
//! fixed-width-chunk kernel written so the autovectorizer can do the same
//! transformation on any architecture. `SimdLevel::Auto` degrades
//! gracefully (AVX2 → SSE2 → portable); forcing a level the host cannot
//! run is a clean [`NormError::SimdUnsupported`], never a silent
//! downgrade.
//!
//! Why bit-identity survives vectorization: every vector instruction used
//! here (`vaddps`, `vmulps`, `vsubps` and their SSE forms) performs the
//! same IEEE-754 binary32 round-to-nearest-even operation per lane as its
//! scalar counterpart; no FMA contraction is introduced (the update step
//! is the paper's `UpdateStyle::Separate` — explicit mul then add — and
//! Rust never contracts float expressions); and the kernels never
//! *reassociate* — they only re-bracket work that the hardware reduction
//! order already brackets that way. The oracle suite
//! (`tests/backend_bit_identity.rs`) enforces SIMD ≡ scalar ≡ emulated
//! for every method × dimension × reduce order × forced level.
#![allow(unsafe_code)]

use core::fmt;

use softfloat::HostF32;
use std::sync::{Mutex, PoisonError};

use crate::backend::BackendKind;
use crate::config::{IterConfig, StopRule};
use crate::engine::{worker_rows, NormPlan, ScaleMethod};
use crate::error::NormError;
use crate::executor::PartitionRunner;
use crate::hworder::{fold_partials, ReduceOrder, CHUNK, TREE_WIDTH};
use crate::iteration::{a0_from_exponent, lambda_from_exponent};
use crate::layernorm::{DimConsts, RsqrtScale};

/// Which SIMD tier the native backend executes.
///
/// `Auto` (the default) picks the widest kernel the host supports and
/// never fails; every other value is a *forced* selection that either
/// runs exactly that tier or fails backend construction with
/// [`NormError::SimdUnsupported`] — requesting `avx2` on a host without
/// AVX2 must be an error, not a silent downgrade, or benchmark points
/// get mislabeled. The resolved level is reported by
/// [`NormBackend::simd_level`](crate::backend::NormBackend::simd_level)
/// and in [`NormResponse`](crate::service::NormResponse) metadata.
///
/// Output bits are identical across every level — the levels differ only
/// in throughput (enforced by `tests/backend_bit_identity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdLevel {
    /// Pick the widest supported kernel (AVX2 → SSE2 → portable). Never
    /// fails to resolve; the emulated backend reports `Scalar`.
    #[default]
    Auto,
    /// Force the generic scalar engine (the pre-SIMD path).
    Scalar,
    /// Force the portable fixed-width-chunk kernel (any architecture;
    /// written so the autovectorizer can widen it).
    Portable,
    /// Force the x86-64 SSE2 kernel (4 lanes; baseline on every x86-64).
    Sse2,
    /// Force the x86-64 AVX2+FMA kernel (8 lanes; runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// All levels, for sweeps and CLI help.
    pub const ALL: [SimdLevel; 5] = [
        SimdLevel::Auto,
        SimdLevel::Scalar,
        SimdLevel::Portable,
        SimdLevel::Sse2,
        SimdLevel::Avx2,
    ];

    /// Parse a level name (`"auto"`, `"scalar"`, `"portable"`, `"sse2"`,
    /// `"avx2"`), case-insensitively. Returns `None` for anything else.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "auto" => Some(SimdLevel::Auto),
            "scalar" => Some(SimdLevel::Scalar),
            "portable" => Some(SimdLevel::Portable),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// Canonical name (`"auto"` / `"scalar"` / `"portable"` / `"sse2"` /
    /// `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Auto => "auto",
            SimdLevel::Scalar => "scalar",
            SimdLevel::Portable => "portable",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete vector kernel the host can actually run (`Scalar` is the
/// absence of one — the generic engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdKernel {
    Portable,
    Sse2,
    Avx2,
}

impl SimdKernel {
    /// The level this kernel reports (never `Auto`).
    pub(crate) fn level(self) -> SimdLevel {
        match self {
            SimdKernel::Portable => SimdLevel::Portable,
            SimdKernel::Sse2 => SimdLevel::Sse2,
            SimdKernel::Avx2 => SimdLevel::Avx2,
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn host_has_avx2_fma() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Resolve a requested level against the backend kind and the running
/// host. `Ok(None)` means the scalar generic engine; `Ok(Some(kernel))`
/// names the vector kernel to run.
///
/// # Errors
///
/// [`NormError::SimdUnsupported`] when a forced level cannot run: any
/// vector level on the emulated backend (softfloat arithmetic has no
/// vector form), or an x86 level on a host that lacks it.
pub(crate) fn resolve(
    level: SimdLevel,
    backend: BackendKind,
) -> Result<Option<SimdKernel>, NormError> {
    let unsupported = || {
        Err(NormError::SimdUnsupported {
            level: level.name(),
            backend: backend.name(),
        })
    };
    match backend {
        BackendKind::Emulated => match level {
            SimdLevel::Auto | SimdLevel::Scalar => Ok(None),
            _ => unsupported(),
        },
        BackendKind::Native => match level {
            SimdLevel::Scalar => Ok(None),
            SimdLevel::Portable => Ok(Some(SimdKernel::Portable)),
            SimdLevel::Sse2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SSE2 is part of the x86-64 baseline: no detection.
                    Ok(Some(SimdKernel::Sse2))
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    unsupported()
                }
            }
            SimdLevel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if host_has_avx2_fma() {
                        Ok(Some(SimdKernel::Avx2))
                    } else {
                        unsupported()
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    unsupported()
                }
            }
            SimdLevel::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if host_has_avx2_fma() {
                        Ok(Some(SimdKernel::Avx2))
                    } else {
                        Ok(Some(SimdKernel::Sse2))
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    Ok(Some(SimdKernel::Portable))
                }
            }
        },
    }
}

/// Rows processed per block: one row per lane of the widest kernel. The
/// SSE2 kernel runs the same 8-row blocks as two 4-lane registers.
const ROW_LANES: usize = 8;

/// The SIMD batch executor carried by
/// [`NativeF32`](crate::backend::NativeF32): a resolved kernel plus
/// `f32` copies of the plan's affine parameters (the plan stores
/// [`HostF32`], which is not layout-guaranteed to cast as a slice) and
/// the vectorizable iteration step count, if the method is the standard
/// fixed-step IterL2Norm.
#[derive(Debug, Clone)]
pub(crate) struct SimdNative {
    kernel: SimdKernel,
    /// `Some(n)` when the scale method is the paper's fixed-step
    /// iteration with the hardware seed/rate rules — the configuration
    /// the multi-row lane kernel implements. Anything else (FISR, LUT,
    /// exact, a custom iteration config) computes its scale per row via
    /// [`RsqrtScale`], which is bit-identical by reuse.
    iter_steps: Option<u32>,
    gamma: Option<Vec<f32>>,
    beta: Option<Vec<f32>>,
}

impl SimdNative {
    pub(crate) fn new(kernel: SimdKernel, plan: &NormPlan<HostF32>, method: &ScaleMethod) -> Self {
        let iter_steps = match method {
            ScaleMethod::IterL2(norm) => match norm.config.stop {
                StopRule::FixedSteps(n) if norm.config == IterConfig::fixed_steps(n) => Some(n),
                _ => None,
            },
            _ => None,
        };
        let to_f32 = |v: &[HostF32]| v.iter().map(|h| h.0).collect::<Vec<f32>>();
        SimdNative {
            kernel,
            iter_steps,
            gamma: plan.gamma().map(to_f32),
            beta: plan.beta().map(to_f32),
        }
    }

    pub(crate) fn level(&self) -> SimdLevel {
        self.kernel.level()
    }

    /// The SIMD counterpart of the generic bits engine: same validation
    /// order, same worker partitioning (contiguous runs, first
    /// `rows % workers` workers take one extra row), bit-identical output.
    /// Operates on the storage bits in place of a decode/encode pass —
    /// `u32` and `f32` share size, alignment and total bit-pattern
    /// validity, so the cast is free.
    pub(crate) fn normalize_batch(
        &self,
        plan: &NormPlan<HostF32>,
        method: &ScaleMethod,
        input: &[u32],
        out: &mut [u32],
        threads: usize,
    ) -> Result<usize, NormError> {
        if out.len() != input.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: input.len(),
                actual: out.len(),
            });
        }
        if threads == 0 {
            return Err(NormError::ZeroThreads);
        }
        let rows = plan.rows_of(input.len())?;
        let d = plan.d();
        let ctx = RowCtx {
            d,
            inv_d: plan.inv_d().0,
            sqrt_d: plan.sqrt_d().0,
            reduce: plan.reduce(),
            iter_steps: self.iter_steps,
            method,
            dims: plan.dims(),
            gamma: self.gamma.as_deref(),
            beta: self.beta.as_deref(),
        };
        let x = bits_as_f32(input);
        let o = bits_as_f32_mut(out);
        let workers = threads.min(rows);
        if workers <= 1 {
            self.process_rows(&ctx, x, o);
            return Ok(rows);
        }
        std::thread::scope(|scope| {
            let mut x_rest = x;
            let mut o_rest = o;
            for wi in 0..workers {
                let take = worker_rows(rows, workers, wi) * d;
                let (x_chunk, x_tail) = x_rest.split_at(take);
                let (o_chunk, o_tail) = o_rest.split_at_mut(take);
                x_rest = x_tail;
                o_rest = o_tail;
                let ctx = &ctx;
                scope.spawn(move || self.process_rows(ctx, x_chunk, o_chunk));
            }
        });
        Ok(rows)
    }

    /// [`normalize_batch`](SimdNative::normalize_batch) over an injected
    /// [`PartitionRunner`]: identical validation, identical
    /// [`worker_rows`] partition at the runner's width, identical output
    /// bits — only the execution vehicle changes (the serving path's
    /// resident pool instead of per-call scoped threads).
    pub(crate) fn normalize_batch_runner(
        &self,
        plan: &NormPlan<HostF32>,
        method: &ScaleMethod,
        input: &[u32],
        out: &mut [u32],
        runner: &dyn PartitionRunner,
    ) -> Result<usize, NormError> {
        if out.len() != input.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: input.len(),
                actual: out.len(),
            });
        }
        let rows = plan.rows_of(input.len())?;
        let d = plan.d();
        let ctx = RowCtx {
            d,
            inv_d: plan.inv_d().0,
            sqrt_d: plan.sqrt_d().0,
            reduce: plan.reduce(),
            iter_steps: self.iter_steps,
            method,
            dims: plan.dims(),
            gamma: self.gamma.as_deref(),
            beta: self.beta.as_deref(),
        };
        let x = bits_as_f32(input);
        let o = bits_as_f32_mut(out);
        let workers = runner.width().min(rows);
        if workers <= 1 {
            self.process_rows(&ctx, x, o);
            return Ok(rows);
        }
        // Same per-part mutex hand-off as the generic engine's runner
        // path: disjoint chunks parked one per part, claimed by index.
        let mut chunks: Vec<crate::engine::PartChunk<'_, f32>> = Vec::with_capacity(workers);
        let mut x_rest = x;
        let mut o_rest = o;
        for wi in 0..workers {
            let take = worker_rows(rows, workers, wi) * d;
            let (x_chunk, x_tail) = x_rest.split_at(take);
            let (o_chunk, o_tail) = o_rest.split_at_mut(take);
            x_rest = x_tail;
            o_rest = o_tail;
            chunks.push(Mutex::new(Some((x_chunk, o_chunk))));
        }
        runner.run(workers, &|wi| {
            let taken = chunks[wi]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            let Some((x_chunk, o_chunk)) = taken else {
                return;
            };
            self.process_rows(&ctx, x_chunk, o_chunk);
        });
        Ok(rows)
    }

    fn process_rows(&self, ctx: &RowCtx<'_>, x: &[f32], o: &mut [f32]) {
        match self.kernel {
            // SAFETY: the portable kernel has no instruction-set requirement.
            SimdKernel::Portable => unsafe { process_rows_portable(ctx, x, o) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `resolve` yields Sse2 only on x86-64, where SSE2 is baseline.
            SimdKernel::Sse2 => unsafe { x86::process_rows_sse2(ctx, x, o) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `resolve` yields Avx2 only after runtime-detecting AVX2+FMA.
            SimdKernel::Avx2 => unsafe { x86::process_rows_avx2(ctx, x, o) },
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Sse2 | SimdKernel::Avx2 => {
                unreachable!("x86 kernels are never resolved off x86-64")
            }
        }
    }
}

/// Bundle of the per-row constants every kernel needs.
struct RowCtx<'a> {
    d: usize,
    inv_d: f32,
    sqrt_d: f32,
    reduce: ReduceOrder,
    iter_steps: Option<u32>,
    method: &'a ScaleMethod,
    dims: &'a DimConsts<HostF32>,
    gamma: Option<&'a [f32]>,
    beta: Option<&'a [f32]>,
}

/// View storage bits as host floats without copying.
///
/// `u32` and `f32` have identical size (4) and alignment (4), and every
/// 32-bit pattern is a valid `f32` (NaN payloads included), so the
/// reinterpretation is sound in both directions.
fn bits_as_f32(bits: &[u32]) -> &[f32] {
    // SAFETY: same layout, every bit pattern valid (see above); the
    // returned slice borrows `bits`, so aliasing rules are upheld.
    unsafe { core::slice::from_raw_parts(bits.as_ptr().cast::<f32>(), bits.len()) }
}

/// Mutable counterpart of [`bits_as_f32`].
fn bits_as_f32_mut(bits: &mut [u32]) -> &mut [f32] {
    // SAFETY: as `bits_as_f32`; exclusivity carries over from `&mut`.
    unsafe { core::slice::from_raw_parts_mut(bits.as_mut_ptr().cast::<f32>(), bits.len()) }
}

/// One kernel tier: the row reductions plus the multi-row iteration.
///
/// Methods are `unsafe` because implementations may use instructions the
/// host must support — callers reach them only through the dispatch in
/// [`SimdNative::process_rows`], which guarantees the kernel was
/// runtime-resolved for this host.
trait RowReduce {
    /// Row sum in the plan's reduce order (hwtree chunk sums through this
    /// kernel, linear stays a scalar left-to-right fold — a loop-carried
    /// dependence no bit-preserving vectorization can break).
    ///
    /// # Safety
    ///
    /// Callable only on a host that supports the implementing kernel's
    /// instruction set (`resolve` guarantees the match).
    unsafe fn sum(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32;

    /// Row sum of squares, same contract as [`RowReduce::sum`].
    ///
    /// # Safety
    ///
    /// Same contract as [`RowReduce::sum`].
    unsafe fn sum_sq(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32;

    /// The fixed-step IterL2Norm iteration for [`ROW_LANES`] independent
    /// rows, one per lane: seeds and rates come from the scalar bit-field
    /// rules (`a0_from_exponent` / `lambda_from_exponent`), the update
    /// steps run lanewise, and `scales[l] = a∞[l] · √d`.
    ///
    /// # Safety
    ///
    /// Same contract as [`RowReduce::sum`].
    unsafe fn iter_scales(
        &self,
        m: &[f32; ROW_LANES],
        steps: u32,
        sqrt_d: f32,
        scales: &mut [f32; ROW_LANES],
    );
}

/// The block pipeline every kernel runs: for up to [`ROW_LANES`] rows,
/// (1) per-row mean via the kernel's reduction, (2) mean shift, (3)
/// per-row `m = ‖y‖²`, (4) the scale — lanewise iteration for the
/// standard IterL2Norm, per-row [`RsqrtScale`] otherwise — then (5)
/// scale/γ/β application. The stage order and per-stage loops mirror
/// `normalize_row_into` exactly; unused lanes are padded with `m = 1`
/// (lane independence: their results are simply never stored).
///
/// # Safety
///
/// The caller must guarantee `r`'s instruction requirements hold on this
/// host (see [`RowReduce`]). Shapes: `x.len() == o.len()`, a multiple of
/// `ctx.d`, and γ/β (when present) have length `ctx.d`.
#[inline(always)]
unsafe fn process_block_rows<R: RowReduce>(r: &R, ctx: &RowCtx<'_>, x: &[f32], o: &mut [f32]) {
    let d = ctx.d;
    let mut scratch: Vec<HostF32> = Vec::with_capacity(d.div_ceil(CHUNK));
    for (xb, ob) in x.chunks(ROW_LANES * d).zip(o.chunks_mut(ROW_LANES * d)) {
        let n = xb.len() / d;
        // Pad unused lanes with a benign finite m: the iteration runs on
        // them (lanewise, independently) and the result is discarded.
        let mut m = [1.0f32; ROW_LANES];
        for ri in 0..n {
            let xr = &xb[ri * d..(ri + 1) * d];
            let or = &mut ob[ri * d..(ri + 1) * d];
            let mean = r.sum(xr, &mut scratch, ctx.reduce) * ctx.inv_d;
            for (slot, &xi) in or.iter_mut().zip(xr) {
                *slot = xi - mean;
            }
            m[ri] = r.sum_sq(or, &mut scratch, ctx.reduce);
        }
        let mut scales = [0.0f32; ROW_LANES];
        match ctx.iter_steps {
            Some(steps) => r.iter_scales(&m, steps, ctx.sqrt_d, &mut scales),
            None => {
                for (scale, &mi) in scales.iter_mut().zip(&m).take(n) {
                    *scale = ctx.method.scale_with(HostF32(mi), ctx.dims).0;
                }
            }
        }
        for ri in 0..n {
            let or = &mut ob[ri * d..(ri + 1) * d];
            let s = scales[ri];
            for v in or.iter_mut() {
                *v *= s;
            }
            if let Some(g) = ctx.gamma {
                for (v, &gi) in or.iter_mut().zip(g) {
                    *v *= gi;
                }
            }
            if let Some(b) = ctx.beta {
                for (v, &bi) in or.iter_mut().zip(b) {
                    *v += bi;
                }
            }
        }
    }
}

/// Scalar left-to-right fold — [`ReduceOrder::Linear`]'s order is a
/// loop-carried chain, identical on every kernel tier.
#[inline(always)]
fn linear_sum_f32(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |acc, &v| acc + v)
}

/// Scalar left-to-right sum of squares (`acc + v·v`, per element).
#[inline(always)]
fn linear_sum_sq_f32(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |acc, &v| acc + v * v)
}

/// Fold hwtree chunk sums exactly like the scalar engine: the partial
/// sums pass through `fold_partials`, the same 8-input tree fold.
#[inline(always)]
fn fold_chunk_sums(scratch: &mut Vec<HostF32>) -> f32 {
    fold_partials(scratch).0
}

// --------------------------------------------------------------------
// Portable kernel: fixed-width chunks in plain Rust. The explicit
// 8-group structure below is the same shape the x86 kernels implement
// with shuffles, laid out so the autovectorizer can widen it on any
// architecture — and it is the fallback semantics the oracle tests pin.
// --------------------------------------------------------------------

/// Hardware-order sum of one ≤ 64-element chunk: pad to full width with
/// `+0.0` (bit-identical to the scalar short-chunk handling, see the
/// module docs), optionally square, then eight L1 trees and one L2 tree.
#[inline(always)]
fn portable_chunk(chunk: &[f32], square: bool) -> f32 {
    let mut buf = [0.0f32; CHUNK];
    buf[..chunk.len()].copy_from_slice(chunk);
    if square {
        for v in buf.iter_mut() {
            *v = *v * *v;
        }
    }
    let mut l1 = [0.0f32; TREE_WIDTH];
    for (g, slot) in l1.iter_mut().enumerate() {
        let b = &buf[g * TREE_WIDTH..(g + 1) * TREE_WIDTH];
        *slot = ((b[0] + b[1]) + (b[2] + b[3])) + ((b[4] + b[5]) + (b[6] + b[7]));
    }
    ((l1[0] + l1[1]) + (l1[2] + l1[3])) + ((l1[4] + l1[5]) + (l1[6] + l1[7]))
}

struct PortableReduce;

impl RowReduce for PortableReduce {
    // SAFETY: portable kernel — no target-specific instructions.
    #[inline(always)]
    unsafe fn sum(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
        match reduce {
            ReduceOrder::Linear => linear_sum_f32(x),
            ReduceOrder::HwTree => {
                scratch.clear();
                scratch.extend(x.chunks(CHUNK).map(|c| HostF32(portable_chunk(c, false))));
                fold_chunk_sums(scratch)
            }
        }
    }

    // SAFETY: portable kernel — no target-specific instructions.
    #[inline(always)]
    unsafe fn sum_sq(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
        match reduce {
            ReduceOrder::Linear => linear_sum_sq_f32(x),
            ReduceOrder::HwTree => {
                scratch.clear();
                scratch.extend(x.chunks(CHUNK).map(|c| HostF32(portable_chunk(c, true))));
                fold_chunk_sums(scratch)
            }
        }
    }

    // SAFETY: portable kernel — no target-specific instructions.
    #[inline(always)]
    unsafe fn iter_scales(
        &self,
        m: &[f32; ROW_LANES],
        steps: u32,
        sqrt_d: f32,
        scales: &mut [f32; ROW_LANES],
    ) {
        let mut a = [0.0f32; ROW_LANES];
        let mut lam = [0.0f32; ROW_LANES];
        for l in 0..ROW_LANES {
            // Seeds and rates are pure exponent-field bit arithmetic —
            // scalar per lane, exactly the functions the scalar engine
            // calls.
            a[l] = a0_from_exponent(HostF32(m[l])).0;
            lam[l] = lambda_from_exponent(HostF32(m[l])).0;
        }
        // normlint: kernel-begin
        for _ in 0..steps {
            // One `UpdateStyle::Separate` step per lane, in the macro's
            // operation order (`update_step` + the `a + Δa` apply).
            for l in 0..ROW_LANES {
                let t1 = m[l] * a[l];
                let t2 = t1 * a[l];
                let t3 = 1.0f32 - t2;
                let t4 = lam[l] * t1;
                a[l] += t4 * t3;
            }
        }
        // normlint: kernel-end
        for l in 0..ROW_LANES {
            scales[l] = a[l] * sqrt_d;
        }
    }
}

/// Portable-kernel entry (safe to run on any host; the `unsafe` is only
/// the shared [`RowReduce`] plumbing).
///
/// # Safety
///
/// No instruction requirements; shapes per [`process_block_rows`].
unsafe fn process_rows_portable(ctx: &RowCtx<'_>, x: &[f32], o: &mut [f32]) {
    process_block_rows(&PortableReduce, ctx, x, o);
}

// --------------------------------------------------------------------
// x86-64 kernels.
// --------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m128, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_permute2f128_ps,
        _mm256_set1_ps, _mm256_shuffle_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm256_unpackhi_ps,
        _mm256_unpacklo_ps, _mm_add_ps, _mm_loadu_ps, _mm_movehl_ps, _mm_movelh_ps, _mm_mul_ps,
        _mm_set1_ps, _mm_storeu_ps, _mm_sub_ps, _mm_unpackhi_ps, _mm_unpacklo_ps,
    };

    use softfloat::HostF32;

    use super::{
        linear_sum_f32, linear_sum_sq_f32, process_block_rows, RowCtx, RowReduce, ROW_LANES,
    };
    use crate::hworder::{fold_partials, ReduceOrder, CHUNK, TREE_WIDTH};
    use crate::iteration::{a0_from_exponent, lambda_from_exponent};

    /// Hardware-order sum of one full 64-element chunk with AVX2: load
    /// the eight 8-element groups into eight registers, transpose 8×8 so
    /// lane `g` of column `j` holds element `j` of group `g`, then run
    /// the L1 tree *vertically* — every `vaddps` performs the eight L1
    /// adds of one tree level, lanewise, in the scalar operand order —
    /// and finish with the scalar L2 tree over the eight group sums.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p` must point at `CHUNK` readable `f32`s.
    #[inline(always)]
    unsafe fn avx2_chunk(p: *const f32, square: bool) -> f32 {
        let mut r = [_mm256_set1_ps(0.0); TREE_WIDTH];
        for (k, reg) in r.iter_mut().enumerate() {
            let v = _mm256_loadu_ps(p.add(TREE_WIDTH * k));
            *reg = if square { _mm256_mul_ps(v, v) } else { v };
        }
        // 8×8 transpose (unpack → shuffle → 128-bit permute): c[j] lane g
        // = chunk[8g + j].
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps::<0b01_00_01_00>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0b11_10_11_10>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0b01_00_01_00>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0b11_10_11_10>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0b01_00_01_00>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0b11_10_11_10>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0b01_00_01_00>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0b11_10_11_10>(t5, t7);
        let c0 = _mm256_permute2f128_ps::<0x20>(s0, s4);
        let c1 = _mm256_permute2f128_ps::<0x20>(s1, s5);
        let c2 = _mm256_permute2f128_ps::<0x20>(s2, s6);
        let c3 = _mm256_permute2f128_ps::<0x20>(s3, s7);
        let c4 = _mm256_permute2f128_ps::<0x31>(s0, s4);
        let c5 = _mm256_permute2f128_ps::<0x31>(s1, s5);
        let c6 = _mm256_permute2f128_ps::<0x31>(s2, s6);
        let c7 = _mm256_permute2f128_ps::<0x31>(s3, s7);
        // L1 trees, lanewise: ((v0+v1)+(v2+v3)) + ((v4+v5)+(v6+v7)).
        let a0 = _mm256_add_ps(c0, c1);
        let a1 = _mm256_add_ps(c2, c3);
        let a2 = _mm256_add_ps(c4, c5);
        let a3 = _mm256_add_ps(c6, c7);
        let b0 = _mm256_add_ps(a0, a1);
        let b1 = _mm256_add_ps(a2, a3);
        let t = _mm256_add_ps(b0, b1);
        let mut groups = [0.0f32; TREE_WIDTH];
        _mm256_storeu_ps(groups.as_mut_ptr(), t);
        // The L2 tree over the eight group sums (scalar — 7 adds).
        ((groups[0] + groups[1]) + (groups[2] + groups[3]))
            + ((groups[4] + groups[5]) + (groups[6] + groups[7]))
    }

    /// Hardware-order sum of one full chunk with SSE2: per quad of
    /// groups, transpose the 4 low halves and the 4 high halves (4×4
    /// each), run the tree vertically, and sum low + high per lane.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (the x86-64 baseline); `p` must point at `CHUNK`
    /// readable `f32`s.
    #[inline(always)]
    unsafe fn sse2_chunk(p: *const f32, square: bool) -> f32 {
        // SAFETY: SSE2 shuffle/unpack only, same baseline the enclosing fn requires.
        #[inline(always)]
        unsafe fn transpose4(r0: __m128, r1: __m128, r2: __m128, r3: __m128) -> [__m128; 4] {
            let t0 = _mm_unpacklo_ps(r0, r1);
            let t1 = _mm_unpacklo_ps(r2, r3);
            let t2 = _mm_unpackhi_ps(r0, r1);
            let t3 = _mm_unpackhi_ps(r2, r3);
            [
                _mm_movelh_ps(t0, t1),
                _mm_movehl_ps(t1, t0),
                _mm_movelh_ps(t2, t3),
                _mm_movehl_ps(t3, t2),
            ]
        }
        let mut groups = [0.0f32; TREE_WIDTH];
        for quad in 0..2 {
            let mut lo = [_mm_set1_ps(0.0); 4];
            let mut hi = [_mm_set1_ps(0.0); 4];
            for i in 0..4 {
                let g = quad * 4 + i;
                let l = _mm_loadu_ps(p.add(TREE_WIDTH * g));
                let h = _mm_loadu_ps(p.add(TREE_WIDTH * g + 4));
                lo[i] = if square { _mm_mul_ps(l, l) } else { l };
                hi[i] = if square { _mm_mul_ps(h, h) } else { h };
            }
            let cl = transpose4(lo[0], lo[1], lo[2], lo[3]);
            let ch = transpose4(hi[0], hi[1], hi[2], hi[3]);
            // Lane i = group 4·quad+i: ((v0+v1)+(v2+v3)) + ((v4+v5)+(v6+v7)).
            let lo_sum = _mm_add_ps(_mm_add_ps(cl[0], cl[1]), _mm_add_ps(cl[2], cl[3]));
            let hi_sum = _mm_add_ps(_mm_add_ps(ch[0], ch[1]), _mm_add_ps(ch[2], ch[3]));
            _mm_storeu_ps(
                groups.as_mut_ptr().add(quad * 4),
                _mm_add_ps(lo_sum, hi_sum),
            );
        }
        ((groups[0] + groups[1]) + (groups[2] + groups[3]))
            + ((groups[4] + groups[5]) + (groups[6] + groups[7]))
    }

    /// A chunk-sum primitive, dispatched *statically*: the kernels must
    /// monomorphize and inline into the one `#[target_feature]` entry
    /// point — routing them through a function pointer would outline a
    /// copy without the feature attribute, turning every intrinsic inside
    /// into a real (non-inlined) call.
    trait ChunkSum {
        /// Hardware-order sum of one full 64-element chunk.
        ///
        /// # Safety
        ///
        /// `p` must point at `CHUNK` readable `f32`s, and the caller must
        /// hold the implementation's instruction requirements.
        unsafe fn chunk(p: *const f32, square: bool) -> f32;
    }

    /// Shared hwtree row reduction over a chunk-sum primitive: full
    /// chunks go straight to the kernel, the tail chunk is padded with
    /// `+0.0` (bit-identical, see the module docs), and the partial sums
    /// fold through the scalar engine's own `fold_partials`.
    ///
    /// # Safety
    ///
    /// Requires the `C` kernel's instruction set on the running host.
    #[inline(always)]
    unsafe fn hw_row_sum<C: ChunkSum>(x: &[f32], scratch: &mut Vec<HostF32>, square: bool) -> f32 {
        scratch.clear();
        let mut iter = x.chunks_exact(CHUNK);
        for full in &mut iter {
            scratch.push(HostF32(C::chunk(full.as_ptr(), square)));
        }
        let rem = iter.remainder();
        if !rem.is_empty() {
            let mut buf = [0.0f32; CHUNK];
            buf[..rem.len()].copy_from_slice(rem);
            scratch.push(HostF32(C::chunk(buf.as_ptr(), square)));
        }
        fold_partials(scratch).0
    }

    struct Avx2Chunk;

    impl ChunkSum for Avx2Chunk {
        // SAFETY: forwards to `avx2_chunk`; the caller holds the AVX2+FMA requirement.
        #[inline(always)]
        unsafe fn chunk(p: *const f32, square: bool) -> f32 {
            avx2_chunk(p, square)
        }
    }

    struct Sse2Chunk;

    impl ChunkSum for Sse2Chunk {
        // SAFETY: forwards to `sse2_chunk`; SSE2 is the x86-64 baseline.
        #[inline(always)]
        unsafe fn chunk(p: *const f32, square: bool) -> f32 {
            sse2_chunk(p, square)
        }
    }

    struct Avx2Reduce;

    impl RowReduce for Avx2Reduce {
        // SAFETY: linear path is scalar; hwtree forwards to the AVX2 chunk kernel under the caller’s AVX2+FMA guarantee.
        #[inline(always)]
        unsafe fn sum(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
            match reduce {
                ReduceOrder::Linear => linear_sum_f32(x),
                ReduceOrder::HwTree => hw_row_sum::<Avx2Chunk>(x, scratch, false),
            }
        }

        // SAFETY: linear path is scalar; hwtree forwards to the AVX2 chunk kernel under the caller’s AVX2+FMA guarantee.
        #[inline(always)]
        unsafe fn sum_sq(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
            match reduce {
                ReduceOrder::Linear => linear_sum_sq_f32(x),
                ReduceOrder::HwTree => hw_row_sum::<Avx2Chunk>(x, scratch, true),
            }
        }

        // SAFETY: AVX2 lanewise mul/add/sub only, under the caller’s AVX2 guarantee.
        #[inline(always)]
        unsafe fn iter_scales(
            &self,
            m: &[f32; ROW_LANES],
            steps: u32,
            sqrt_d: f32,
            scales: &mut [f32; ROW_LANES],
        ) {
            let (a, lam) = seed_lanes(m);
            let mv = _mm256_loadu_ps(m.as_ptr());
            let lv = _mm256_loadu_ps(lam.as_ptr());
            let mut av = _mm256_loadu_ps(a.as_ptr());
            let one = _mm256_set1_ps(1.0);
            // normlint: kernel-begin
            for _ in 0..steps {
                // `UpdateStyle::Separate`, one row per lane: explicit
                // mul/sub/mul/mul then add — never an FMA, so the
                // rounding sequence matches the scalar update exactly.
                let t1 = _mm256_mul_ps(mv, av);
                let t2 = _mm256_mul_ps(t1, av);
                let t3 = _mm256_sub_ps(one, t2);
                let t4 = _mm256_mul_ps(lv, t1);
                av = _mm256_add_ps(av, _mm256_mul_ps(t4, t3));
            }
            // normlint: kernel-end
            av = _mm256_mul_ps(av, _mm256_set1_ps(sqrt_d));
            _mm256_storeu_ps(scales.as_mut_ptr(), av);
        }
    }

    struct Sse2Reduce;

    impl RowReduce for Sse2Reduce {
        // SAFETY: linear path is scalar; hwtree forwards to the SSE2 chunk kernel (x86-64 baseline).
        #[inline(always)]
        unsafe fn sum(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
            match reduce {
                ReduceOrder::Linear => linear_sum_f32(x),
                ReduceOrder::HwTree => hw_row_sum::<Sse2Chunk>(x, scratch, false),
            }
        }

        // SAFETY: linear path is scalar; hwtree forwards to the SSE2 chunk kernel (x86-64 baseline).
        #[inline(always)]
        unsafe fn sum_sq(&self, x: &[f32], scratch: &mut Vec<HostF32>, reduce: ReduceOrder) -> f32 {
            match reduce {
                ReduceOrder::Linear => linear_sum_sq_f32(x),
                ReduceOrder::HwTree => hw_row_sum::<Sse2Chunk>(x, scratch, true),
            }
        }

        // SAFETY: SSE2 lanewise ops only (x86-64 baseline).
        #[inline(always)]
        unsafe fn iter_scales(
            &self,
            m: &[f32; ROW_LANES],
            steps: u32,
            sqrt_d: f32,
            scales: &mut [f32; ROW_LANES],
        ) {
            let (a, lam) = seed_lanes(m);
            // 8-row blocks as two 4-lane registers: 4 independent rows
            // per register, same lanewise operation order.
            let one = _mm_set1_ps(1.0);
            let sd = _mm_set1_ps(sqrt_d);
            for half in 0..2 {
                let off = half * 4;
                let mv = _mm_loadu_ps(m.as_ptr().add(off));
                let lv = _mm_loadu_ps(lam.as_ptr().add(off));
                let mut av = _mm_loadu_ps(a.as_ptr().add(off));
                // normlint: kernel-begin
                for _ in 0..steps {
                    let t1 = _mm_mul_ps(mv, av);
                    let t2 = _mm_mul_ps(t1, av);
                    let t3 = _mm_sub_ps(one, t2);
                    let t4 = _mm_mul_ps(lv, t1);
                    av = _mm_add_ps(av, _mm_mul_ps(t4, t3));
                }
                // normlint: kernel-end
                _mm_storeu_ps(scales.as_mut_ptr().add(off), _mm_mul_ps(av, sd));
            }
        }
    }

    /// Per-lane seed `a₀` and rate λ from the exponent-field bit rules —
    /// scalar bit arithmetic, shared by both x86 iteration kernels.
    #[inline(always)]
    fn seed_lanes(m: &[f32; ROW_LANES]) -> ([f32; ROW_LANES], [f32; ROW_LANES]) {
        let mut a = [0.0f32; ROW_LANES];
        let mut lam = [0.0f32; ROW_LANES];
        for l in 0..ROW_LANES {
            a[l] = a0_from_exponent(HostF32(m[l])).0;
            lam[l] = lambda_from_exponent(HostF32(m[l])).0;
        }
        (a, lam)
    }

    /// AVX2+FMA entry: the whole block pipeline compiles inside this
    /// `target_feature` context, so the elementwise stages autovectorize
    /// at 8 lanes too (lanewise ops — bit-safe under any width).
    ///
    /// # Safety
    ///
    /// The host must support AVX2 and FMA; shapes per
    /// [`process_block_rows`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn process_rows_avx2(ctx: &RowCtx<'_>, x: &[f32], o: &mut [f32]) {
        process_block_rows(&Avx2Reduce, ctx, x, o);
    }

    /// SSE2 entry (the x86-64 floor — every x86-64 host runs this).
    ///
    /// # Safety
    ///
    /// The host must support SSE2 (always true on x86-64); shapes per
    /// [`process_block_rows`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn process_rows_sse2(ctx: &RowCtx<'_>, x: &[f32], o: &mut [f32]) {
        process_block_rows(&Sse2Reduce, ctx, x, o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::Float;

    #[test]
    fn level_parsing_round_trips_case_insensitively() {
        for level in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
            assert_eq!(
                SimdLevel::parse(level.name().to_uppercase().as_str()),
                Some(level)
            );
            assert_eq!(level.to_string(), level.name());
        }
        assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
        for text in ["", "avx512", "sse", "neon", " auto", "auto "] {
            assert_eq!(SimdLevel::parse(text), None, "{text:?} must be rejected");
        }
        assert_eq!(SimdLevel::default(), SimdLevel::Auto);
    }

    #[test]
    fn auto_always_resolves() {
        // Auto must never error, on either backend kind.
        assert!(resolve(SimdLevel::Auto, BackendKind::Native)
            .unwrap()
            .is_some());
        assert!(resolve(SimdLevel::Auto, BackendKind::Emulated)
            .unwrap()
            .is_none());
        assert!(resolve(SimdLevel::Scalar, BackendKind::Native)
            .unwrap()
            .is_none());
    }

    #[test]
    fn emulated_rejects_forced_vector_levels() {
        for level in [SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2] {
            assert_eq!(
                resolve(level, BackendKind::Emulated).unwrap_err(),
                NormError::SimdUnsupported {
                    level: level.name(),
                    backend: "emulated",
                }
            );
        }
    }

    #[test]
    fn resolved_kernels_report_their_own_level() {
        assert_eq!(SimdKernel::Portable.level(), SimdLevel::Portable);
        assert_eq!(SimdKernel::Sse2.level(), SimdLevel::Sse2);
        assert_eq!(SimdKernel::Avx2.level(), SimdLevel::Avx2);
    }

    #[test]
    fn portable_chunk_matches_scalar_hworder_bitwise() {
        use crate::hworder::chunk_sum;
        // Every chunk length (remainder straddling both tree levels),
        // rounding-sensitive values, ±0 and subnormals.
        for len in [1usize, 2, 7, 8, 9, 15, 16, 17, 33, 63, 64] {
            let vals: Vec<f32> = (0..len)
                .map(|i| {
                    let base = ((i * 37 + 11) % 101) as f32 / 17.0 - 2.0;
                    if i % 9 == 0 {
                        -0.0
                    } else if i % 7 == 0 {
                        f32::from_bits(i as u32 + 1) // subnormal
                    } else {
                        base + (i as f32) * 5.0e-8
                    }
                })
                .collect();
            let host: Vec<HostF32> = vals.iter().map(|&v| HostF32(v)).collect();
            assert_eq!(
                portable_chunk(&vals, false).to_bits(),
                chunk_sum(&host).0.to_bits(),
                "sum len {len}"
            );
            let squared: Vec<HostF32> = host.iter().map(|&v| v * v).collect();
            assert_eq!(
                portable_chunk(&vals, true).to_bits(),
                chunk_sum(&squared).0.to_bits(),
                "sum_sq len {len}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_kernels_match_portable_reduction_bitwise() {
        // The transpose kernels must equal the portable (== scalar) chunk
        // reduction for every row length, including padded tails.
        for d in [1usize, 7, 8, 9, 63, 64, 65, 127, 129, 384, 500] {
            let vals: Vec<f32> = (0..d)
                .map(|i| ((i * 73 + 5) % 251) as f32 / 41.0 - 3.0 + (i as f32) * 3.0e-8)
                .collect();
            let mut scratch = Vec::new();
            for square in [false, true] {
                // SAFETY: PortableReduce and Sse2-on-x86-64 have no
                // instruction requirements beyond the baseline.
                let want = unsafe {
                    if square {
                        PortableReduce.sum_sq(&vals, &mut scratch, ReduceOrder::HwTree)
                    } else {
                        PortableReduce.sum(&vals, &mut scratch, ReduceOrder::HwTree)
                    }
                };
                for kernel in [SimdKernel::Sse2, SimdKernel::Avx2] {
                    if kernel == SimdKernel::Avx2 && !host_has_avx2_fma() {
                        eprintln!("skipping avx2 reduction check: host lacks avx2+fma");
                        continue;
                    }
                    let simd = SimdNative {
                        kernel,
                        iter_steps: Some(5),
                        gamma: None,
                        beta: None,
                    };
                    // Drive one full row through the batch path and
                    // compare against the scalar engine instead of
                    // poking kernel internals.
                    let plan = NormPlan::<HostF32>::new(d).unwrap();
                    let spec = crate::engine::MethodSpec::iterl2(5);
                    let method = spec.build::<HostF32>();
                    let bits: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
                    let mut out_simd = vec![0u32; d];
                    simd.normalize_batch(&plan, &method, &bits, &mut out_simd, 1)
                        .unwrap();
                    let mut engine =
                        crate::engine::Normalizer::for_plan(spec.build::<HostF32>(), &plan);
                    let decoded: Vec<HostF32> =
                        bits.iter().map(|&b| HostF32::from_bits(b)).collect();
                    let mut out_scalar = vec![HostF32(0.0); d];
                    engine
                        .normalize_batch(&plan, &decoded, &mut out_scalar)
                        .unwrap();
                    let scalar_bits: Vec<u32> = out_scalar.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(out_simd, scalar_bits, "kernel {kernel:?} d {d}");
                    let _ = want; // reduction equality is subsumed by the row check
                }
            }
        }
    }
}
