//! The batch-first normalization engine: plan once, normalize many.
//!
//! The one-vector-at-a-time [`layer_norm`](crate::layer_norm) entry point
//! allocates two fresh `Vec`s per call and re-rounds `d⁻¹`/`√d` into the
//! format on every invocation — fine for experiments, fatal for the
//! production-scale serving path the ROADMAP targets. This module splits
//! the work the way the hardware macro does:
//!
//! * [`NormPlan`] — everything that depends only on the layer *shape*:
//!   `d`, the format-rounded constants `d⁻¹` and `√d`, the reduction
//!   order, and (optionally) owned, length-validated γ/β. Built once per
//!   layer, reused forever.
//! * [`Normalizer`] — the execution engine: owns the reduction scratch
//!   buffer and exposes [`normalize_into`](Normalizer::normalize_into)
//!   (caller-provided output row), [`normalize_in_place`](Normalizer::normalize_in_place)
//!   and [`normalize_batch`](Normalizer::normalize_batch) /
//!   [`normalize_batch_in_place`](Normalizer::normalize_batch_in_place)
//!   over row-major matrices with stride `d`. After construction the hot
//!   path performs **zero heap allocations** (verified by
//!   `tests/engine_no_alloc.rs`).
//! * [`ScaleMethod`] / [`MethodSpec`] — the single registry of scale
//!   methods. Callers that used to re-implement the same
//!   IterL2Norm/FISR/Exact/LUT match arms (the transformer's norm layer,
//!   the experiment harness, the CLI) now build a [`MethodSpec`] and let
//!   [`MethodSpec::build`] materialize it for a format.
//!
//! Large batches can additionally be partitioned across scoped worker
//! threads with [`normalize_batch_parallel`](Normalizer::normalize_batch_parallel)
//! / [`normalize_batch_parallel_in_place`](Normalizer::normalize_batch_parallel_in_place):
//! contiguous row runs per worker, per-worker scratch, and per-row output
//! bits that do not depend on the thread count.
//!
//! The engine is generic over [`Float`], which is also where execution
//! *backends* plug in: driving it with [`softfloat::HostF32`] (host `f32`)
//! instead of `Fp32` runs the identical operation sequence on the CPU's
//! own FPU — bit-identical output at native speed, the
//! [`backend`](crate::backend) module's fast path. FP16 and BF16 have no
//! host equivalent and always execute through the softfloat emulator.
//!
//! Every row the engine produces is bit-identical to the corresponding
//! [`layer_norm`](crate::layer_norm) call — same operation order, same
//! pre-rounded constants — so plans can be introduced anywhere without
//! perturbing a single ulp (see `tests/engine_consistency.rs`).
//!
//! # Example
//!
//! ```
//! use iterl2norm::{MethodSpec, NormPlan, Normalizer};
//! use softfloat::{Float, Fp32};
//!
//! # fn main() -> Result<(), iterl2norm::NormError> {
//! let d = 64;
//! let plan = NormPlan::<Fp32>::new(d)?;
//! let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
//!
//! // A row-major batch of 8 activation rows, normalized in one call.
//! let batch: Vec<Fp32> = (0..8 * d)
//!     .map(|i| Fp32::from_f64((i as f64 * 0.37).sin()))
//!     .collect();
//! let mut out = vec![Fp32::ZERO; batch.len()];
//! let rows = engine.normalize_batch(&plan, &batch, &mut out)?;
//! assert_eq!(rows, 8);
//! # Ok(())
//! # }
//! ```

use softfloat::Float;
use std::sync::{Mutex, PoisonError};

/// One worker's pre-split slice pair, parked behind its own mutex so a
/// shared `Fn(usize)` can hand out `&mut` output runs without unsafe.
pub(crate) type PartChunk<'a, F> = Mutex<Option<(&'a [F], &'a mut [F])>>;

use crate::baselines::{ExactRsqrtNorm, Fisr, LutRsqrt};
use crate::error::NormError;
use crate::hworder::ReduceOrder;
use crate::iteration::IterL2Norm;
use crate::layernorm::{
    normalize_row_in_place, normalize_row_into, DimConsts, NormStats, RowParams, RsqrtScale,
};

/// Precomputed per-shape state of one normalization layer: the
/// format-rounded constants `d⁻¹` and `√d`, the reduction order, and
/// optional owned affine parameters whose lengths were validated at build
/// time. Everything per-call code used to recompute or recheck.
///
/// # Examples
///
/// ```
/// use iterl2norm::{NormPlan, ReduceOrder};
/// use softfloat::{Float, Fp32};
///
/// # fn main() -> Result<(), iterl2norm::NormError> {
/// let gamma = vec![Fp32::ONE; 768];
/// let beta = vec![Fp32::ZERO; 768];
/// let plan = NormPlan::new(768)?
///     .with_reduce(ReduceOrder::Linear)
///     .with_affine(&gamma, &beta)?;
/// assert_eq!(plan.d(), 768);
/// assert_eq!(plan.sqrt_d().to_f64(), (768f64).sqrt() as f32 as f64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NormPlan<F> {
    dims: DimConsts<F>,
    reduce: ReduceOrder,
    gamma: Option<Vec<F>>,
    beta: Option<Vec<F>>,
}

impl<F: Float> NormPlan<F> {
    /// Plan for vectors of length `d` with the default (hardware-tree)
    /// reduction order and no affine parameters.
    ///
    /// # Errors
    ///
    /// [`NormError::EmptyInput`] if `d == 0`.
    pub fn new(d: usize) -> Result<Self, NormError> {
        if d == 0 {
            return Err(NormError::EmptyInput);
        }
        Ok(NormPlan {
            dims: DimConsts::new(d),
            reduce: ReduceOrder::default(),
            gamma: None,
            beta: None,
        })
    }

    /// Same plan with a different reduction order.
    pub fn with_reduce(mut self, reduce: ReduceOrder) -> Self {
        self.reduce = reduce;
        self
    }

    /// Same plan with owned per-element scale γ.
    ///
    /// # Errors
    ///
    /// [`NormError::GammaLengthMismatch`] when `gamma.len() != d`.
    pub fn with_gamma(mut self, gamma: &[F]) -> Result<Self, NormError> {
        if gamma.len() != self.dims.d {
            return Err(NormError::GammaLengthMismatch {
                expected: self.dims.d,
                actual: gamma.len(),
            });
        }
        self.gamma = Some(gamma.to_vec());
        Ok(self)
    }

    /// Same plan with owned per-element shift β.
    ///
    /// # Errors
    ///
    /// [`NormError::BetaLengthMismatch`] when `beta.len() != d`.
    pub fn with_beta(mut self, beta: &[F]) -> Result<Self, NormError> {
        if beta.len() != self.dims.d {
            return Err(NormError::BetaLengthMismatch {
                expected: self.dims.d,
                actual: beta.len(),
            });
        }
        self.beta = Some(beta.to_vec());
        Ok(self)
    }

    /// Same plan with both affine parameters (the full Algorithm 1).
    ///
    /// # Errors
    ///
    /// The length-mismatch variants when either slice disagrees with `d`.
    pub fn with_affine(self, gamma: &[F], beta: &[F]) -> Result<Self, NormError> {
        self.with_gamma(gamma)?.with_beta(beta)
    }

    /// The vector length `d`.
    pub fn d(&self) -> usize {
        self.dims.d
    }

    /// The precomputed format-rounded constants.
    pub fn dims(&self) -> &DimConsts<F> {
        &self.dims
    }

    /// `d⁻¹` rounded to the format.
    pub fn inv_d(&self) -> F {
        self.dims.inv_d
    }

    /// `√d` rounded to the format.
    pub fn sqrt_d(&self) -> F {
        self.dims.sqrt_d
    }

    /// The reduction order for the mean and `m` computations.
    pub fn reduce(&self) -> ReduceOrder {
        self.reduce
    }

    /// The validated γ, if any.
    pub fn gamma(&self) -> Option<&[F]> {
        self.gamma.as_deref()
    }

    /// The validated β, if any.
    pub fn beta(&self) -> Option<&[F]> {
        self.beta.as_deref()
    }

    /// Number of `d`-length rows in a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// [`NormError::BatchLengthMismatch`] when `len` is not a multiple of
    /// `d`.
    pub fn rows_of(&self, len: usize) -> Result<usize, NormError> {
        let d = self.dims.d;
        if !len.is_multiple_of(d) {
            return Err(NormError::BatchLengthMismatch {
                rows: len / d,
                d,
                actual: len,
            });
        }
        Ok(len / d)
    }

    /// Borrowed view of this plan for the row pipeline.
    pub(crate) fn params(&self) -> RowParams<'_, F> {
        RowParams {
            dims: &self.dims,
            reduce: self.reduce,
            gamma: self.gamma.as_deref(),
            beta: self.beta.as_deref(),
        }
    }
}

/// The closed registry of scale-factor methods: the paper's IterL2Norm and
/// the three baselines it is evaluated against. One `match` lives here —
/// the transformer, the experiment harness and the CLI all dispatch
/// through this enum (or through a `&dyn RsqrtScale<F>`; the trait is
/// object-safe) instead of re-implementing the arms.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleMethod {
    /// The paper's scalar fixed-point iteration.
    IterL2(IterL2Norm),
    /// Fast inverse square root (magic constant + Newton steps).
    Fisr(Fisr),
    /// Exact in-format `1/√(σ² + ε)` (the costly baseline).
    Exact(ExactRsqrtNorm),
    /// Piecewise-linear lookup-table `1/√x`.
    Lut(LutRsqrt),
}

impl ScaleMethod {
    /// Short label for reports, including the method's main parameter
    /// (e.g. `"iterl2[5]"`, `"fisr[1]"`, `"exact[1e-5]"`, `"lut[64]"`).
    pub fn label(&self) -> String {
        match self {
            ScaleMethod::IterL2(norm) => match norm.config.stop {
                crate::StopRule::FixedSteps(n) => format!("iterl2[{n}]"),
                _ => "iterl2[adaptive]".to_string(),
            },
            ScaleMethod::Fisr(fisr) => format!("fisr[{}]", fisr.newton_steps),
            ScaleMethod::Exact(exact) => format!("exact[{:.0e}]", exact.eps),
            ScaleMethod::Lut(lut) => format!("lut[{}]", lut.segments()),
        }
    }
}

impl<F: Float> RsqrtScale<F> for ScaleMethod {
    fn scale_with(&self, m: F, dims: &DimConsts<F>) -> F {
        match self {
            ScaleMethod::IterL2(norm) => norm.scale_with(m, dims),
            ScaleMethod::Fisr(fisr) => fisr.scale_with(m, dims),
            ScaleMethod::Exact(exact) => exact.scale_with(m, dims),
            ScaleMethod::Lut(lut) => RsqrtScale::<F>::scale_with(lut, m, dims),
        }
    }

    fn method_name(&self) -> &'static str {
        match self {
            ScaleMethod::IterL2(norm) => RsqrtScale::<F>::method_name(norm),
            ScaleMethod::Fisr(fisr) => RsqrtScale::<F>::method_name(fisr),
            ScaleMethod::Exact(exact) => RsqrtScale::<F>::method_name(exact),
            ScaleMethod::Lut(lut) => RsqrtScale::<F>::method_name(lut),
        }
    }
}

/// Format-agnostic description of a [`ScaleMethod`]: what a config file,
/// CLI flag or experiment table names before a float format is chosen.
/// [`MethodSpec::build`] materializes it for a format (the FISR magic
/// constant, for instance, is format-specific).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// IterL2Norm with a fixed step count.
    IterL2 {
        /// Iteration steps `n_c` (the paper uses 5).
        steps: u32,
    },
    /// FISR with the canonical per-format magic constant.
    Fisr {
        /// Newton–Raphson polish steps (the original uses 1).
        newton: u32,
    },
    /// Exact in-format reciprocal square root.
    Exact {
        /// ε added to the variance (PyTorch's LayerNorm uses 1e−5).
        eps: f64,
    },
    /// LUT reciprocal square root.
    Lut {
        /// Piecewise-linear segments over `w ∈ [1, 4)`.
        segments: usize,
    },
}

impl MethodSpec {
    /// The default registry: one entry per method family with the paper's
    /// parameters. This is what sweeps and `--method` style interfaces
    /// enumerate.
    pub const REGISTRY: [MethodSpec; 4] = [
        MethodSpec::IterL2 { steps: 5 },
        MethodSpec::Fisr { newton: 1 },
        MethodSpec::Exact { eps: 1e-5 },
        MethodSpec::Lut { segments: 64 },
    ];

    /// IterL2Norm with `steps` iteration steps.
    pub fn iterl2(steps: u32) -> Self {
        MethodSpec::IterL2 { steps }
    }

    /// The family name (`"iterl2"`, `"fisr"`, `"exact"`, `"lut"`).
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::IterL2 { .. } => "iterl2",
            MethodSpec::Fisr { .. } => "fisr",
            MethodSpec::Exact { .. } => "exact",
            MethodSpec::Lut { .. } => "lut",
        }
    }

    /// Parse a method name, optionally with a `:parameter` suffix
    /// (`"iterl2"`, `"iterl2:7"`, `"fisr:2"`, `"exact:0"`, `"lut:128"`).
    /// Returns `None` for unknown names or unparsable parameters.
    pub fn parse(text: &str) -> Option<Self> {
        let (name, param) = match text.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (text, None),
        };
        let spec = match name {
            "iterl2" | "iterl2norm" => MethodSpec::IterL2 {
                steps: param.map_or(Ok(5), str::parse).ok()?,
            },
            "fisr" => MethodSpec::Fisr {
                newton: param.map_or(Ok(1), str::parse).ok()?,
            },
            "exact" | "baseline" => MethodSpec::Exact {
                // A negative ε would make every output NaN (sqrt of a
                // negative variance); reject it like lut:0 below.
                eps: param
                    .map_or(Ok(1e-5), str::parse)
                    .ok()
                    .filter(|e: &f64| e.is_finite() && *e >= 0.0)?,
            },
            "lut" => MethodSpec::Lut {
                // 0 segments would panic in LutRsqrt::new; reject it here
                // so parsed user input can never crash the build step.
                segments: param.map_or(Ok(64), str::parse).ok().filter(|&s| s > 0)?,
            },
            _ => return None,
        };
        Some(spec)
    }

    /// Short label for reports (matches [`ScaleMethod::label`]).
    pub fn label(&self) -> String {
        match self {
            MethodSpec::IterL2 { steps } => format!("iterl2[{steps}]"),
            MethodSpec::Fisr { newton } => format!("fisr[{newton}]"),
            MethodSpec::Exact { eps } => format!("exact[{eps:.0e}]"),
            MethodSpec::Lut { segments } => format!("lut[{segments}]"),
        }
    }

    /// Materialize the method for format `F` (FISR picks the canonical
    /// magic constant of the format; the LUT table is precomputed here,
    /// off the hot path).
    ///
    /// The returned [`ScaleMethod`] implements `RsqrtScale<F>` for *every*
    /// format, but a FISR built here carries `F`-specific state (the magic
    /// constant), so drive it with the same format it was built for —
    /// mixing formats silently degrades the FISR approximation. This
    /// mirrors the long-standing contract of `Fisr::canonical::<F>()`
    /// itself; the other methods are format-agnostic.
    pub fn build<F: Float>(&self) -> ScaleMethod {
        match *self {
            MethodSpec::IterL2 { steps } => ScaleMethod::IterL2(IterL2Norm::with_steps(steps)),
            MethodSpec::Fisr { newton } => ScaleMethod::Fisr(Fisr::with_newton_steps::<F>(newton)),
            MethodSpec::Exact { eps } => ScaleMethod::Exact(ExactRsqrtNorm { eps }),
            MethodSpec::Lut { segments } => ScaleMethod::Lut(LutRsqrt::new(segments)),
        }
    }
}

/// The reusable normalization engine: a scale method plus the scratch
/// buffer the hardware-order reductions need. One `Normalizer` serves any
/// number of plans; keep it `mut` and feed it rows.
///
/// The method slot is generic (default [`ScaleMethod`]) so the experiment
/// harness can drive the engine with any `S: RsqrtScale<F>` — including a
/// borrowed `&dyn RsqrtScale<F>` — without a required enum round-trip.
///
/// After [`Normalizer::for_plan`] sizes the scratch, the normalize calls
/// allocate nothing (see `tests/engine_no_alloc.rs`).
#[derive(Debug, Clone)]
pub struct Normalizer<F, S = ScaleMethod> {
    method: S,
    partials: Vec<F>,
}

impl<F: Float> Normalizer<F> {
    /// Engine for a registry entry, materialized for format `F`.
    pub fn from_spec(spec: &MethodSpec) -> Self {
        Self::with_method(spec.build::<F>())
    }
}

impl<F: Float, S: RsqrtScale<F>> Normalizer<F, S> {
    /// Engine with empty scratch (grows on first use).
    pub fn with_method(method: S) -> Self {
        Normalizer {
            method,
            partials: Vec::new(),
        }
    }

    /// Engine with scratch pre-sized for `plan`, so the very first
    /// normalize call is already allocation-free.
    pub fn for_plan(method: S, plan: &NormPlan<F>) -> Self {
        Normalizer {
            method,
            partials: Vec::with_capacity(partials_capacity(plan.d())),
        }
    }

    /// The scale method.
    pub fn method(&self) -> &S {
        &self.method
    }

    /// The method's report name.
    pub fn method_name(&self) -> &'static str {
        self.method.method_name()
    }

    /// Normalize one `d`-length row of `x` into `out` (Algorithm 1 with
    /// this engine's scale method and the plan's constants and affine
    /// parameters), returning the scalar intermediates.
    ///
    /// # Errors
    ///
    /// Length-mismatch variants when `x` or `out` disagree with the plan.
    pub fn normalize_into(
        &mut self,
        plan: &NormPlan<F>,
        x: &[F],
        out: &mut [F],
    ) -> Result<NormStats<F>, NormError> {
        if x.len() != plan.d() {
            return Err(NormError::InputLengthMismatch {
                expected: plan.d(),
                actual: x.len(),
            });
        }
        if out.len() != plan.d() {
            return Err(NormError::OutputLengthMismatch {
                expected: plan.d(),
                actual: out.len(),
            });
        }
        Ok(normalize_row_into(
            x,
            out,
            &plan.params(),
            &self.method,
            &mut self.partials,
        ))
    }

    /// Normalize one `d`-length row in place.
    ///
    /// # Errors
    ///
    /// [`NormError::InputLengthMismatch`] when the row disagrees with the
    /// plan.
    pub fn normalize_in_place(
        &mut self,
        plan: &NormPlan<F>,
        row: &mut [F],
    ) -> Result<NormStats<F>, NormError> {
        if row.len() != plan.d() {
            return Err(NormError::InputLengthMismatch {
                expected: plan.d(),
                actual: row.len(),
            });
        }
        Ok(normalize_row_in_place(
            row,
            &plan.params(),
            &self.method,
            &mut self.partials,
        ))
    }

    /// Normalize a row-major batch (`rows × d`, stride `d`) from `input`
    /// into `out`, returning the number of rows processed. Every output
    /// row is bit-identical to the corresponding single-row call.
    ///
    /// # Errors
    ///
    /// [`NormError::BatchLengthMismatch`] when `input` is not whole rows,
    /// [`NormError::OutputLengthMismatch`] when `out` differs in length.
    pub fn normalize_batch(
        &mut self,
        plan: &NormPlan<F>,
        input: &[F],
        out: &mut [F],
    ) -> Result<usize, NormError> {
        let rows = plan.rows_of(input.len())?;
        if out.len() != input.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: input.len(),
                actual: out.len(),
            });
        }
        let d = plan.d();
        let params = plan.params();
        for (x_row, out_row) in input.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
            normalize_row_into(x_row, out_row, &params, &self.method, &mut self.partials);
        }
        Ok(rows)
    }

    /// Normalize a row-major batch in place, returning the number of rows.
    ///
    /// # Errors
    ///
    /// [`NormError::BatchLengthMismatch`] when `data` is not whole rows.
    pub fn normalize_batch_in_place(
        &mut self,
        plan: &NormPlan<F>,
        data: &mut [F],
    ) -> Result<usize, NormError> {
        let rows = plan.rows_of(data.len())?;
        let d = plan.d();
        let params = plan.params();
        for row in data.chunks_exact_mut(d) {
            normalize_row_in_place(row, &params, &self.method, &mut self.partials);
        }
        Ok(rows)
    }
}

impl<F: Float, S: RsqrtScale<F> + Sync> Normalizer<F, S> {
    /// [`normalize_batch`](Normalizer::normalize_batch) partitioned across
    /// up to `threads` scoped worker threads.
    ///
    /// Rows are split into contiguous runs — the first `rows % workers`
    /// workers take one extra row — and every worker owns its own
    /// partial-sum scratch, so the per-row pipeline still performs zero
    /// heap allocations and every output row is **bit-identical** to the
    /// serial call for any thread count (rows are independent; the
    /// reduction order inside a row never changes). `threads == 1`, or a
    /// batch of at most one row, falls through to the serial path and
    /// reuses this engine's scratch.
    ///
    /// # Errors
    ///
    /// [`NormError::ZeroThreads`] when `threads == 0`, plus the shape
    /// errors of [`normalize_batch`](Normalizer::normalize_batch).
    pub fn normalize_batch_parallel(
        &mut self,
        plan: &NormPlan<F>,
        input: &[F],
        out: &mut [F],
        threads: usize,
    ) -> Result<usize, NormError> {
        if threads == 0 {
            return Err(NormError::ZeroThreads);
        }
        let rows = plan.rows_of(input.len())?;
        if out.len() != input.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: input.len(),
                actual: out.len(),
            });
        }
        let workers = threads.min(rows);
        if workers <= 1 {
            return self.normalize_batch(plan, input, out);
        }
        let d = plan.d();
        let params = plan.params();
        let method = &self.method;
        std::thread::scope(|scope| {
            let mut in_rest = input;
            let mut out_rest = &mut *out;
            for wi in 0..workers {
                let take = worker_rows(rows, workers, wi) * d;
                let (in_chunk, in_tail) = in_rest.split_at(take);
                let (out_chunk, out_tail) = out_rest.split_at_mut(take);
                in_rest = in_tail;
                out_rest = out_tail;
                let params = &params;
                scope.spawn(move || {
                    let mut partials = Vec::with_capacity(partials_capacity(d));
                    for (x_row, out_row) in
                        in_chunk.chunks_exact(d).zip(out_chunk.chunks_exact_mut(d))
                    {
                        normalize_row_into(x_row, out_row, params, method, &mut partials);
                    }
                });
            }
        });
        Ok(rows)
    }

    /// [`normalize_batch_in_place`](Normalizer::normalize_batch_in_place)
    /// partitioned across up to `threads` scoped worker threads, with the
    /// same bit-identity guarantee as
    /// [`normalize_batch_parallel`](Normalizer::normalize_batch_parallel).
    ///
    /// # Errors
    ///
    /// [`NormError::ZeroThreads`] when `threads == 0`,
    /// [`NormError::BatchLengthMismatch`] when `data` is not whole rows.
    pub fn normalize_batch_parallel_in_place(
        &mut self,
        plan: &NormPlan<F>,
        data: &mut [F],
        threads: usize,
    ) -> Result<usize, NormError> {
        if threads == 0 {
            return Err(NormError::ZeroThreads);
        }
        let rows = plan.rows_of(data.len())?;
        let workers = threads.min(rows);
        if workers <= 1 {
            return self.normalize_batch_in_place(plan, data);
        }
        let d = plan.d();
        let params = plan.params();
        let method = &self.method;
        std::thread::scope(|scope| {
            let mut rest = data;
            for wi in 0..workers {
                let take = worker_rows(rows, workers, wi) * d;
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let params = &params;
                scope.spawn(move || {
                    let mut partials = Vec::with_capacity(partials_capacity(d));
                    for row in chunk.chunks_exact_mut(d) {
                        normalize_row_in_place(row, params, method, &mut partials);
                    }
                });
            }
        });
        Ok(rows)
    }

    /// [`normalize_batch_parallel`](Normalizer::normalize_batch_parallel)
    /// over an injected execution vehicle: the same contiguous
    /// `worker_rows` partition, but the parts run on whatever
    /// [`PartitionRunner`](crate::executor::PartitionRunner) supplies —
    /// the resident per-shard pool in the
    /// serving path, scoped threads or the serial loop elsewhere. The
    /// split depends only on `runner.width()`, so output bits are
    /// identical to the scoped path at `threads = width` (and to the
    /// serial path, as ever).
    ///
    /// # Errors
    ///
    /// The shape errors of [`normalize_batch`](Normalizer::normalize_batch).
    pub fn normalize_batch_runner(
        &mut self,
        plan: &NormPlan<F>,
        input: &[F],
        out: &mut [F],
        runner: &dyn crate::executor::PartitionRunner,
    ) -> Result<usize, NormError> {
        let rows = plan.rows_of(input.len())?;
        if out.len() != input.len() {
            return Err(NormError::OutputLengthMismatch {
                expected: input.len(),
                actual: out.len(),
            });
        }
        let workers = runner.width().min(rows);
        if workers <= 1 {
            return self.normalize_batch(plan, input, out);
        }
        let d = plan.d();
        let params = plan.params();
        let method = &self.method;
        // Pre-split into disjoint per-part chunks; each part takes its
        // chunk out of its own (uncontended) mutex, which is what lets a
        // `Fn(usize)` shared across workers hand out `&mut` output runs
        // without unsafe.
        let mut chunks: Vec<PartChunk<'_, F>> = Vec::with_capacity(workers);
        let mut in_rest = input;
        let mut out_rest = &mut *out;
        for wi in 0..workers {
            let take = worker_rows(rows, workers, wi) * d;
            let (in_chunk, in_tail) = in_rest.split_at(take);
            let (out_chunk, out_tail) = out_rest.split_at_mut(take);
            in_rest = in_tail;
            out_rest = out_tail;
            chunks.push(Mutex::new(Some((in_chunk, out_chunk))));
        }
        runner.run(workers, &|wi| {
            let taken = chunks[wi]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            let Some((in_chunk, out_chunk)) = taken else {
                return;
            };
            let mut partials = Vec::with_capacity(partials_capacity(d));
            for (x_row, out_row) in in_chunk.chunks_exact(d).zip(out_chunk.chunks_exact_mut(d)) {
                normalize_row_into(x_row, out_row, &params, method, &mut partials);
            }
        });
        Ok(rows)
    }
}

/// Scratch capacity the hardware-tree reduction needs for vectors of
/// length `d`: one partial sum per 64-element chunk.
fn partials_capacity(d: usize) -> usize {
    d.div_ceil(crate::hworder::CHUNK)
}

/// Rows assigned to worker `wi` when `rows` are split into contiguous
/// runs across `workers` workers: the first `rows % workers` workers take
/// one extra row. Shared by the scalar parallel paths above and the SIMD
/// batch driver, so every execution tier partitions identically and
/// per-row output bits never depend on the thread count.
pub(crate) fn worker_rows(rows: usize, workers: usize, wi: usize) -> usize {
    rows / workers + usize::from(wi < rows % workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layernorm::{layer_norm, LayerNormInputs};
    use softfloat::{Fp16, Fp32};

    fn sample_row(d: usize, salt: u64) -> Vec<Fp32> {
        (0..d)
            .map(|i| Fp32::from_f64((((i as u64 * 2654435761 + salt) % 1000) as f64) / 250.0 - 2.0))
            .collect()
    }

    #[test]
    fn plan_rejects_zero_dimension() {
        assert_eq!(NormPlan::<Fp32>::new(0).unwrap_err(), NormError::EmptyInput);
    }

    #[test]
    fn plan_validates_affine_lengths_at_build_time() {
        let plan = NormPlan::<Fp32>::new(4).unwrap();
        let short = vec![Fp32::ONE; 3];
        let full = vec![Fp32::ONE; 4];
        assert_eq!(
            plan.clone().with_gamma(&short).unwrap_err(),
            NormError::GammaLengthMismatch {
                expected: 4,
                actual: 3
            }
        );
        assert_eq!(
            plan.clone().with_beta(&short).unwrap_err(),
            NormError::BetaLengthMismatch {
                expected: 4,
                actual: 3
            }
        );
        let ok = plan.with_affine(&full, &full).unwrap();
        assert_eq!(ok.gamma().unwrap().len(), 4);
        assert_eq!(ok.beta().unwrap().len(), 4);
    }

    #[test]
    fn plan_constants_match_per_call_rounding() {
        for d in [1usize, 5, 64, 384, 768, 4096] {
            let plan = NormPlan::<Fp16>::new(d).unwrap();
            assert_eq!(
                plan.inv_d().to_bits(),
                Fp16::from_f64(1.0 / d as f64).to_bits()
            );
            assert_eq!(
                plan.sqrt_d().to_bits(),
                Fp16::from_f64((d as f64).sqrt()).to_bits()
            );
        }
    }

    #[test]
    fn rows_of_accepts_whole_rows_only() {
        let plan = NormPlan::<Fp32>::new(64).unwrap();
        assert_eq!(plan.rows_of(0).unwrap(), 0);
        assert_eq!(plan.rows_of(640).unwrap(), 10);
        assert_eq!(
            plan.rows_of(65).unwrap_err(),
            NormError::BatchLengthMismatch {
                rows: 1,
                d: 64,
                actual: 65
            }
        );
    }

    #[test]
    fn engine_matches_layer_norm_bitwise() {
        let d = 96;
        let x = sample_row(d, 17);
        let plan = NormPlan::<Fp32>::new(d).unwrap();
        for spec in MethodSpec::REGISTRY {
            let mut engine = Normalizer::for_plan(spec.build::<Fp32>(), &plan);
            let mut out = vec![Fp32::ZERO; d];
            engine.normalize_into(&plan, &x, &mut out).unwrap();
            let reference = layer_norm(LayerNormInputs::unscaled(&x), engine.method()).unwrap();
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", spec.label());
            }
        }
    }

    #[test]
    fn in_place_matches_into() {
        let d = 129;
        let x = sample_row(d, 3);
        let plan = NormPlan::<Fp32>::new(d).unwrap();
        let mut engine = Normalizer::from_spec(&MethodSpec::iterl2(5));
        let mut out = vec![Fp32::ZERO; d];
        let s1 = engine.normalize_into(&plan, &x, &mut out).unwrap();
        let mut data = x.clone();
        let s2 = engine.normalize_in_place(&plan, &mut data).unwrap();
        assert_eq!(s1.scale.to_bits(), s2.scale.to_bits());
        for (a, b) in out.iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_shape_errors() {
        let plan = NormPlan::<Fp32>::new(8).unwrap();
        let mut engine = Normalizer::from_spec(&MethodSpec::iterl2(5));
        let input = vec![Fp32::ONE; 20]; // not a multiple of 8
        let mut out = vec![Fp32::ZERO; 20];
        assert_eq!(
            engine.normalize_batch(&plan, &input, &mut out).unwrap_err(),
            NormError::BatchLengthMismatch {
                rows: 2,
                d: 8,
                actual: 20
            }
        );
        let input = vec![Fp32::ONE; 16];
        let mut short_out = vec![Fp32::ZERO; 8];
        assert_eq!(
            engine
                .normalize_batch(&plan, &input, &mut short_out)
                .unwrap_err(),
            NormError::OutputLengthMismatch {
                expected: 16,
                actual: 8
            }
        );
        let mut row = vec![Fp32::ONE; 7];
        assert_eq!(
            engine.normalize_in_place(&plan, &mut row).unwrap_err(),
            NormError::InputLengthMismatch {
                expected: 8,
                actual: 7
            }
        );
    }

    #[test]
    fn empty_batch_is_zero_rows() {
        let plan = NormPlan::<Fp32>::new(16).unwrap();
        let mut engine = Normalizer::from_spec(&MethodSpec::iterl2(5));
        let mut out: Vec<Fp32> = Vec::new();
        assert_eq!(engine.normalize_batch(&plan, &[], &mut out).unwrap(), 0);
    }

    #[test]
    fn plan_affine_is_applied() {
        let d = 32;
        let x = sample_row(d, 9);
        let gamma = vec![Fp32::from_f64(2.0); d];
        let beta = vec![Fp32::from_f64(0.5); d];
        let plan = NormPlan::new(d)
            .unwrap()
            .with_affine(&gamma, &beta)
            .unwrap();
        let mut engine = Normalizer::from_spec(&MethodSpec::iterl2(5));
        let mut out = vec![Fp32::ZERO; d];
        engine.normalize_into(&plan, &x, &mut out).unwrap();
        let reference =
            layer_norm(LayerNormInputs::new(&x, &gamma, &beta), engine.method()).unwrap();
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn method_spec_parse_roundtrip() {
        assert_eq!(
            MethodSpec::parse("iterl2"),
            Some(MethodSpec::IterL2 { steps: 5 })
        );
        assert_eq!(
            MethodSpec::parse("iterl2:7"),
            Some(MethodSpec::IterL2 { steps: 7 })
        );
        assert_eq!(
            MethodSpec::parse("fisr:2"),
            Some(MethodSpec::Fisr { newton: 2 })
        );
        assert_eq!(
            MethodSpec::parse("exact"),
            Some(MethodSpec::Exact { eps: 1e-5 })
        );
        assert_eq!(
            MethodSpec::parse("lut:128"),
            Some(MethodSpec::Lut { segments: 128 })
        );
        assert_eq!(MethodSpec::parse("nope"), None);
        assert_eq!(MethodSpec::parse("iterl2:x"), None);
        // lut:0 would panic in LutRsqrt::new — parse must reject it.
        assert_eq!(MethodSpec::parse("lut:0"), None);
        // A negative or non-finite ε would make every output NaN.
        assert_eq!(MethodSpec::parse("exact:-1"), None);
        assert_eq!(MethodSpec::parse("exact:nan"), None);
        assert_eq!(MethodSpec::parse("exact:inf"), None);
        assert_eq!(
            MethodSpec::parse("exact:0"),
            Some(MethodSpec::Exact { eps: 0.0 })
        );
        for spec in MethodSpec::REGISTRY {
            assert_eq!(MethodSpec::parse(spec.name()), Some(spec));
        }
    }

    #[test]
    fn scale_method_labels_are_distinct() {
        let labels: Vec<String> = MethodSpec::REGISTRY
            .iter()
            .map(|s| s.build::<Fp32>().label())
            .collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(labels[0], "iterl2[5]");
        // MethodSpec labels agree with the built method's labels.
        for spec in MethodSpec::REGISTRY {
            assert_eq!(spec.label(), spec.build::<Fp32>().label());
        }
    }

    #[test]
    fn dyn_dispatch_works_through_the_engine() {
        // Object safety: the same engine machinery must accept a
        // `&dyn RsqrtScale<F>` method.
        let d = 48;
        let x = sample_row(d, 31);
        let plan = NormPlan::<Fp32>::new(d).unwrap();
        let concrete = IterL2Norm::with_steps(5);
        let dynamic: &dyn RsqrtScale<Fp32> = &concrete;
        let mut engine = Normalizer::for_plan(dynamic, &plan);
        let mut out = vec![Fp32::ZERO; d];
        engine.normalize_into(&plan, &x, &mut out).unwrap();
        let reference = layer_norm(LayerNormInputs::unscaled(&x), &concrete).unwrap();
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(engine.method_name(), "IterL2Norm");
    }
}
