//! Configuration of the IterL2Norm iteration: stopping rule, initialization
//! and update-rate selection.

/// When to stop the scalar iteration.
///
/// The paper's Algorithm 1 iterates `while Δa > δ_max` (a *signed*
/// comparison — an overshooting negative step also terminates the loop);
/// the hardware macro instead runs a programmable fixed number of steps
/// (`n_c`, 5 in the evaluation). Both are supported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly this many update steps (the macro's behaviour).
    FixedSteps(u32),
    /// Iterate while the signed step `Δa > δ_max` (Algorithm 1 as written),
    /// with a hard cap on the number of steps as a safety net.
    ///
    /// Note a quirk this reproduction surfaced: when `E(m)` is even, the
    /// Eq. (6) seed satisfies `a₀ ≥ a∞`, the iteration approaches the fixed
    /// point *from above*, every Δa is negative — and the signed comparison
    /// exits after a single step. Use [`StopRule::ToleranceAbs`] for the
    /// presumably intended magnitude test.
    Tolerance {
        /// δ_max: the largest tolerated update step.
        delta_max: f64,
        /// Upper bound on iterations regardless of convergence.
        max_steps: u32,
    },
    /// Iterate while `|Δa| > δ_max` — the magnitude form of Algorithm 1's
    /// loop condition, robust to the approach direction.
    ToleranceAbs {
        /// δ_max: the largest tolerated update-step magnitude.
        delta_max: f64,
        /// Upper bound on iterations regardless of convergence.
        max_steps: u32,
    },
}

impl Default for StopRule {
    /// Five fixed steps — the paper's evaluation setting.
    fn default() -> Self {
        StopRule::FixedSteps(5)
    }
}

/// How the iteration seed `a₀` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum InitRule {
    /// Paper Eq. (6): `a₀ = 2^(−(E(m)−bias+1)/2)`, built from the exponent
    /// field of `m` with one add, one subtract and one arithmetic shift
    /// (see [`a0_from_exponent`](crate::a0_from_exponent)).
    #[default]
    HwExponent,
    /// Oracle initialization `a₀ = 1/√m` computed in `f64` — the ablation
    /// upper bound on what a perfect seed would buy.
    ExactRsqrt,
    /// A fixed constant seed (e.g. `1.0`), the naive baseline whose slow
    /// convergence motivates Eq. (6).
    Constant(f64),
}

/// How the update rate λ is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LambdaRule {
    /// Paper Eq. (10): `λ = 0.345·2^(−(E(m)−bias))` — the stored constant
    /// 0.345 with its exponent shifted by the exponent of `m`
    /// (see [`lambda_from_exponent`](crate::lambda_from_exponent)).
    #[default]
    HwExponent,
    /// Oracle rate `λ = 0.69/m` computed in `f64` — what Eq. (10)
    /// approximates without a divider.
    ExactInverse,
    /// A fixed constant λ, the naive baseline (requires the caller to know
    /// the scale of `m` in advance).
    Constant(f64),
}

/// How each Eq. (5) update step is evaluated in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStyle {
    /// Six separately rounded operations (the macro of Fig. 2b).
    #[default]
    Separate,
    /// Fused multiply-adds where the dataflow allows:
    /// `t₃ = fma(−t₁, a, 1)` and `a' = fma(t₄, t₃, a)` — two roundings
    /// fewer per step. An ablation of a plausible FMA-based macro.
    Fused,
}

/// Full configuration of the scalar iteration.
///
/// # Examples
///
/// ```
/// use iterl2norm::{IterConfig, StopRule};
///
/// // The paper's hardware configuration: 5 steps, exponent-trick seed and λ.
/// let hw = IterConfig::default();
/// assert_eq!(hw.stop, StopRule::FixedSteps(5));
///
/// // Algorithm 1 as written: tolerance-driven loop.
/// let alg1 = IterConfig {
///     stop: StopRule::Tolerance { delta_max: 1e-6, max_steps: 50 },
///     ..IterConfig::default()
/// };
/// assert_ne!(alg1.stop, hw.stop);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterConfig {
    /// Stopping rule (default: 5 fixed steps).
    pub stop: StopRule,
    /// Seed selection (default: Eq. 6 exponent trick).
    pub init: InitRule,
    /// Update-rate selection (default: Eq. 10 exponent trick).
    pub lambda: LambdaRule,
    /// Update-step evaluation (default: separately rounded operations).
    pub update: UpdateStyle,
}

impl IterConfig {
    /// The paper's macro configuration with a custom step count.
    ///
    /// # Examples
    ///
    /// ```
    /// use iterl2norm::{IterConfig, StopRule};
    /// assert_eq!(IterConfig::fixed_steps(3).stop, StopRule::FixedSteps(3));
    /// ```
    pub fn fixed_steps(steps: u32) -> Self {
        IterConfig {
            stop: StopRule::FixedSteps(steps),
            ..IterConfig::default()
        }
    }

    /// Algorithm 1's tolerance-driven loop with a safety cap.
    pub fn tolerance(delta_max: f64, max_steps: u32) -> Self {
        IterConfig {
            stop: StopRule::Tolerance {
                delta_max,
                max_steps,
            },
            ..IterConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_evaluation_setting() {
        let cfg = IterConfig::default();
        assert_eq!(cfg.stop, StopRule::FixedSteps(5));
        assert_eq!(cfg.init, InitRule::HwExponent);
        assert_eq!(cfg.lambda, LambdaRule::HwExponent);
    }

    #[test]
    fn constructors_set_stop_rule_only() {
        let cfg = IterConfig::fixed_steps(10);
        assert_eq!(cfg.stop, StopRule::FixedSteps(10));
        assert_eq!(cfg.init, InitRule::HwExponent);
        let tol = IterConfig::tolerance(1e-4, 20);
        assert_eq!(
            tol.stop,
            StopRule::Tolerance {
                delta_max: 1e-4,
                max_steps: 20
            }
        );
    }
}
