//! The serving-API contract, enforced: whatever the coalescer and the
//! shard router do — however many submitting threads race, whatever
//! batches requests get packed into, whichever shard a request lands
//! on — every response's bits are identical to executing that request
//! alone, serially, on a freshly built backend. Rows are independent,
//! the engine walks a batch row by row, and every shard executes the
//! identical plan, so micro-batching and sharding may only ever change
//! throughput, never output.
//!
//! The sweep covers every execution point (all three emulated formats plus
//! native FP32) × every registry method × shard counts {1, 2, 4} ×
//! submitting-thread counts {1, 2, 3, 8}, with the zero-row (m = 0 rows)
//! request and a mixed-d request rejected identically no matter how busy
//! the sharded service is, and `QueueFull` backpressure exercised by the
//! companion `service_resilience` suite. CI runs this suite in debug *and*
//! release mode, like the backend identity suite.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use iterl2norm::backend::{build_backend, BackendKind, FormatKind};
use iterl2norm::service::{NormRequest, Placement, ServiceConfig};
use iterl2norm::{MethodSpec, NormError, ReduceOrder};
use softfloat::Fp32;
use workloads::{Distribution, VectorGen};

const SUBMITTERS: [usize; 4] = [1, 2, 3, 8];
const SHARDS: [usize; 3] = [1, 2, 4];
const EXEC_POINTS: [(BackendKind, FormatKind); 4] = [
    (BackendKind::Emulated, FormatKind::Fp32),
    (BackendKind::Emulated, FormatKind::Fp16),
    (BackendKind::Emulated, FormatKind::Bf16),
    (BackendKind::Native, FormatKind::Fp32),
];

/// Deterministic request payload for submitter `who`: `rows × d` storage
/// bit patterns in `format`, distinct per submitter.
fn request_bits(format: FormatKind, d: usize, rows: usize, who: u64) -> Vec<u32> {
    let gen = VectorGen::new(Distribution::Uniform, 0xC0A1_E5CE ^ who);
    let mut bits = Vec::with_capacity(rows * d);
    for r in 0..rows as u64 {
        bits.extend(gen.vector_f64(d, r).iter().map(|&v| format.encode_f64(v)));
    }
    bits
}

/// Serial per-request reference: a fresh backend normalizes `bits` alone.
fn serial_reference(
    backend: BackendKind,
    format: FormatKind,
    d: usize,
    spec: &MethodSpec,
    bits: &[u32],
) -> Vec<u32> {
    let mut reference = build_backend(backend, format, d, spec, ReduceOrder::HwTree).unwrap();
    let mut out = vec![0u32; bits.len()];
    reference.normalize_batch_bits(bits, &mut out, 1).unwrap();
    out
}

#[test]
fn coalesced_matches_serial_for_every_exec_point_method_shard_and_submitter_count() {
    let d = 33;
    for (backend, format) in EXEC_POINTS {
        for spec in MethodSpec::REGISTRY {
            for shards in SHARDS {
                for submitters in SUBMITTERS {
                    let service = ServiceConfig::new(d)
                        .with_backend(backend)
                        .with_format(format)
                        .with_method(spec)
                        .with_threads(2)
                        .with_shards(shards)
                        .with_window(Duration::from_millis(2))
                        .build()
                        .unwrap();
                    let barrier = Arc::new(Barrier::new(submitters));
                    let context = format!(
                        "{}/{} {} shards={shards} submitters={submitters}",
                        backend.name(),
                        format.name(),
                        spec.label()
                    );
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..submitters)
                            .map(|who| {
                                let service = service.clone();
                                let barrier = Arc::clone(&barrier);
                                scope.spawn(move || {
                                    // Different row counts per submitter so the
                                    // coalescer's split-back is never uniform.
                                    let rows = 1 + who % 3;
                                    let bits = request_bits(format, d, rows, who as u64);
                                    barrier.wait();
                                    let response =
                                        service.submit(NormRequest::bits(&bits)).unwrap();
                                    (bits, response)
                                })
                            })
                            .collect();
                        for handle in handles {
                            let (bits, response) = handle.join().unwrap();
                            assert_eq!(response.rows(), bits.len() / d, "{context}");
                            assert!(response.batch_rows() >= response.rows(), "{context}");
                            assert!(response.batch_requests() >= 1, "{context}");
                            let expect = serial_reference(backend, format, d, &spec, &bits);
                            assert_eq!(
                                response.bits(),
                                &expect[..],
                                "{context}: sharded/coalesced bits differ from serial \
                                 per-request bits"
                            );
                        }
                    });
                    let stats = service.stats();
                    assert_eq!(stats.requests, submitters as u64, "{context}");
                    assert!(stats.batches <= stats.requests, "{context}");
                }
            }
        }
    }
}

#[test]
fn async_submit_matches_blocking_and_serial_for_every_method_shard_and_submitter_count() {
    // The PR-5 acceptance sweep: submit_async must produce bits identical
    // to blocking submit and to serial per-request execution, across
    // every execution point × registry method × shards {1, 2, 4} ×
    // submitter counts {1, 2, 3, 8}. Each submitter pipelines two async
    // tickets around a blocking submit (the intended overlap pattern), on
    // a request-hash-placed service where half the traffic is keyed — so
    // sticky placement, round-robin fallback, and driver rounds mixing
    // async and blocking entries all occur in one run.
    let d = 33;
    for (backend, format) in EXEC_POINTS {
        for spec in MethodSpec::REGISTRY {
            for shards in SHARDS {
                for submitters in SUBMITTERS {
                    let service = ServiceConfig::new(d)
                        .with_backend(backend)
                        .with_format(format)
                        .with_method(spec)
                        .with_shards(shards)
                        .with_placement(Placement::RequestHash)
                        .with_window(Duration::from_millis(1))
                        .build()
                        .unwrap();
                    let barrier = Arc::new(Barrier::new(submitters));
                    let context = format!(
                        "{}/{} {} shards={shards} submitters={submitters}",
                        backend.name(),
                        format.name(),
                        spec.label()
                    );
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..submitters)
                            .map(|who| {
                                let service = service.clone();
                                let barrier = Arc::clone(&barrier);
                                scope.spawn(move || {
                                    let rows = 1 + who % 3;
                                    let a = request_bits(format, d, rows, 100 + who as u64);
                                    let b = request_bits(format, d, rows, 200 + who as u64);
                                    let c = request_bits(format, d, rows, 300 + who as u64);
                                    barrier.wait();
                                    // Pipeline: two tickets in flight while a
                                    // blocking submit runs in between (whose
                                    // round may execute the tickets' work).
                                    let mut t1 =
                                        service.submit_async(NormRequest::bits(&a)).unwrap();
                                    let mut t2 = service
                                        .submit_async(NormRequest::bits(&b).with_key(who as u64))
                                        .unwrap();
                                    let blocking = service.submit(NormRequest::bits(&c)).unwrap();
                                    let r1 = t1.wait().unwrap();
                                    let r2 = t2
                                        .wait_timeout(Duration::from_secs(60))
                                        .expect("async request starved for 60 s")
                                        .unwrap();
                                    // Direct async ≡ blocking on the same
                                    // payload and service.
                                    let again = service.submit(NormRequest::bits(&a)).unwrap();
                                    assert_eq!(r1.bits(), again.bits());
                                    [(a, r1), (b, r2), (c, blocking)]
                                })
                            })
                            .collect();
                        for handle in handles {
                            for (bits, response) in handle.join().unwrap() {
                                let expect = serial_reference(backend, format, d, &spec, &bits);
                                assert_eq!(
                                    response.bits(),
                                    &expect[..],
                                    "{context}: async/blocking bits differ from serial \
                                     per-request bits"
                                );
                            }
                        }
                    });
                    let stats = service.stats();
                    // 2 async + 2 blocking requests per submitter.
                    assert_eq!(stats.requests, 4 * submitters as u64, "{context}");
                    assert_eq!(stats.abandoned_tickets, 0, "{context}");
                }
            }
        }
    }
}

#[test]
fn request_hash_placement_is_sticky_and_bit_identical() {
    let d = 24;
    let bits = request_bits(FormatKind::Fp32, d, 2, 9);
    let reference = serial_reference(
        BackendKind::Emulated,
        FormatKind::Fp32,
        d,
        &MethodSpec::iterl2(5),
        &bits,
    );
    for shards in SHARDS {
        let service = ServiceConfig::new(d)
            .with_shards(shards)
            .with_placement(Placement::RequestHash)
            .build()
            .unwrap();
        let home = service.shard_for(0xFEED);
        assert!(home < shards);
        for _ in 0..3 {
            // Sticky: the mapping never drifts between calls.
            assert_eq!(service.shard_for(0xFEED), home);
            let keyed = service
                .submit(NormRequest::bits(&bits).with_key(0xFEED))
                .unwrap();
            assert_eq!(keyed.bits(), &reference[..], "shards={shards}");
            let mut ticket = service
                .submit_async(NormRequest::bits(&bits).with_key(0xFEED))
                .unwrap();
            assert_eq!(ticket.shard(), home, "async placement follows the key");
            assert_eq!(ticket.wait().unwrap().bits(), &reference[..]);
        }
    }
}

#[test]
fn empty_and_mixed_d_requests_are_rejected_identically_under_load() {
    let d = 16;
    // Sharded on purpose: shape rejection happens at the door, before
    // placement, so it must look identical no matter the shard count.
    let service = ServiceConfig::new(d)
        .with_shards(2)
        .with_window(Duration::from_millis(2))
        .build()
        .unwrap();
    // Alone: the zero-row request and the ragged request fail cleanly.
    assert_eq!(
        service.submit(NormRequest::bits(&[])).unwrap_err(),
        NormError::EmptyRequest
    );
    let ragged = vec![0u32; 2 * d + 3];
    assert_eq!(
        service.submit(NormRequest::bits(&ragged)).unwrap_err(),
        NormError::BatchLengthMismatch {
            rows: 2,
            d,
            actual: 2 * d + 3
        }
    );
    // Under concurrent load: same rejections, and the valid neighbors'
    // bits are still identical to serial execution.
    let barrier = Arc::new(Barrier::new(4));
    std::thread::scope(|scope| {
        let valid: Vec<_> = (0..2)
            .map(|who| {
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let bits = request_bits(FormatKind::Fp32, d, 2, 77 + who);
                    barrier.wait();
                    let response = service.submit(NormRequest::bits(&bits)).unwrap();
                    (bits, response)
                })
            })
            .collect();
        let empty = {
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                service.submit(NormRequest::bits(&[])).unwrap_err()
            })
        };
        let mixed = {
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let ragged = vec![0u32; d + 1];
                barrier.wait();
                service.submit(NormRequest::bits(&ragged)).unwrap_err()
            })
        };
        assert_eq!(empty.join().unwrap(), NormError::EmptyRequest);
        assert_eq!(
            mixed.join().unwrap(),
            NormError::BatchLengthMismatch {
                rows: 1,
                d,
                actual: d + 1
            }
        );
        for handle in valid {
            let (bits, response) = handle.join().unwrap();
            let expect = serial_reference(
                BackendKind::Emulated,
                FormatKind::Fp32,
                d,
                &MethodSpec::iterl2(5),
                &bits,
            );
            assert_eq!(response.bits(), &expect[..]);
        }
    });
}

#[test]
fn coalescing_actually_happens_under_concurrent_load() {
    // Structural smoke test for the micro-batcher: with a generous window
    // and a barrier start, concurrent submitters should share a backend
    // batch. Retried to tolerate scheduler hiccups on loaded hosts; the
    // bit-identity guarantees above hold regardless of grouping.
    let d = 64;
    let submitters = 4;
    let mut observed_sharing = false;
    for _attempt in 0..3 {
        let service = ServiceConfig::new(d)
            .with_backend(BackendKind::Native)
            .with_window(Duration::from_millis(250))
            .build()
            .unwrap();
        let barrier = Arc::new(Barrier::new(submitters));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..submitters)
                .map(|who| {
                    let service = service.clone();
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let bits = request_bits(FormatKind::Fp32, d, 1, who as u64);
                        barrier.wait();
                        service.submit(NormRequest::bits(&bits)).unwrap()
                    })
                })
                .collect();
            for handle in handles {
                if handle.join().unwrap().batch_requests() > 1 {
                    observed_sharing = true;
                }
            }
        });
        let stats = service.stats();
        assert_eq!(stats.requests, submitters as u64);
        if observed_sharing {
            assert!(stats.coalesced_requests >= 2);
            assert!(stats.batches < stats.requests);
            break;
        }
    }
    assert!(
        observed_sharing,
        "4 barrier-started submitters never shared a batch within a 250ms window (3 attempts)"
    );
}

#[test]
fn submit_into_is_bit_identical_under_concurrency() {
    // The buffer-reusing entry point parks in the combining queue under
    // a window (its result is copied out of a shared driver round);
    // output must still match serial per-request execution exactly.
    let d = 40;
    let service = ServiceConfig::new(d)
        .with_window(Duration::from_millis(2))
        .build()
        .unwrap();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|who| {
                let service = service.clone();
                scope.spawn(move || {
                    let bits = request_bits(FormatKind::Fp32, d, 2, 200 + who);
                    let mut out = vec![0u32; bits.len()];
                    let rows = service
                        .submit_into(NormRequest::bits(&bits), &mut out)
                        .unwrap();
                    assert_eq!(rows, 2);
                    (bits, out)
                })
            })
            .collect();
        for handle in handles {
            let (bits, out) = handle.join().unwrap();
            let expect = serial_reference(
                BackendKind::Emulated,
                FormatKind::Fp32,
                d,
                &MethodSpec::iterl2(5),
                &bits,
            );
            assert_eq!(out, expect);
        }
    });
}

#[test]
fn per_request_mode_matches_coalesced_mode_bitwise() {
    let d = 48;
    let bits = request_bits(FormatKind::Fp32, d, 5, 11);
    let coalesced = ServiceConfig::new(d)
        .build()
        .unwrap()
        .submit(NormRequest::bits(&bits))
        .unwrap();
    let per_request_service = ServiceConfig::new(d)
        .with_coalescing(false)
        .build()
        .unwrap();
    let per_request = per_request_service
        .submit(NormRequest::bits(&bits))
        .unwrap();
    assert_eq!(coalesced.bits(), per_request.bits());
    assert_eq!(per_request.batch_requests(), 1);
    // Per-request mode on a sharded service places requests round-robin
    // over shard backends; every shard must produce the same bits.
    let sharded_per_request = ServiceConfig::new(d)
        .with_coalescing(false)
        .with_shards(4)
        .build()
        .unwrap();
    for _ in 0..8 {
        let response = sharded_per_request
            .submit(NormRequest::bits(&bits))
            .unwrap();
        assert_eq!(response.bits(), coalesced.bits());
    }
    // Per-request mode still honors shutdown and validation.
    assert_eq!(
        per_request_service
            .submit(NormRequest::bits(&[]))
            .unwrap_err(),
        NormError::EmptyRequest
    );
    per_request_service.shutdown();
    assert_eq!(
        per_request_service
            .submit(NormRequest::bits(&bits))
            .unwrap_err(),
        NormError::ServiceShutdown
    );
}

#[test]
fn affine_service_matches_affine_backend_bitwise() {
    let d = 96;
    let gamma: Vec<u32> = (0..d)
        .map(|i| Fp32::from_f64(0.8 + (i % 7) as f64 * 0.06).to_bits())
        .collect();
    let beta: Vec<u32> = (0..d)
        .map(|i| Fp32::from_f64((i % 5) as f64 * 0.02 - 0.04).to_bits())
        .collect();
    let bits = request_bits(FormatKind::Fp32, d, 3, 23);
    let mut reference = iterl2norm::build_backend_affine(
        BackendKind::Emulated,
        FormatKind::Fp32,
        d,
        &MethodSpec::iterl2(5),
        ReduceOrder::HwTree,
        Some(&gamma),
        Some(&beta),
        iterl2norm::SimdLevel::Auto,
    )
    .unwrap();
    let mut expect = vec![0u32; bits.len()];
    reference
        .normalize_batch_bits(&bits, &mut expect, 1)
        .unwrap();
    for backend in BackendKind::ALL {
        let service = ServiceConfig::new(d)
            .with_backend(backend)
            .with_affine_bits(&gamma, &beta)
            .build()
            .unwrap();
        let response = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(response.bits(), &expect[..], "{}", service.label());
    }
}

#[test]
fn simd_service_reports_its_level_and_matches_forced_scalar_bitwise() {
    use iterl2norm::SimdLevel;
    let d = 129; // never a whole number of 64-wide chunks or 8-row blocks
    let bits = request_bits(FormatKind::Fp32, d, 11, 77);

    // Forced-scalar native is the in-service reference.
    let scalar = ServiceConfig::new(d)
        .with_backend(BackendKind::Native)
        .with_simd(SimdLevel::Scalar)
        .build()
        .unwrap();
    assert_eq!(scalar.simd_level(), SimdLevel::Scalar);
    let reference = scalar.submit(NormRequest::bits(&bits)).unwrap();
    assert_eq!(reference.simd_level(), SimdLevel::Scalar);

    // Auto resolves to a concrete level, reports it on service and
    // response, and changes no bits — with sharding and threads in play.
    let auto = ServiceConfig::new(d)
        .with_backend(BackendKind::Native)
        .with_threads(3)
        .with_shards(2)
        .build()
        .unwrap();
    assert_ne!(auto.simd_level(), SimdLevel::Auto, "auto must resolve");
    let response = auto.submit(NormRequest::bits(&bits)).unwrap();
    assert_eq!(response.simd_level(), auto.simd_level());
    assert_eq!(response.bits(), reference.bits(), "simd changed bits");

    // The emulated backend always reports scalar under auto.
    let emulated = ServiceConfig::new(d).build().unwrap();
    assert_eq!(emulated.simd_level(), SimdLevel::Scalar);

    // A forced vector level the backend cannot run fails the *build*,
    // never a later submit.
    let err = ServiceConfig::new(d)
        .with_simd(SimdLevel::Avx2)
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, NormError::SimdUnsupported { .. }), "{err}");
}
