//! Adaptive coalescing through the service front door, deterministic:
//!
//! * Arrival timestamps come from an injected [`TestClock`], so the
//!   test scripts the exact record at which the estimator opens and
//!   closes the window — and observes the decision as wall time: a
//!   closed window drains immediately (submits return in far less than
//!   the configured window), an open one holds the full window.
//! * Whether the window is open may only ever change how requests
//!   group into rounds — never output bits. Adaptive, forced-window
//!   and no-window services are checked bit-identical against the same
//!   serial per-request reference, for normalize *and* whiten traffic,
//!   across shard counts.
//!
//! The estimator's bucket mechanics (thresholds, hysteresis, idle-gap
//! reset) are pinned record-by-record by the unit tests in
//! `src/adaptive.rs`; this suite pins the *integration*: admitted
//! arrivals feed the estimator through the clock seam, and the
//! resident driver honors the decision.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use iterl2norm::backend::{build_backend, BackendKind, FormatKind};
use iterl2norm::service::{NormRequest, ServiceConfig};
use iterl2norm::whiten::{build_whiten, WhitenSpec};
use iterl2norm::{AdaptiveWindow, MethodSpec, ReduceOrder, SimdLevel, TestClock};
use workloads::{Distribution, VectorGen};

const D: usize = 16;

fn request_bits(rows: usize, seed: u64) -> Vec<u32> {
    let gen = VectorGen::new(Distribution::Uniform, seed);
    let mut bits = Vec::with_capacity(rows * D);
    for r in 0..rows as u64 {
        bits.extend(gen.vector_f64(D, r).iter().map(|&v| (v as f32).to_bits()));
    }
    bits
}

/// Serial per-request normalization reference on a fresh backend.
fn serial_norm(bits: &[u32]) -> Vec<u32> {
    let mut backend = build_backend(
        BackendKind::Emulated,
        FormatKind::Fp32,
        D,
        &MethodSpec::iterl2(5),
        ReduceOrder::HwTree,
    )
    .unwrap();
    let mut out = vec![0u32; bits.len()];
    backend.normalize_batch_bits(bits, &mut out, 1).unwrap();
    out
}

/// Serial whitening reference on a fresh executor.
fn serial_whiten(bits: &[u32]) -> Vec<u32> {
    let mut exec = build_whiten(
        BackendKind::Emulated,
        FormatKind::Fp32,
        D,
        WhitenSpec::default(),
        SimdLevel::Auto,
    )
    .unwrap();
    let mut out = vec![0u32; bits.len()];
    exec.whiten_groups(bits, &mut out, &[bits.len() / D], 1)
        .unwrap();
    out
}

#[test]
fn scripted_arrivals_open_and_close_the_window_at_pinned_records() {
    // 1 ms estimator buckets, open at 2 arrivals per bucket, and a
    // 150 ms coalescing window — enormous next to an uncontended
    // submit, so "did the driver hold the window?" is unambiguous in
    // the submit's wall time.
    const WINDOW: Duration = Duration::from_millis(150);
    const FAST: Duration = Duration::from_millis(75);
    let clock = Arc::new(TestClock::new());
    let service = ServiceConfig::new(D)
        .with_window(WINDOW)
        .with_adaptive_window(AdaptiveWindow {
            interval: Duration::from_millis(1),
            open_at: 2,
            close_below: 2,
        })
        .with_clock(clock.clone())
        .build()
        .unwrap();
    let bits = request_bits(1, 0xADA9);
    let timed_submit = |label: &str| {
        let begin = Instant::now();
        let response = service.submit(NormRequest::bits(&bits)).unwrap();
        assert_eq!(response.rows(), 1, "{label}");
        begin.elapsed()
    };

    // Record 1, clock t = 0: a lone arrival in a fresh bucket — the
    // window stays closed, the driver drains without holding.
    assert!(
        timed_submit("lone arrival") < FAST,
        "a closed window must not hold the round open"
    );

    // Record 2, t = 10 ms: a whole-interval idle gap — still closed.
    clock.advance(Duration::from_millis(10));
    assert!(
        timed_submit("arrival after idle gap") < FAST,
        "an idle gap must keep the window closed"
    );

    // Records 3 and 4, same t (same bucket): the running count reaches
    // open_at on record 3 — that submit and the next are both held the
    // full window by the driver.
    let held = timed_submit("second arrival in the bucket");
    assert!(
        held >= WINDOW,
        "the open window must hold the round the full {WINDOW:?}, held {held:?}"
    );
    let held = timed_submit("third arrival in the bucket");
    assert!(
        held >= WINDOW,
        "the window stays open inside the burst bucket, held {held:?}"
    );

    // Record 5, t = 20 ms: another whole-interval gap closes it again.
    clock.advance(Duration::from_millis(10));
    assert!(
        timed_submit("arrival after the burst died") < FAST,
        "an idle gap must close an open window"
    );

    let stats = service.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.queue_full_rejections, 0);
}

#[test]
fn adaptive_forced_and_disabled_windows_are_bit_identical() {
    // Window policy may regroup rounds, never change bits: every
    // response from all three policies must equal the same serial
    // per-request reference, under concurrent mixed-kind traffic.
    let submitters = 4;
    let whiten_rows = 6;
    for shards in [1usize, 2] {
        let builders: [(&str, ServiceConfig); 3] = [
            (
                "adaptive",
                ServiceConfig::new(D)
                    .with_window(Duration::from_millis(1))
                    .with_adaptive_window(AdaptiveWindow::default()),
            ),
            (
                "forced-window",
                ServiceConfig::new(D).with_window(Duration::from_millis(1)),
            ),
            (
                "no-window",
                ServiceConfig::new(D).with_window(Duration::ZERO),
            ),
        ];
        for (policy, config) in builders {
            let service = config
                .with_shards(shards)
                .with_whiten(WhitenSpec::default())
                .build()
                .unwrap();
            let barrier = Arc::new(Barrier::new(submitters));
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..submitters)
                    .map(|who| {
                        let service = service.clone();
                        let barrier = Arc::clone(&barrier);
                        scope.spawn(move || {
                            let rows = 1 + who % 3;
                            let norm = request_bits(rows, 0x11AD + who as u64);
                            let group = request_bits(whiten_rows, 0x22AD + who as u64);
                            barrier.wait();
                            let normalized = service.submit(NormRequest::bits(&norm)).unwrap();
                            let mut ticket = service
                                .submit_async(NormRequest::whiten_group(&group))
                                .unwrap();
                            let whitened = ticket.wait().unwrap();
                            (norm, normalized, group, whitened)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (norm, normalized, group, whitened) = handle.join().unwrap();
                    assert_eq!(
                        normalized.bits(),
                        &serial_norm(&norm)[..],
                        "{policy} shards={shards}: normalize bits diverged"
                    );
                    assert_eq!(
                        whitened.bits(),
                        &serial_whiten(&group)[..],
                        "{policy} shards={shards}: whiten bits diverged"
                    );
                }
            });
            let stats = service.stats();
            assert_eq!(stats.requests, 2 * submitters as u64, "{policy}");
            assert_eq!(stats.whiten_requests, submitters as u64, "{policy}");
        }
    }
}
