//! The ticket-waker lifecycle contract, enforced:
//!
//! * [`NormTicket::on_ready`] fires its callback **exactly once**, on
//!   both sides of the registration race — registered before the
//!   resident driver completes the round (fires from the driver) and
//!   after (fires immediately, on the registering thread).
//! * A callback that drops its ticket uncollected recycles the result
//!   buffer and is counted as an abandonment — nothing strands.
//! * A panicking callback is contained inside the driver and counted
//!   in [`ServiceStats::waker_panics`]; the executor keeps serving.
//! * [`TicketSet::wait_any`] over tickets on different shards returns
//!   them in **completion** order, pinned here by gating each shard's
//!   backend independently and releasing them out of insertion order.
//!
//! The gate/backend helpers mirror `service_resilience.rs`: injected
//! through [`ServiceConfig::build_with_backends`], bounded by a 10 s
//! failsafe so a bug can never hang the suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use iterl2norm::service::{NormRequest, Placement, ServiceConfig};
use iterl2norm::{BackendKind, NormBackend, NormError, RowMoments, TicketSet};

const D: usize = 8;

fn row_bits(salt: u32) -> Vec<u32> {
    (0..D as u32)
        .map(|i| (1.0f32 + (i.wrapping_mul(29).wrapping_add(salt) % 13) as f32 * 0.125).to_bits())
        .collect()
}

struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: bool,
    open: bool,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    fn pass(&self) {
        let mut state = self.state.lock().unwrap();
        state.entered = true;
        self.cv.notify_all();
        let deadline = Duration::from_secs(10);
        while !state.open {
            let (next, timeout) = self.cv.wait_timeout(state, deadline).unwrap();
            state = next;
            if timeout.timed_out() {
                break; // never hang the suite on a test bug
            }
        }
    }

    fn await_entered(&self) {
        let mut state = self.state.lock().unwrap();
        let deadline = Duration::from_secs(10);
        while !state.entered {
            let (next, timeout) = self.cv.wait_timeout(state, deadline).unwrap();
            state = next;
            assert!(!timeout.timed_out(), "backend never entered the gate");
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }
}

/// Identity backend blocking at its gate — how these tests hold a
/// driver's round open while they arrange the race under test.
struct GatedBackend {
    gate: Arc<Gate>,
}

impl NormBackend for GatedBackend {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn method_label(&self) -> String {
        "gated-test".into()
    }

    fn normalize_batch_bits(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        _threads: usize,
    ) -> Result<usize, NormError> {
        self.gate.pass();
        out.copy_from_slice(input);
        Ok(input.len() / D)
    }

    fn normalize_row_bits_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<RowMoments, NormError> {
        self.normalize_batch_bits(input, out, 1)?;
        Ok(RowMoments {
            mean: 0.0,
            m: 1.0,
            scale: 1.0,
        })
    }
}

fn gated_service(gate: &Arc<Gate>) -> iterl2norm::NormService {
    ServiceConfig::new(D)
        .build_with_backends(|| {
            Box::new(GatedBackend {
                gate: Arc::clone(gate),
            })
        })
        .unwrap()
}

/// Poll the aggregate counters until `stats` satisfies `done`, bounded.
fn await_stats(
    service: &iterl2norm::NormService,
    context: &str,
    done: impl Fn(&iterl2norm::ServiceStats) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if done(&service.stats()) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context} (stats: {:?})",
            service.stats()
        );
        std::thread::yield_now();
    }
}

#[test]
fn callback_registered_before_completion_fires_exactly_once() {
    let gate = Gate::new();
    let service = gated_service(&gate);
    let fired = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel();

    // Hold the driver's round open so the registration provably lands
    // before the outcome exists.
    let pending = {
        let service = service.clone();
        std::thread::spawn(move || {
            let bits = row_bits(1);
            service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
        })
    };
    gate.await_entered();

    let bits = row_bits(2);
    let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
    {
        let fired = Arc::clone(&fired);
        let bits = bits.clone();
        ticket.on_ready(move |mut ticket| {
            fired.fetch_add(1, Ordering::SeqCst);
            let response = ticket
                .try_take()
                .expect("a fired waker's outcome is already stored")
                .expect("identity backend cannot fail");
            assert_eq!(response.bits(), &bits[..]);
            tx.send(response.rows()).unwrap();
        });
    }
    assert_eq!(
        fired.load(Ordering::SeqCst),
        0,
        "the gated round cannot have completed yet"
    );

    gate.open();
    assert_eq!(pending.join().unwrap(), Ok(1));
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        1,
        "the callback must fire once the driver delivers"
    );
    // Exactly once: no second delivery however long we watch.
    assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    assert_eq!(service.stats().waker_panics, 0);
    assert_eq!(service.stats().abandoned_tickets, 0);
}

#[test]
fn callback_registered_after_completion_fires_immediately() {
    let service = ServiceConfig::new(D).build().unwrap();
    let bits = row_bits(3);
    let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
    // Wait until the driver has served the request, so registration
    // definitely happens on the already-complete side of the race.
    await_stats(&service, "driver never served the async request", |s| {
        s.rows >= 1
    });

    let fired = Arc::new(AtomicUsize::new(0));
    {
        let fired = Arc::clone(&fired);
        ticket.on_ready(move |mut ticket| {
            fired.fetch_add(1, Ordering::SeqCst);
            assert_eq!(ticket.try_take().unwrap().unwrap().rows(), 1);
        });
    }
    // The immediate path runs the callback on the registering thread,
    // before on_ready returns.
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    assert_eq!(service.stats().waker_panics, 0);
}

#[test]
fn callback_dropping_its_ticket_recycles_and_counts_the_abandonment() {
    let service = ServiceConfig::new(D).build().unwrap();
    let (tx, rx) = mpsc::channel();
    let bits = row_bits(4);
    let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
    ticket.on_ready(move |ticket| {
        // Deliberately walk away without collecting: the ticket's Drop
        // must recycle the delivered buffer into the shard pool.
        drop(ticket);
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("the callback must fire");
    await_stats(&service, "the dropped ticket was never counted", |s| {
        s.abandoned_tickets == 1
    });
    // The service keeps serving afterwards — nothing stranded.
    assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);
    assert_eq!(service.stats().waker_panics, 0);
}

#[test]
fn panicking_callback_is_contained_in_the_driver_and_counted() {
    // Registered while the round is provably still gated, so the waker
    // always fires from the resident driver — the side of the race
    // where containment is the driver's job. (A waker registered after
    // completion runs synchronously on the registering thread, where a
    // panic is the caller's own to catch — documented on `on_ready`.)
    let bits = row_bits(5);
    for _round in 0..2 {
        // Fresh gate and service per round: an opened gate stays open,
        // and the determinism argument needs the round gated.
        let gate = Gate::new();
        let service = gated_service(&gate);
        let pending = {
            let service = service.clone();
            let bits = bits.clone();
            std::thread::spawn(move || service.submit(NormRequest::bits(&bits)).map(|r| r.rows()))
        };
        gate.await_entered();
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        ticket.on_ready(|_ticket| panic!("injected waker panic"));
        gate.open();
        assert_eq!(pending.join().unwrap(), Ok(1));
        // The driver contained the unwind and counted it…
        await_stats(&service, "the waker panic was never counted", |s| {
            s.waker_panics == 1
        });
        // …and survived: the same service keeps serving both waiters.
        assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        assert_eq!(ticket.wait().unwrap().rows(), 1);
        assert!(
            !service.is_shutdown(),
            "a waker panic must not shut down the service"
        );
    }
}

#[test]
fn wait_any_returns_mixed_shard_tickets_in_completion_order() {
    // One gate per shard (build_with_backends calls the factory once
    // per shard, in shard order), so the test scripts which shard's
    // round finishes first — the set must surface tickets in that
    // order, not insertion order.
    let gates = [Gate::new(), Gate::new()];
    let service = {
        let gates = gates.clone();
        let next = AtomicUsize::new(0);
        ServiceConfig::new(D)
            .with_shards(2)
            .with_placement(Placement::RequestHash)
            .build_with_backends(move || {
                let shard = next.fetch_add(1, Ordering::SeqCst);
                Box::new(GatedBackend {
                    gate: Arc::clone(&gates[shard]),
                })
            })
            .unwrap()
    };
    // Keys that land on shard 0 and shard 1 respectively.
    let key_for = |shard: usize| {
        (0..64u64)
            .find(|&k| service.shard_for(k) == shard)
            .expect("some key maps to each of 2 shards")
    };
    let (key0, key1) = (key_for(0), key_for(1));

    let first_bits = row_bits(6);
    let second_bits = row_bits(7);
    let mut set = TicketSet::new();
    let on_shard0 = set.insert(
        service
            .submit_async(NormRequest::bits(&first_bits).with_key(key0))
            .unwrap(),
    );
    let on_shard1 = set.insert(
        service
            .submit_async(NormRequest::bits(&second_bits).with_key(key1))
            .unwrap(),
    );
    assert_eq!(set.outstanding(), 2);
    gates[0].await_entered();
    gates[1].await_entered();

    // Release shard 1 first: its ticket must surface first even though
    // it was inserted second.
    gates[1].open();
    let (index, outcome) = set.wait_any().expect("one ticket outstanding");
    assert_eq!(index, on_shard1, "completion order, not insertion order");
    assert_eq!(outcome.unwrap().bits(), &second_bits[..]);

    gates[0].open();
    let (index, outcome) = set.wait_any().expect("one ticket left");
    assert_eq!(index, on_shard0);
    assert_eq!(outcome.unwrap().bits(), &first_bits[..]);

    // Drained: the set reports completion, forever.
    assert!(set.wait_any().is_none());
    assert!(set.is_empty());
    assert_eq!(service.stats().abandoned_tickets, 0);
}
