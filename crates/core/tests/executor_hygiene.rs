//! Thread hygiene of the resident shard executor, enforced against the
//! OS rather than internal counters: every worker thread this crate
//! spawns carries an `ns{service}s{shard}` name (truncated to the
//! 15-byte comm limit), so enumerating `/proc/self/task` gives the
//! ground truth the contract is stated in —
//!
//! * exactly `Σ shard_threads` workers spawn, once, at
//!   [`ServiceConfig::build`] — submitting traffic never spawns more;
//! * an idle service takes (almost) no wake-ups over a scripted idle
//!   window — residents park, they never busy-spin;
//! * [`NormService::shutdown`] retires the shard drivers and the final
//!   `Drop` joins every worker — a 100-iteration build/drop churn
//!   leaves the process with zero service threads.
//!
//! Thread accounting is process-global, so every test serializes on
//! one mutex and proves the process clean before releasing it.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use iterl2norm::service::{NormRequest, ServiceConfig};

const D: usize = 8;

/// Serializes the tests in this binary: concurrent services would
/// pollute each other's `/proc/self/task` census.
static CENSUS: Mutex<()> = Mutex::new(());

fn census_lock() -> MutexGuard<'static, ()> {
    // A failed test poisons the lock; the census itself is stateless,
    // so later tests can still run (and report their own failures).
    CENSUS.lock().unwrap_or_else(|e| e.into_inner())
}

/// The comm names of every live service worker thread in this process:
/// resident drivers (`ns{sid}s{i}d`) and partition helpers
/// (`ns{sid}s{i}h{j}`), sorted for stable comparison.
fn service_threads() -> Vec<String> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir("/proc/self/task").expect("procfs task dir") {
        let comm_path = entry.expect("task dir entry").path().join("comm");
        // The thread may exit between readdir and read: skip, don't fail.
        if let Ok(comm) = std::fs::read_to_string(comm_path) {
            let comm = comm.trim();
            if let Some(rest) = comm.strip_prefix("ns") {
                if rest.starts_with(|c: char| c.is_ascii_digit()) {
                    names.push(comm.to_string());
                }
            }
        }
    }
    names.sort();
    names
}

/// Poll until exactly `expected` service workers are visible, then
/// return the stable census. Needed right after `build()`: the workers
/// are already spawned, but each sets its own comm name from inside
/// the child thread, so the names appear a beat after spawn returns.
fn await_service_census(expected: usize, context: &str) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = service_threads();
        if live.len() == expected {
            return live;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: expected {expected} workers, census {live:?}"
        );
        std::thread::yield_now();
    }
}

/// Assert the process reaches zero service threads within `bound` —
/// joins are synchronous, but a retired (unjoined) thread's procfs
/// entry disappears only when the OS reaps it.
fn await_no_service_threads(bound: Duration, context: &str) {
    let deadline = Instant::now() + bound;
    loop {
        let live = service_threads();
        if live.is_empty() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: service threads still alive: {live:?}"
        );
        std::thread::yield_now();
    }
}

fn row_bits(salt: u32) -> Vec<u32> {
    (0..D as u32)
        .map(|i| (1.0f32 + (i.wrapping_mul(13).wrapping_add(salt) % 11) as f32 * 0.25).to_bits())
        .collect()
}

#[test]
fn build_spawns_exactly_the_configured_workers_once() {
    let _guard = census_lock();
    await_no_service_threads(Duration::from_secs(10), "census must start clean");

    // Uneven per-shard counts: shard 0 gets 2 threads (1 driver +
    // 1 helper), shard 1 gets 3 (1 driver + 2 helpers) — 5 residents.
    let service = ServiceConfig::new(D)
        .with_shards(2)
        .with_shard_threads(&[2, 3])
        .build()
        .unwrap();
    let at_build = await_service_census(5, "shards × shard_threads must spawn exactly");
    // One driver per shard, helpers making up the rest.
    let drivers = at_build.iter().filter(|n| n.ends_with('d')).count();
    assert_eq!(drivers, 2, "one resident driver per shard: {at_build:?}");

    // Traffic reuses the residents — the census is identical after
    // blocking, async, and whiten-free submissions from several threads.
    std::thread::scope(|scope| {
        for who in 0..3u32 {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(who);
                for _ in 0..5 {
                    assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);
                    let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
                    assert_eq!(ticket.wait().unwrap().rows(), 1);
                }
            });
        }
    });
    assert_eq!(
        service_threads(),
        at_build,
        "traffic must never spawn or retire residents"
    );

    drop(service);
    await_no_service_threads(Duration::from_secs(10), "drop must join every worker");
}

#[test]
fn idle_residents_park_without_wakeups() {
    let _guard = census_lock();
    await_no_service_threads(Duration::from_secs(10), "census must start clean");

    let service = ServiceConfig::new(D)
        .with_shards(2)
        .with_threads(2)
        .build()
        .unwrap();
    // Let the spawn-time wake-ups (drivers parking for the first time)
    // settle, then take the baseline.
    let bits = row_bits(1);
    assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);
    let baseline = service.stats().worker_wakeups;

    // A scripted idle window: no traffic for 100 ms. Parked residents
    // must not wake themselves — polling stats doesn't count, and the
    // executor has no timer-based spinning to leak wake-ups through.
    let idle_until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < idle_until {
        std::thread::sleep(Duration::from_millis(10));
        let _ = service.stats();
    }
    let woke = service.stats().worker_wakeups - baseline;
    assert!(
        woke <= 2,
        "idle residents must stay parked: {woke} wake-ups over the idle window"
    );

    drop(service);
    await_no_service_threads(Duration::from_secs(10), "drop must join every worker");
}

#[test]
fn shutdown_retires_drivers_and_drop_joins_the_rest() {
    let _guard = census_lock();
    await_no_service_threads(Duration::from_secs(10), "census must start clean");

    let service = ServiceConfig::new(D)
        .with_shards(2)
        .with_threads(2)
        .build()
        .unwrap();
    let bits = row_bits(2);
    assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);

    // Graceful shutdown: the shard drivers drain and exit on their own
    // (observable as their `…d` names leaving the census)…
    service.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let drivers: Vec<String> = service_threads()
            .into_iter()
            .filter(|n| n.ends_with('d'))
            .collect();
        if drivers.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shutdown never retired the drivers: {drivers:?}"
        );
        std::thread::yield_now();
    }
    // …while the partition helpers stay resident until the service is
    // dropped (a shut-down service still answers stats()).
    let _ = service.stats();

    drop(service);
    await_no_service_threads(Duration::from_secs(10), "drop must join every worker");
}

#[test]
fn hundred_build_drop_cycles_leak_no_threads() {
    let _guard = census_lock();
    await_no_service_threads(Duration::from_secs(10), "census must start clean");

    for cycle in 0..100u32 {
        let service = ServiceConfig::new(D).with_threads(2).build().unwrap();
        let bits = row_bits(cycle);
        // Exercise both waiters so every cycle runs a real round; drop
        // one ticket uncollected to churn the abandonment path too.
        assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        if cycle % 2 == 0 {
            drop(ticket);
        } else {
            let mut ticket = ticket;
            assert_eq!(ticket.wait().unwrap().rows(), 1);
        }
        drop(service);
        await_no_service_threads(
            Duration::from_secs(10),
            &format!("cycle {cycle} leaked a worker"),
        );
    }
}
