//! Bit-identity tests for the whitening subsystem: the native host-`f32`
//! path must produce *exactly* the storage bits of the emulated softfloat
//! oracle — for every forced SIMD level, every tested dimension and
//! iteration budget, both group modes, and any worker count — and the
//! service path must hand back exactly what the executor produces.
//!
//! Mirrors `backend_bit_identity.rs`: the emulated FP32 executor is the
//! oracle, `assert_bits_eq` reports the first diverging element in hex,
//! and forced levels the host cannot run are skipped with a notice
//! rather than silently passing.

use iterl2norm::whiten::{build_whiten, WhitenExec, WhitenSpec};
use iterl2norm::{
    BackendKind, FormatKind, GroupMode, MethodSpec, NormError, NormRequest, ServiceConfig,
    SimdLevel,
};
use workloads::{Distribution, VectorGen};

/// The acceptance grid from the issue: d ∈ {1, 4, 16, 64, 256} ×
/// T ∈ {0, 1, 5} for every forced level.
const DIMS: [usize; 5] = [1, 4, 16, 64, 256];
const STEPS: [u32; 3] = [0, 1, 5];

const FORCED_LEVELS: [SimdLevel; 4] = [
    SimdLevel::Scalar,
    SimdLevel::Portable,
    SimdLevel::Sse2,
    SimdLevel::Avx2,
];

/// Deterministic row-major `m × d` group with moderate values in
/// roughly [-2, 2] — enough spread to keep Σ well conditioned at these
/// sizes, and finite everywhere (the native path runs on x86 hardware
/// whose invalid-operation NaN payload differs from the softfloat
/// canonical one, so bit-identity claims only cover finite inputs; the
/// NaN contract has its own test below).
fn group_bits(m: usize, d: usize, seed: u64) -> Vec<u32> {
    let gen = VectorGen::new(Distribution::Uniform, seed);
    let mut bits = Vec::with_capacity(m * d);
    for row in 0..m {
        for v in gen.vector_f64(d, row as u64) {
            bits.push(((v * 2.0) as f32).to_bits());
        }
    }
    bits
}

fn assert_bits_eq(expected: &[u32], actual: &[u32], context: &str) {
    assert_eq!(expected.len(), actual.len(), "length mismatch: {context}");
    for (i, (&e, &a)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            e, a,
            "bit divergence at element {i}: expected {e:#010x}, got {a:#010x} ({context})"
        );
    }
}

fn emulated_oracle(d: usize, spec: WhitenSpec) -> Box<dyn WhitenExec> {
    build_whiten(
        BackendKind::Emulated,
        FormatKind::Fp32,
        d,
        spec,
        SimdLevel::Auto,
    )
    .expect("emulated fp32 whitening always builds")
}

/// Build a native executor forced to `level`, or `None` when the host
/// cannot run it (reported, so a log reader can tell a skip from a pass).
fn forced_native(d: usize, spec: WhitenSpec, level: SimdLevel) -> Option<Box<dyn WhitenExec>> {
    match build_whiten(BackendKind::Native, FormatKind::Fp32, d, spec, level) {
        Ok(exec) => {
            assert_eq!(
                exec.simd_level(),
                level,
                "forced level must stick (spec {})",
                spec.label()
            );
            Some(exec)
        }
        Err(NormError::SimdUnsupported { .. }) => {
            eprintln!(
                "notice: skipping simd level '{}' — not supported on this host",
                level.name()
            );
            None
        }
        Err(other) => panic!("forced native build failed unexpectedly: {other}"),
    }
}

/// The tentpole sweep: every forced level × d × T × group mode, multi-group
/// calls, serial and partitioned across workers — all bit-identical to the
/// softfloat oracle.
///
/// The single heaviest oracle run (d = 256, T = 5, ~30 s per mode under a
/// debug-build softfloat) is release-only; CI's release bit-identity step
/// runs the complete grid.
#[test]
fn native_matches_emulated_for_every_forced_level() {
    for t in STEPS {
        for d in DIMS {
            if cfg!(debug_assertions) && d == 256 && t == 5 {
                eprintln!("notice: skipping d=256 t=5 in debug (release CI covers it)");
                continue;
            }
            // Keep the oracle cost bounded at d = 256: m only drives the
            // O(m·d²) covariance/apply stages, not the O(T·d³) iteration.
            let groups: &[usize] = if d >= 256 { &[3, 6] } else { &[1, 3, 7] };
            let total_rows: usize = groups.iter().sum();
            for mode in GroupMode::ALL {
                let spec = WhitenSpec::new().with_t(t).with_group_mode(mode);
                let mut input = Vec::with_capacity(total_rows * d);
                for (g, &m) in groups.iter().enumerate() {
                    input.extend(group_bits(m, d, 0x5EED + g as u64));
                }
                let mut expected = vec![0u32; input.len()];
                let rows = emulated_oracle(d, spec)
                    .whiten_groups(&input, &mut expected, groups, 1)
                    .expect("oracle whitening must succeed");
                assert_eq!(rows, total_rows);

                for level in FORCED_LEVELS {
                    let Some(mut native) = forced_native(d, spec, level) else {
                        continue;
                    };
                    for threads in [1, 3] {
                        let mut actual = vec![0u32; input.len()];
                        native
                            .whiten_groups(&input, &mut actual, groups, threads)
                            .expect("native whitening must succeed");
                        assert_bits_eq(
                            &expected,
                            &actual,
                            &format!(
                                "d={d} t={t} mode={mode} level={} threads={threads}",
                                level.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Auto resolution picks the best host level and the detailed single-group
/// path emits the same bits as the batch path — on both backends.
#[test]
fn auto_resolution_and_detailed_path_agree_with_batch() {
    let d = 16;
    let m = 5;
    let spec = WhitenSpec::default();
    let input = group_bits(m, d, 0xA0);
    for backend in [BackendKind::Emulated, BackendKind::Native] {
        let mut exec = build_whiten(backend, FormatKind::Fp32, d, spec, SimdLevel::Auto)
            .expect("auto always builds");
        assert_ne!(
            exec.simd_level(),
            SimdLevel::Auto,
            "resolved level is never reported as auto"
        );
        let mut batch = vec![0u32; input.len()];
        exec.whiten_groups(&input, &mut batch, &[m], 1).unwrap();
        let mut detailed = vec![0u32; input.len()];
        let detail = exec.whiten_group_detailed(&input, &mut detailed).unwrap();
        assert_bits_eq(
            &batch,
            &detailed,
            &format!("{} detailed-vs-batch", exec.label()),
        );
        assert!(detail.trace > 0.0, "trace of Σ must be positive");
        assert!(detail.scale > 0.0, "√(1/tr) must be positive");
    }
}

/// Forced vector levels are a hard error where they cannot run: the
/// emulator accepts only auto/scalar, and native AVX2 must fail cleanly on
/// hosts without the feature.
#[test]
fn forced_unavailable_levels_error_cleanly() {
    let spec = WhitenSpec::default();
    for level in [SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2] {
        let err = build_whiten(BackendKind::Emulated, FormatKind::Fp32, 8, spec, level)
            .err()
            .expect("emulated must reject forced vector levels");
        let text = err.to_string();
        assert!(
            text.contains(level.name()) && text.contains("emulated"),
            "unhelpful error: {text}"
        );
    }
    #[cfg(target_arch = "x86_64")]
    if !std::arch::is_x86_feature_detected!("avx2") {
        let err = build_whiten(
            BackendKind::Native,
            FormatKind::Fp32,
            8,
            spec,
            SimdLevel::Avx2,
        )
        .err()
        .expect("native avx2 must be rejected on a host without avx2");
        assert!(
            matches!(err, NormError::SimdUnsupported { .. }),
            "got {err:?}"
        );
    }
    // Native whitening is an f32 pipeline: narrow formats stay on the oracle.
    for format in [FormatKind::Fp16, FormatKind::Bf16] {
        let err = build_whiten(BackendKind::Native, format, 8, spec, SimdLevel::Auto)
            .err()
            .expect("native whitening must reject non-fp32 formats");
        assert!(
            matches!(err, NormError::BackendFormatMismatch { .. }),
            "got {err:?}"
        );
    }
}

/// Whitening through the service — serial, coalesced, and async — returns
/// exactly the bits of a direct executor call, and the whiten counters move.
#[test]
fn service_path_is_bit_identical_to_direct_executor() {
    let d = 16;
    let m = 6;
    let spec = WhitenSpec::default();
    let input = group_bits(m, d, 0xBEEF);
    let mut expected = vec![0u32; input.len()];
    emulated_oracle(d, spec)
        .whiten_groups(&input, &mut expected, &[m], 1)
        .unwrap();

    for backend in [BackendKind::Emulated, BackendKind::Native] {
        for coalescing in [false, true] {
            let service = ServiceConfig::new(d)
                .with_backend(backend)
                .with_whiten(spec)
                .with_coalescing(coalescing)
                .build()
                .expect("service must start");
            let response = service
                .submit(NormRequest::whiten_group(&input))
                .expect("whiten submit must succeed");
            assert_eq!(response.rows(), m);
            assert_bits_eq(
                &expected,
                response.bits(),
                &format!("service backend={backend:?} coalescing={coalescing}"),
            );

            let mut ticket = service
                .submit_async(NormRequest::whiten_group(&input))
                .expect("async whiten submit must succeed");
            let async_response = ticket.wait().expect("async whiten must complete");
            assert_bits_eq(
                &expected,
                async_response.bits(),
                &format!("async service backend={backend:?} coalescing={coalescing}"),
            );

            let stats = service.stats().snapshot();
            assert_eq!(stats.whiten_requests, 2, "both whiten submissions counted");
            assert_eq!(stats.whiten_rows, 2 * m as u64, "whitened rows counted");
            service.shutdown();
        }
    }
}

/// Mixed whiten + normalize traffic through one coalescing service: each
/// kind still gets exactly its direct-path bits.
#[test]
fn mixed_kind_rounds_keep_both_outputs_bit_exact() {
    let d = 8;
    let m = 4;
    let spec = WhitenSpec::default();
    let group = group_bits(m, d, 0xC0);
    let row = group_bits(1, d, 0xD0);

    let mut expected_group = vec![0u32; group.len()];
    emulated_oracle(d, spec)
        .whiten_groups(&group, &mut expected_group, &[m], 1)
        .unwrap();

    let service = ServiceConfig::new(d)
        .with_whiten(spec)
        .with_coalescing(true)
        .with_window(std::time::Duration::from_micros(200))
        .build()
        .expect("service must start");
    let expected_row = service
        .submit(NormRequest::bits(&row))
        .expect("norm submit must succeed")
        .bits()
        .to_vec();

    let tickets: Vec<_> = (0..8)
        .map(|i| {
            let request = if i % 2 == 0 {
                NormRequest::whiten_group(&group)
            } else {
                NormRequest::bits(&row)
            };
            service.submit_async(request).expect("submit_async")
        })
        .collect();
    for (i, mut ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().expect("mixed round must complete");
        if i % 2 == 0 {
            assert_bits_eq(
                &expected_group,
                response.bits(),
                &format!("mixed whiten #{i}"),
            );
        } else {
            assert_bits_eq(&expected_row, response.bits(), &format!("mixed norm #{i}"));
        }
    }
    service.shutdown();
}

/// Edge cases from the issue: m = 1 (degenerate covariance) stays finite
/// in raw mode and bit-identical across paths; m = 0 and ragged buffers
/// are rejected; T = 0 applies only the trace normalization.
#[test]
fn edge_case_groups_and_shapes() {
    let d = 4;

    // m = 1, raw mode: Σ = eps·I + xᵀx is rank-1-plus-ridge, still finite.
    let spec = WhitenSpec::new().with_group_mode(GroupMode::Raw);
    let single = group_bits(1, d, 0xE0);
    let mut expected = vec![0u32; d];
    emulated_oracle(d, spec)
        .whiten_groups(&single, &mut expected, &[1], 1)
        .unwrap();
    assert!(
        expected.iter().all(|&b| f32::from_bits(b).is_finite()),
        "m=1 raw whitening must stay finite"
    );
    // m = 1 in centering mode: xc = 0, output must be exactly 0 bits
    // (Σ = eps·I, and 0 times anything finite is 0).
    let center = WhitenSpec::new();
    let mut centered = vec![0u32; d];
    emulated_oracle(d, center)
        .whiten_groups(&single, &mut centered, &[1], 1)
        .unwrap();
    assert!(
        centered.iter().all(|&b| f32::from_bits(b) == 0.0),
        "centered m=1 group must whiten to exact zeros"
    );
    for level in FORCED_LEVELS {
        let Some(mut native) = forced_native(d, spec, level) else {
            continue;
        };
        let mut actual = vec![0u32; d];
        native.whiten_groups(&single, &mut actual, &[1], 1).unwrap();
        assert_bits_eq(
            &expected,
            &actual,
            &format!("m=1 raw level={}", level.name()),
        );
    }

    // m = 0 groups and empty group lists are rejected.
    let mut exec = emulated_oracle(d, spec);
    let mut out = vec![0u32; d];
    assert!(matches!(
        exec.whiten_groups(&single, &mut out, &[], 1),
        Err(NormError::EmptyRequest)
    ));
    assert!(matches!(
        exec.whiten_groups(&single, &mut out, &[1, 0], 1),
        Err(NormError::EmptyRequest)
    ));
    // A buffer that is not the concatenation the row counts describe.
    let err = exec
        .whiten_groups(&single, &mut out, &[2], 1)
        .expect_err("ragged buffer must be rejected");
    assert!(
        matches!(err, NormError::GroupShapeMismatch { .. }),
        "got {err:?}"
    );
    // Service-side: a whiten payload that is not a multiple of d.
    let service = ServiceConfig::new(d).build().expect("service must start");
    let ragged = vec![0x3F80_0000u32; d + 1];
    let err = service
        .submit(NormRequest::whiten_group(&ragged))
        .expect_err("service must reject ragged whiten groups");
    assert!(
        matches!(err, NormError::GroupShapeMismatch { .. }),
        "got {err:?}"
    );
    service.shutdown();

    // T = 0: P stays the identity, so y = xc · √(1/tr(Σ)) exactly.
    let spec0 = WhitenSpec::new().with_t(0);
    let m = 3;
    let group = group_bits(m, d, 0xF0);
    let mut out0 = vec![0u32; group.len()];
    let detail = emulated_oracle(d, spec0)
        .whiten_group_detailed(&group, &mut out0)
        .unwrap();
    assert_eq!(detail.residual, 0.0, "T=0 reports no residual");
    // Replicate the oracle's per-dimension mean in host f32 — emulated
    // FP32 arithmetic is correctly rounded, so the same operation chain
    // in host f32 lands on the same bits.
    let inv_m = 1.0f32 / m as f32;
    let mean: Vec<f32> = (0..d)
        .map(|j| {
            let mut acc = 0.0f32;
            for k in 0..m {
                acc += f32::from_bits(group[k * d + j]);
            }
            acc * inv_m
        })
        .collect();
    for (k, &yb) in out0.iter().enumerate() {
        let x = f32::from_bits(group[k]);
        let xc = x - mean[k % d];
        let want = xc * detail.scale as f32;
        assert_eq!(
            f32::from_bits(yb),
            want,
            "T=0 output must be the trace-normalized centered input (element {k})"
        );
    }
}

/// A canonical quiet NaN anywhere in the group poisons the covariance and
/// therefore the whole group's output — on every level, without panicking,
/// with native levels agreeing with each other bit for bit. (Emulated vs
/// native NaN payloads may differ — x86 hardware produces its own default
/// NaN — so the cross-backend claim stops at "all NaN".)
#[test]
fn nan_rows_propagate_to_the_whole_group() {
    let d = 8;
    let m = 4;
    let mut input = group_bits(m, d, 0x7C);
    input[d + 3] = 0x7FC0_0000; // canonical qNaN in row 1
    let spec = WhitenSpec::default();

    let mut oracle_out = vec![0u32; input.len()];
    emulated_oracle(d, spec)
        .whiten_groups(&input, &mut oracle_out, &[m], 1)
        .unwrap();
    assert!(
        oracle_out.iter().all(|&b| f32::from_bits(b).is_nan()),
        "oracle: NaN must poison the whole group"
    );

    let mut scalar_out = vec![0u32; input.len()];
    forced_native(d, spec, SimdLevel::Scalar)
        .expect("scalar always available")
        .whiten_groups(&input, &mut scalar_out, &[m], 1)
        .unwrap();
    assert!(
        scalar_out.iter().all(|&b| f32::from_bits(b).is_nan()),
        "native: NaN must poison the whole group"
    );
    for level in [SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2] {
        let Some(mut native) = forced_native(d, spec, level) else {
            continue;
        };
        let mut out = vec![0u32; input.len()];
        native.whiten_groups(&input, &mut out, &[m], 1).unwrap();
        assert_bits_eq(&scalar_out, &out, &format!("nan level={}", level.name()));
    }
}

/// d = 1 reduces whitening to the paper's scalar problem: Σ_N = 1 exactly,
/// the Newton–Schulz fixed point is P ≡ 1 for every T, and the output is
/// `xc · √(1/Σ)` — the same `x/√(mean square)` IterL2Norm approximates.
/// Compare against `MethodSpec::iterl2(5)` at the tolerance the paper's
/// five-step convergence guarantees.
#[test]
fn d1_whitening_is_consistent_with_iterl2() {
    let d = 1;
    let m = 16;
    // Center mode + tiny eps: whitening computes (x_k − μ)/√(var + eps).
    // Transposing the group into one iterl2 row of length m, LayerNorm
    // computes (x − μ)·√m/‖x − μ‖ = (x − μ)/rms(x − μ) — the same value,
    // up to IterL2's five-step rsqrt approximation error.
    let spec = WhitenSpec::new().with_eps(1e-9);
    let input = group_bits(m, d, 0x11);
    let mut whitened = vec![0u32; input.len()];
    emulated_oracle(d, spec)
        .whiten_groups(&input, &mut whitened, &[m], 1)
        .unwrap();

    let service = ServiceConfig::new(m)
        .with_method(MethodSpec::iterl2(5))
        .build()
        .expect("service must start");
    let normed = service
        .submit(NormRequest::bits(&input))
        .expect("iterl2 submit must succeed");
    service.shutdown();

    for (k, (&wb, &nb)) in whitened.iter().zip(normed.bits().iter()).enumerate() {
        let w = f64::from(f32::from_bits(wb));
        let n = f64::from(f32::from_bits(nb));
        assert!(
            (w - n).abs() <= 1e-2 * n.abs().max(1.0),
            "d=1 whitening {w} vs iterl2 {n} diverge at element {k}"
        );
    }
}

/// `whiten_group_checked` through the service front door: a generous bar
/// passes with diagnostics, an impossible bar reports the measured
/// residual. The group is well conditioned (m ≫ d) — with m < d the
/// rank-deficient Σ makes f32 Newton–Schulz stall or diverge, which is
/// exactly the failure mode this check exists to report.
#[test]
fn convergence_check_reports_residual_honestly() {
    let d = 16;
    let m = 64;
    let input = group_bits(m, d, 0x33);
    let mut out = vec![0u32; input.len()];

    let service = ServiceConfig::new(d)
        .with_whiten(WhitenSpec::new().with_t(9))
        .build()
        .expect("service must start");
    let detail = service
        .whiten_check(&input, &mut out, 1e-2)
        .expect("nine Newton–Schulz steps must converge for a well-conditioned d=16 group");
    assert!(
        detail.residual < 1e-2,
        "residual {} not under bar",
        detail.residual
    );
    let err = service
        .whiten_check(&input, &mut out, 0.0)
        .expect_err("a zero tolerance is unsatisfiable");
    match err {
        NormError::WhitenNotConverged {
            steps,
            residual_bits,
            tol_bits,
        } => {
            assert_eq!(steps, 9);
            assert_eq!(f64::from_bits(residual_bits), detail.residual);
            assert_eq!(f64::from_bits(tol_bits), 0.0);
        }
        other => panic!("expected WhitenNotConverged, got {other:?}"),
    }
    service.shutdown();
}
