//! Batch-vs-single consistency of the `Normalizer` engine: for every
//! format, every registry method and a spread of vector lengths, the batch
//! path must reproduce the per-vector `layer_norm` output bit for bit —
//! including the `m = 0` constant-row edge case — and a plan built once
//! must match the seed implementation's per-call constant rounding.

use iterl2norm::{
    layer_norm, LayerNormInputs, MethodSpec, NormPlan, Normalizer, ReduceOrder, RsqrtScale,
};
use softfloat::{Bf16, Float, Fp16, Fp32};

/// Vector lengths covering one partial chunk, exact chunk multiples and
/// multi-fold partial-sum buffers.
const DIMS: [usize; 5] = [1, 8, 64, 129, 384];

/// Deterministic pseudo-activation batch: `rows` rows of length `d`, with
/// the last row constant (mean shift cancels exactly, so `m = 0`).
fn batch_with_constant_row<F: Float>(d: usize, rows: usize) -> Vec<F> {
    let mut flat: Vec<F> = (0..(rows - 1) * d)
        .map(|i| F::from_f64((((i as u64).wrapping_mul(2654435761) % 2000) as f64) / 500.0 - 2.0))
        .collect();
    flat.extend((0..d).map(|_| F::from_f64(3.25)));
    flat
}

fn assert_batch_matches_single<F: Float>() {
    const ROWS: usize = 4;
    for spec in MethodSpec::REGISTRY {
        for d in DIMS {
            let flat = batch_with_constant_row::<F>(d, ROWS);
            for reduce in [ReduceOrder::HwTree, ReduceOrder::Linear] {
                let plan = NormPlan::<F>::new(d).unwrap().with_reduce(reduce);
                let mut engine = Normalizer::for_plan(spec.build::<F>(), &plan);
                let mut out = vec![F::zero(); flat.len()];
                let rows = engine.normalize_batch(&plan, &flat, &mut out).unwrap();
                assert_eq!(rows, ROWS);
                for (row_idx, x_row) in flat.chunks_exact(d).enumerate() {
                    let single = layer_norm(
                        LayerNormInputs::unscaled(x_row).with_reduce(reduce),
                        engine.method(),
                    )
                    .unwrap();
                    let batch_row = &out[row_idx * d..(row_idx + 1) * d];
                    for (col, (a, b)) in batch_row.iter().zip(&single).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} {} d={d} reduce={reduce:?} row {row_idx} col {col}: \
                             batch {} vs single {}",
                            F::NAME,
                            spec.label(),
                            a.to_f64(),
                            b.to_f64()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batch_matches_single_fp32() {
    assert_batch_matches_single::<Fp32>();
}

#[test]
fn batch_matches_single_fp16() {
    assert_batch_matches_single::<Fp16>();
}

#[test]
fn batch_matches_single_bf16() {
    assert_batch_matches_single::<Bf16>();
}

#[test]
fn batch_in_place_matches_batch_into_all_formats() {
    fn check<F: Float>() {
        let d = 96;
        let flat = batch_with_constant_row::<F>(d, 3);
        let plan = NormPlan::<F>::new(d).unwrap();
        let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<F>(), &plan);
        let mut out = vec![F::zero(); flat.len()];
        engine.normalize_batch(&plan, &flat, &mut out).unwrap();
        let mut in_place = flat.clone();
        engine
            .normalize_batch_in_place(&plan, &mut in_place)
            .unwrap();
        for (a, b) in out.iter().zip(&in_place) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}", F::NAME);
        }
    }
    check::<Fp32>();
    check::<Fp16>();
    check::<Bf16>();
}

#[test]
fn constant_row_normalizes_to_beta_through_the_batch_path() {
    // m = 0 ⇒ y = 0 ⇒ for every method with a non-NaN scale at m = 0 the
    // output is exactly 0·γ + β = β. The LUT baseline defines rsqrt(0) as
    // NaN, so for it the contract is batch ≡ single (NaN bits included),
    // which the next loop asserts for all methods anyway.
    let d = 64;
    let gamma = vec![Fp32::from_f64(1.5); d];
    let beta = vec![Fp32::from_f64(-0.75); d];
    let plan = NormPlan::new(d)
        .unwrap()
        .with_affine(&gamma, &beta)
        .unwrap();
    for spec in MethodSpec::REGISTRY {
        let mut engine = Normalizer::for_plan(spec.build::<Fp32>(), &plan);
        let flat = vec![Fp32::from_f64(3.25); 2 * d];
        let mut out = vec![Fp32::ZERO; 2 * d];
        engine.normalize_batch(&plan, &flat, &mut out).unwrap();
        let single = layer_norm(
            LayerNormInputs::new(&flat[..d], &gamma, &beta),
            engine.method(),
        )
        .unwrap();
        for (row_idx, row) in out.chunks_exact(d).enumerate() {
            for (a, b) in row.iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} row {row_idx}", spec.label());
            }
        }
        if !matches!(spec, MethodSpec::Lut { .. }) {
            for z in &out {
                assert_eq!(z.to_f64(), -0.75, "{}", spec.label());
            }
        }
    }
}

/// The seed repository's per-call pipeline, reimplemented verbatim: fresh
/// `Vec`s for `y` and `z`, constants re-rounded inside the call, scale via
/// `scale_factor(m, d)`. The regression contract of the plan refactor is
/// that the engine reproduces this bit for bit.
fn seed_layer_norm<F: Float, S: RsqrtScale<F>>(
    x: &[F],
    gamma: Option<&[F]>,
    beta: Option<&[F]>,
    reduce: ReduceOrder,
    method: &S,
) -> Vec<F> {
    let d = x.len();
    let inv_d = F::from_f64(1.0 / d as f64);
    let mean = reduce.sum(x) * inv_d;
    let y: Vec<F> = x.iter().map(|&xi| xi - mean).collect();
    let m = reduce.sum_sq(&y);
    let scale = method.scale_factor(m, d);
    let mut z: Vec<F> = y.iter().map(|&yi| yi * scale).collect();
    if let Some(g) = gamma {
        for (zi, &gi) in z.iter_mut().zip(g) {
            *zi = *zi * gi;
        }
    }
    if let Some(b) = beta {
        for (zi, &bi) in z.iter_mut().zip(b) {
            *zi = *zi + bi;
        }
    }
    z
}

#[test]
fn plan_built_once_matches_seed_per_call_path_bitwise() {
    fn check<F: Float>() {
        for spec in MethodSpec::REGISTRY {
            for d in DIMS {
                let x: Vec<F> = (0..d)
                    .map(|i| F::from_f64(((i * 37 % 113) as f64) / 28.0 - 2.0))
                    .collect();
                let gamma: Vec<F> = (0..d)
                    .map(|i| F::from_f64(1.0 + (i % 5) as f64 * 0.1))
                    .collect();
                let beta: Vec<F> = (0..d)
                    .map(|i| F::from_f64((i % 3) as f64 * 0.25 - 0.25))
                    .collect();
                let plan = NormPlan::new(d)
                    .unwrap()
                    .with_affine(&gamma, &beta)
                    .unwrap();
                // One plan, many calls: every call must equal the seed path.
                let mut engine = Normalizer::for_plan(spec.build::<F>(), &plan);
                let expected = seed_layer_norm(
                    &x,
                    Some(&gamma),
                    Some(&beta),
                    ReduceOrder::HwTree,
                    engine.method(),
                );
                let mut out = vec![F::zero(); d];
                for call in 0..3 {
                    engine.normalize_into(&plan, &x, &mut out).unwrap();
                    for (a, b) in out.iter().zip(&expected) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} {} d={d} call {call}",
                            F::NAME,
                            spec.label()
                        );
                    }
                }
            }
        }
    }
    check::<Fp32>();
    check::<Fp16>();
    check::<Bf16>();
}

#[test]
fn detailed_wrapper_matches_engine_stats() {
    let d = 192;
    let x: Vec<Fp32> = (0..d)
        .map(|i| Fp32::from_f64((i as f64 * 0.713).cos()))
        .collect();
    let plan = NormPlan::<Fp32>::new(d).unwrap();
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
    let mut out = vec![Fp32::ZERO; d];
    let stats = engine.normalize_into(&plan, &x, &mut out).unwrap();
    let detailed =
        iterl2norm::layer_norm_detailed(LayerNormInputs::unscaled(&x), engine.method()).unwrap();
    assert_eq!(stats.mean.to_bits(), detailed.mean.to_bits());
    assert_eq!(stats.m.to_bits(), detailed.m.to_bits());
    assert_eq!(stats.scale.to_bits(), detailed.scale.to_bits());
    for (a, b) in out.iter().zip(&detailed.z) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
