//! Proof of the engine's zero-allocation hot path: a counting global
//! allocator observes `normalize_into` / `normalize_in_place` /
//! `normalize_batch` after plan construction and asserts that not a single
//! heap allocation happens on the calling thread.

// The counting allocator below is the one test in the workspace that needs
// unsafe outside the SIMD kernels; it opts in explicitly per L002.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use iterl2norm::{MethodSpec, NormPlan, Normalizer, ReduceOrder};
use softfloat::{Bf16, Float, Fp16, Fp32};

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a thread-local counter bump (const-initialized Cell, so
// the TLS access itself never allocates).
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System.alloc`, to which this forwards.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: same ptr/layout contract as `System.dealloc`, to which this forwards.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same ptr/layout contract as `System.realloc`, to which this forwards.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOC_COUNT.with(Cell::get)
}

fn assert_hot_path_allocation_free<F: Float>(d: usize, rows: usize) {
    for spec in MethodSpec::REGISTRY {
        for reduce in [ReduceOrder::HwTree, ReduceOrder::Linear] {
            // Setup (may allocate): plan, engine, buffers, method tables.
            let gamma: Vec<F> = (0..d)
                .map(|i| F::from_f64(1.0 + (i % 3) as f64 * 0.5))
                .collect();
            let beta: Vec<F> = (0..d).map(|_| F::from_f64(0.125)).collect();
            let plan = NormPlan::new(d)
                .unwrap()
                .with_reduce(reduce)
                .with_affine(&gamma, &beta)
                .unwrap();
            let mut engine = Normalizer::for_plan(spec.build::<F>(), &plan);
            let flat: Vec<F> = (0..rows * d)
                .map(|i| F::from_f64(((i * 29 % 97) as f64) / 24.0 - 2.0))
                .collect();
            let mut out = vec![F::zero(); flat.len()];
            let mut row = flat[..d].to_vec();

            // Hot path: everything below must allocate nothing.
            let before = allocations();
            for _ in 0..4 {
                engine
                    .normalize_batch(&plan, &flat, &mut out)
                    .expect("batch shape");
                engine
                    .normalize_into(&plan, &flat[..d], &mut row)
                    .expect("row shape");
                engine
                    .normalize_in_place(&plan, &mut row)
                    .expect("row shape");
                engine
                    .normalize_batch_in_place(&plan, &mut out)
                    .expect("batch shape");
            }
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "{} {} reduce={reduce:?} d={d}: hot path allocated {} times",
                F::NAME,
                spec.label(),
                after - before
            );
        }
    }
}

#[test]
fn hot_path_is_allocation_free_fp32() {
    assert_hot_path_allocation_free::<Fp32>(768, 8);
}

#[test]
fn hot_path_is_allocation_free_fp16() {
    assert_hot_path_allocation_free::<Fp16>(384, 4);
}

#[test]
fn hot_path_is_allocation_free_bf16() {
    assert_hot_path_allocation_free::<Bf16>(129, 3);
}

#[test]
fn one_shot_wrapper_does_allocate_as_documented() {
    // Sanity check that the counter actually observes this thread's
    // allocations: the compatibility wrapper allocates its output Vec.
    let x: Vec<Fp32> = (0..64).map(|i| Fp32::from_f64(i as f64)).collect();
    let before = allocations();
    let z = iterl2norm::layer_norm(
        iterl2norm::LayerNormInputs::unscaled(&x),
        &iterl2norm::IterL2Norm::new(),
    )
    .unwrap();
    let after = allocations();
    assert!(after > before, "counter failed to observe an allocation");
    assert_eq!(z.len(), 64);
}
