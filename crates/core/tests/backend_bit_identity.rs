//! The execution-backend contract, enforced: `NativeF32` output is
//! bit-identical to `Emulated<Fp32>` for every scale method and reduction
//! order, and parallel batches are bit-identical to serial ones for every
//! tested thread count.
//!
//! The row set deliberately includes the hard cases: subnormal-heavy rows
//! (FP32 exponent fields 0..=2), all-`+0` and all-`−0` rows, and the
//! constant row whose mean shift produces `m = 0` (for the LUT method that
//! path emits NaN — canonical on both backends, so even it compares
//! bit-equal). CI runs this suite in debug *and* release mode: optimizer
//! levels may only change float codegen if the bit-ops were wrong.

use iterl2norm::backend::{
    build_backend, build_backend_simd, BackendKind, Emulated, FormatKind, NativeF32,
};
use iterl2norm::{
    MethodSpec, NormBackend, NormError, NormPlan, Normalizer, ReduceOrder, SimdLevel,
};
use softfloat::{Float, Fp32, HostF32};
use workloads::{Distribution, VectorGen};

const DIMS: [usize; 5] = [1, 7, 64, 384, 768];
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// A deterministic FP32 bit pattern with exponent field 0..=2: subnormals
/// and the smallest normals, mixed signs.
fn subnormal_bits(i: u64) -> u32 {
    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mant_and_sign = (h as u32) & 0x807F_FFFF;
    let exp = ((h >> 32) % 3) as u32;
    mant_and_sign | (exp << 23)
}

/// The test batch for one dimension: random rows from two distributions
/// plus the directed edge-case rows, as raw FP32 bit patterns.
fn batch_bits(d: usize) -> Vec<u32> {
    let mut bits = Vec::new();
    let uniform = VectorGen::new(Distribution::Uniform, 0x000B_171D);
    let wide = VectorGen::new(Distribution::WideDynamicRange, 0x000B_172D);
    for index in 0..3 {
        for v in uniform.vector_f64(d, index) {
            bits.push(Fp32::from_f64(v).to_bits());
        }
    }
    for v in wide.vector_f64(d, 0) {
        bits.push(Fp32::from_f64(v).to_bits());
    }
    // All +0, all −0, and the constant row (mean shift → m = 0).
    bits.extend(std::iter::repeat_n(0u32, d));
    bits.extend(std::iter::repeat_n(0x8000_0000u32, d));
    bits.extend(std::iter::repeat_n(Fp32::from_f64(3.25).to_bits(), d));
    // Subnormal-heavy row.
    bits.extend((0..d as u64).map(subnormal_bits));
    bits
}

fn assert_bits_eq(a: &[u32], b: &[u32], context: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x, y,
            "{context}: element {i} differs ({x:#010x} vs {y:#010x})"
        );
    }
}

#[test]
fn native_matches_emulated_for_every_method_dim_and_order() {
    for spec in MethodSpec::REGISTRY {
        for d in DIMS {
            for reduce in [ReduceOrder::HwTree, ReduceOrder::Linear] {
                let input = batch_bits(d);
                let mut emulated =
                    build_backend(BackendKind::Emulated, FormatKind::Fp32, d, &spec, reduce)
                        .unwrap();
                let mut native =
                    build_backend(BackendKind::Native, FormatKind::Fp32, d, &spec, reduce).unwrap();
                let mut out_e = vec![0u32; input.len()];
                let mut out_n = vec![0u32; input.len()];
                let rows_e = emulated
                    .normalize_batch_bits(&input, &mut out_e, 1)
                    .unwrap();
                let rows_n = native.normalize_batch_bits(&input, &mut out_n, 1).unwrap();
                assert_eq!(rows_e, rows_n);
                assert_bits_eq(
                    &out_e,
                    &out_n,
                    &format!("{} d={d} reduce={reduce:?}", spec.label()),
                );
            }
        }
    }
}

#[test]
fn native_matches_emulated_with_affine_plans() {
    let d = 384;
    let spec = MethodSpec::iterl2(5);
    let gamma: Vec<Fp32> = (0..d)
        .map(|i| Fp32::from_f64(0.75 + (i % 5) as f64 * 0.1))
        .collect();
    let beta: Vec<Fp32> = (0..d)
        .map(|i| Fp32::from_f64((i % 7) as f64 * 0.03 - 0.1))
        .collect();
    let plan = NormPlan::new(d)
        .unwrap()
        .with_affine(&gamma, &beta)
        .unwrap();
    let mut emulated = Emulated::new(plan.clone(), &spec);
    let mut native = NativeF32::from_fp32_plan(&plan, &spec);

    let input = batch_bits(d);
    let mut out_e = vec![0u32; input.len()];
    let mut out_n = vec![0u32; input.len()];
    emulated
        .normalize_batch_bits(&input, &mut out_e, 1)
        .unwrap();
    native.normalize_batch_bits(&input, &mut out_n, 1).unwrap();
    assert_bits_eq(&out_e, &out_n, "affine iterl2[5] d=384");
}

#[test]
fn parallel_batches_match_serial_for_all_thread_counts() {
    // 37 rows of d = 129: never an even split, so the partition logic's
    // remainder handling is always exercised.
    let (d, rows) = (129, 37);
    let gen = VectorGen::new(Distribution::Uniform, 0x9A9_A9A);
    let mut flat: Vec<Fp32> = Vec::with_capacity(rows * d);
    for r in 0..rows as u64 {
        flat.extend(gen.vector_f64(d, r).iter().map(|&v| Fp32::from_f64(v)));
    }
    for spec in MethodSpec::REGISTRY {
        let plan = NormPlan::<Fp32>::new(d).unwrap();
        let mut engine = Normalizer::for_plan(spec.build::<Fp32>(), &plan);
        let mut serial = vec![Fp32::ZERO; flat.len()];
        engine.normalize_batch(&plan, &flat, &mut serial).unwrap();
        for threads in THREADS {
            let mut parallel = vec![Fp32::ZERO; flat.len()];
            let done = engine
                .normalize_batch_parallel(&plan, &flat, &mut parallel, threads)
                .unwrap();
            assert_eq!(done, rows);
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} threads={threads}: element {i}",
                    spec.label()
                );
            }
            // In-place partitioning must agree too.
            let mut in_place = flat.clone();
            engine
                .normalize_batch_parallel_in_place(&plan, &mut in_place, threads)
                .unwrap();
            for (a, b) in serial.iter().zip(&in_place) {
                assert_eq!(a.to_bits(), b.to_bits(), "in-place threads={threads}");
            }
        }
    }
}

#[test]
fn parallel_native_matches_serial_emulated_end_to_end() {
    // The full cross: emulated serial (the paper-faithful reference) vs
    // native multi-threaded (the serving configuration) — still bit-equal.
    let d = 768;
    let spec = MethodSpec::iterl2(5);
    let input = batch_bits(d);
    let mut reference = vec![0u32; input.len()];
    build_backend(
        BackendKind::Emulated,
        FormatKind::Fp32,
        d,
        &spec,
        ReduceOrder::HwTree,
    )
    .unwrap()
    .normalize_batch_bits(&input, &mut reference, 1)
    .unwrap();
    for threads in THREADS {
        let mut out = vec![0u32; input.len()];
        build_backend(
            BackendKind::Native,
            FormatKind::Fp32,
            d,
            &spec,
            ReduceOrder::HwTree,
        )
        .unwrap()
        .normalize_batch_bits(&input, &mut out, threads)
        .unwrap();
        assert_bits_eq(&out, &reference, &format!("native threads={threads}"));
    }
}

#[test]
fn parallel_preserves_row_stats_independence() {
    // More threads than rows, exactly as many, and single-row batches all
    // take well-defined paths.
    let d = 64;
    let plan = NormPlan::<HostF32>::new(d).unwrap();
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<HostF32>(), &plan);
    for rows in [0usize, 1, 2, 7] {
        let flat: Vec<HostF32> = (0..rows * d)
            .map(|i| HostF32::from_f64(((i * 37 % 101) as f64) / 17.0 - 2.0))
            .collect();
        let mut serial = vec![HostF32::ZERO; flat.len()];
        engine.normalize_batch(&plan, &flat, &mut serial).unwrap();
        let mut parallel = vec![HostF32::ZERO; flat.len()];
        let done = engine
            .normalize_batch_parallel(&plan, &flat, &mut parallel, 16)
            .unwrap();
        assert_eq!(done, rows);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits(), "rows={rows}");
        }
    }
}

// --------------------------------------------------------------------
// SIMD tier: every forced level ≡ forced scalar ≡ emulated, bitwise.
// --------------------------------------------------------------------

/// The SIMD sweep's dimensions: below/at/above one 8-lane group, one full
/// 64-element hardware chunk, the paper's transformer widths, and a
/// many-chunk width that exercises the partial-fold tree.
const SIMD_DIMS: [usize; 8] = [1, 7, 8, 9, 64, 384, 768, 4096];

/// Every *forced* level (never `Auto` — the sweep must know exactly which
/// kernel ran).
const FORCED_LEVELS: [SimdLevel; 4] = [
    SimdLevel::Scalar,
    SimdLevel::Portable,
    SimdLevel::Sse2,
    SimdLevel::Avx2,
];

/// Build the native backend at a forced level, or `None` (with a notice on
/// stderr) when this host cannot run it. Any error other than
/// [`NormError::SimdUnsupported`] is a bug.
fn forced_native(
    d: usize,
    spec: &MethodSpec,
    reduce: ReduceOrder,
    level: SimdLevel,
) -> Option<Box<dyn NormBackend>> {
    match build_backend_simd(
        BackendKind::Native,
        FormatKind::Fp32,
        d,
        spec,
        reduce,
        level,
    ) {
        Ok(backend) => Some(backend),
        Err(NormError::SimdUnsupported { .. }) => {
            eprintln!("notice: skipping simd level '{level}': unsupported on this host");
            None
        }
        Err(other) => panic!("forcing simd level '{level}' failed unexpectedly: {other}"),
    }
}

#[test]
fn every_simd_level_matches_emulated_for_every_method_dim_and_order() {
    for spec in MethodSpec::REGISTRY {
        for d in SIMD_DIMS {
            for reduce in [ReduceOrder::HwTree, ReduceOrder::Linear] {
                let input = batch_bits(d);
                // One emulated reference per (method, d, order) — the
                // paper-faithful oracle every level must reproduce.
                let mut reference = vec![0u32; input.len()];
                build_backend(BackendKind::Emulated, FormatKind::Fp32, d, &spec, reduce)
                    .unwrap()
                    .normalize_batch_bits(&input, &mut reference, 1)
                    .unwrap();
                for level in FORCED_LEVELS {
                    let Some(mut native) = forced_native(d, &spec, reduce, level) else {
                        continue;
                    };
                    assert_eq!(native.simd_level(), level, "forced level must stick");
                    for threads in [1usize, 3] {
                        let mut out = vec![0u32; input.len()];
                        let rows = native
                            .normalize_batch_bits(&input, &mut out, threads)
                            .unwrap();
                        assert_eq!(rows * d, input.len());
                        assert_bits_eq(
                            &out,
                            &reference,
                            &format!(
                                "{} d={d} reduce={reduce:?} simd={level} threads={threads}",
                                spec.label()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Compare a NaN-seeded batch native-scalar vs every native vector level,
/// bitwise, after asserting the scalar reference really produced NaNs.
fn assert_nan_batch_bit_stable(d: usize, spec: &MethodSpec, bits: &[u32], context: &str) {
    let Some(mut scalar) = forced_native(d, spec, ReduceOrder::HwTree, SimdLevel::Scalar) else {
        return;
    };
    let mut reference = vec![0u32; bits.len()];
    scalar
        .normalize_batch_bits(bits, &mut reference, 1)
        .unwrap();
    // Every NaN-seeded row must come out all-NaN — the rows would
    // otherwise not exercise payload propagation at all.
    assert!(
        reference
            .iter()
            .all(|&b| (b & 0x7F80_0000) == 0x7F80_0000 && (b & 0x007F_FFFF) != 0),
        "{context}: NaN rows must normalize to NaNs"
    );
    for level in [SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2] {
        let Some(mut native) = forced_native(d, spec, ReduceOrder::HwTree, level) else {
            continue;
        };
        let mut out = vec![0u32; bits.len()];
        native.normalize_batch_bits(bits, &mut out, 1).unwrap();
        assert_bits_eq(&out, &reference, &format!("{context} simd={level}"));
    }
}

#[test]
fn nan_rows_are_bit_stable_across_simd_levels_for_every_method() {
    // The emulator canonicalizes NaNs, so NaN handling is compared
    // native-scalar vs native-vector only. x86 propagates one *operand's*
    // payload through arithmetic, and LLVM does not pin operand order for
    // commutable float ops — so an all-methods row must keep every NaN in
    // flight at the *canonical* bits 0x7FC0_0000 (methods like `lut` turn
    // a NaN `m` into a canonical-NaN scale, and mixing payloads at the
    // final multiply would be order-dependent, not a kernel bug).
    let canonical = 0x7FC0_0000u32;
    for d in [7usize, 67, 384] {
        let mut bits = Vec::new();
        let mut single = batch_row(d, 0.25, 0.01);
        single[d / 2] = canonical;
        bits.extend(&single);
        bits.extend(std::iter::repeat_n(canonical, d));
        for spec in MethodSpec::REGISTRY {
            assert_nan_batch_bit_stable(
                d,
                &spec,
                &bits,
                &format!("{} d={d} canonical NaN", spec.label()),
            );
        }
    }
}

#[test]
fn iterl2_preserves_distinct_nan_payloads_across_simd_levels() {
    // The paper's method is pure bit-ops plus same-payload arithmetic on a
    // NaN `m`, so *every* NaN in flight carries the seeded payload and the
    // comparison is commutation-proof even for distinctive payloads:
    // a single quiet NaN, an all-identical negative-NaN row, and a single
    // signaling NaN (which hardware quiets to payload|quiet-bit — the
    // exact bits its quiet descendants carry).
    let quiet = 0x7FC1_2345u32;
    let quiet_neg = 0xFFC0_00ABu32;
    let signaling = 0x7F80_0001u32;
    let spec = MethodSpec::iterl2(5);
    for d in [7usize, 67, 384] {
        let mut bits = Vec::new();
        let mut single = batch_row(d, 0.25, 0.01);
        single[d / 2] = quiet;
        bits.extend(&single);
        bits.extend(std::iter::repeat_n(quiet_neg, d));
        let mut snan = batch_row(d, -1.5, 0.02);
        snan[0] = signaling;
        bits.extend(&snan);
        assert_nan_batch_bit_stable(d, &spec, &bits, &format!("iterl2 d={d} NaN payloads"));
    }
}

/// A deterministic non-NaN row as raw FP32 bits.
fn batch_row(d: usize, base: f64, step: f64) -> Vec<u32> {
    (0..d)
        .map(|i| Fp32::from_f64(base + i as f64 * step).to_bits())
        .collect()
}

#[test]
fn forced_unavailable_levels_error_instead_of_downgrading() {
    let spec = MethodSpec::iterl2(5);
    // The emulated backend has no vector tier: every forced vector level
    // is a clean, nameable error — never a silent fall-through to scalar.
    for level in [SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2] {
        let err = match build_backend_simd(
            BackendKind::Emulated,
            FormatKind::Fp32,
            64,
            &spec,
            ReduceOrder::HwTree,
            level,
        ) {
            Err(e) => e,
            Ok(_) => panic!("emulated backend accepted forced level '{level}'"),
        };
        assert!(
            matches!(err, NormError::SimdUnsupported { .. }),
            "expected SimdUnsupported, got {err}"
        );
        let text = err.to_string();
        assert!(
            text.contains(level.name()) && text.contains("emulated"),
            "{text}"
        );
    }
    // On a host without AVX2, forcing it on the native backend errors the
    // same way (cannot be asserted unconditionally — CI hosts vary).
    #[cfg(target_arch = "x86_64")]
    if !std::arch::is_x86_feature_detected!("avx2") {
        let err = match build_backend_simd(
            BackendKind::Native,
            FormatKind::Fp32,
            64,
            &spec,
            ReduceOrder::HwTree,
            SimdLevel::Avx2,
        ) {
            Err(e) => e,
            Ok(_) => panic!("host without avx2 accepted forced avx2"),
        };
        assert!(matches!(err, NormError::SimdUnsupported { .. }), "{err}");
    }
    // Auto must always build on both backends, resolving to a concrete
    // level (never reporting Auto back).
    for backend in BackendKind::ALL {
        let b = build_backend_simd(
            backend,
            FormatKind::Fp32,
            64,
            &spec,
            ReduceOrder::HwTree,
            SimdLevel::Auto,
        )
        .unwrap();
        assert_ne!(b.simd_level(), SimdLevel::Auto);
    }
}

#[test]
fn parallel_entry_points_reject_zero_threads() {
    let d = 16;
    let plan = NormPlan::<Fp32>::new(d).unwrap();
    let mut engine = Normalizer::from_spec(&MethodSpec::iterl2(5));
    let input = vec![Fp32::ONE; d * 4];
    let mut out = vec![Fp32::ZERO; d * 4];
    assert_eq!(
        engine
            .normalize_batch_parallel(&plan, &input, &mut out, 0)
            .unwrap_err(),
        NormError::ZeroThreads
    );
    let mut data = input.clone();
    assert_eq!(
        engine
            .normalize_batch_parallel_in_place(&plan, &mut data, 0)
            .unwrap_err(),
        NormError::ZeroThreads
    );
    // Shape errors still surface through the parallel path.
    let mut short = vec![Fp32::ZERO; d];
    assert_eq!(
        engine
            .normalize_batch_parallel(&plan, &input, &mut short, 2)
            .unwrap_err(),
        NormError::OutputLengthMismatch {
            expected: d * 4,
            actual: d
        }
    );
}
