//! Accuracy characterization of every baseline against the exact
//! reference, on the distributions the experiments use — bounds that the
//! Table I / Table III comparisons rely on.

use iterl2norm::baselines::intsqrt::IntLayerNorm;
use iterl2norm::baselines::sole::SoleLayerNorm;
use iterl2norm::baselines::{ExactRsqrtNorm, Fisr, LutRsqrt};
use iterl2norm::{layer_norm, IterL2Norm, LayerNormInputs, RsqrtScale};
use iterl2norm::{metrics::ErrorStats, reference};
use softfloat::{Bf16, Float, Fp16, Fp32};
use workloads::{Distribution, VectorGen};

fn sweep<F: Float, S: RsqrtScale<F>>(d: usize, trials: u64, method: &S) -> ErrorStats {
    let gen = VectorGen::paper();
    let mut stats = ErrorStats::new();
    for i in 0..trials {
        let x: Vec<F> = gen.vector(d, i);
        let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let z = layer_norm(LayerNormInputs::unscaled(&x), method).unwrap();
        stats.record_vec(&z, &reference::normalize_f64(&xf, 1e-5));
    }
    stats
}

#[test]
fn exact_rsqrt_is_the_precision_ceiling() {
    // In-format exact rsqrt bounds what any m → scale method can achieve.
    let exact = sweep::<Fp32, _>(512, 30, &ExactRsqrtNorm::torch_eps());
    let iter = sweep::<Fp32, _>(512, 30, &IterL2Norm::with_steps(5));
    let fisr = sweep::<Fp32, _>(512, 30, &Fisr::canonical::<Fp32>());
    assert!(exact.avg_abs <= iter.avg_abs);
    assert!(exact.avg_abs <= fisr.avg_abs);
    assert!(exact.avg_abs < 1e-6, "ceiling {}", exact.avg_abs);
}

#[test]
fn fisr_error_is_flat_across_lengths() {
    // FISR's relative error depends only on the significand of σ², not on
    // d: averages across lengths stay within a factor ~2.5 of each other
    // (the significand of σ² does vary a little with d).
    let errs: Vec<f64> = [256usize, 512, 1024, 4096]
        .iter()
        .map(|&d| sweep::<Fp32, _>(d, 25, &Fisr::canonical::<Fp32>()).avg_abs)
        .collect();
    let max = errs.iter().cloned().fold(0.0f64, f64::max);
    let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 2.5,
        "FISR error varies too much across d: {errs:?}"
    );
}

#[test]
fn iterl2_error_varies_orders_of_magnitude_across_lengths() {
    // The contrast with FISR: the iteration's residual depends on where
    // ‖y‖² lands among significands, so per-d averages spread widely (the
    // paper's Table I FP32 column spans 0.015–61.8 ×1e−4).
    let errs: Vec<f64> = (1..=16)
        .map(|k| sweep::<Fp32, _>(64 * k, 25, &IterL2Norm::with_steps(5)).avg_abs)
        .collect();
    let max = errs.iter().cloned().fold(0.0f64, f64::max);
    let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min > 10.0,
        "expected order-of-magnitude spread, got {errs:?}"
    );
}

#[test]
fn lut_rsqrt_beats_fisr_with_enough_segments() {
    let lut = LutRsqrt::new(256);
    let stats = sweep::<Fp32, _>(768, 25, &lut);
    let fisr = sweep::<Fp32, _>(768, 25, &Fisr::canonical::<Fp32>());
    assert!(
        stats.avg_abs < fisr.avg_abs,
        "LUT(256) {} vs FISR {}",
        stats.avg_abs,
        fisr.avg_abs
    );
}

#[test]
fn bf16_format_floor_dominates_every_method() {
    // In BFloat16 all in-format methods land within a factor ~3 of each
    // other: the representation floor, not the algorithm, dominates.
    let iter = sweep::<Bf16, _>(768, 25, &IterL2Norm::with_steps(5)).avg_abs;
    let fisr = sweep::<Bf16, _>(768, 25, &Fisr::canonical::<Bf16>()).avg_abs;
    let exact = sweep::<Bf16, _>(768, 25, &ExactRsqrtNorm::torch_eps()).avg_abs;
    for (name, err) in [("iterl2", iter), ("fisr", fisr), ("exact", exact)] {
        assert!(
            err > 5e-4 && err < 1e-2,
            "{name} out of the bf16 floor band: {err}"
        );
    }
    assert!(iter / exact < 4.0, "iterl2 {iter} vs exact floor {exact}");
}

#[test]
fn integer_baselines_are_coarse_but_ordered() {
    // SwiftTron-style Q16.16 tracks the reference at ~1e−3; SOLE-style
    // INT8 with 4-bit statistics is coarser (~1e−1); both normalize.
    let x: Vec<f64> = (0..256)
        .map(|i| ((i * 41) % 173) as f64 / 60.0 - 1.4)
        .collect();
    let truth = reference::normalize_f64(&x, 0.0);

    let swift = IntLayerNorm::default();
    let swift_out = swift.dequantize(&swift.normalize(&swift.quantize(&x)));
    let swift_err: f64 = swift_out
        .iter()
        .zip(&truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / x.len() as f64;

    let sole = SoleLayerNorm::default();
    let (q, _) = sole.quantize(&x);
    let sole_out = sole.dequantize_output(&sole.normalize(&q));
    let sole_err: f64 = sole_out
        .iter()
        .zip(&truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / x.len() as f64;

    assert!(swift_err < 5e-3, "swifttron avg err {swift_err}");
    assert!(sole_err < 2e-1, "sole avg err {sole_err}");
    assert!(
        swift_err < sole_err,
        "Q16.16 ({swift_err}) should beat INT8/4-bit ({sole_err})"
    );
}

#[test]
fn all_float_methods_survive_stress_distributions() {
    // No method may produce NaN/inf on finite, varying inputs across the
    // stress workloads (near-constant inputs can legitimately blow up the
    // scale when variance underflows — excluded here).
    for dist in [
        Distribution::Uniform,
        Distribution::Gaussian,
        Distribution::OutlierSpiked,
    ] {
        let gen = VectorGen::new(dist, 321);
        for i in 0..10 {
            let x: Vec<Fp32> = gen.vector(384, i);
            for (name, z) in [
                (
                    "iterl2",
                    layer_norm(LayerNormInputs::unscaled(&x), &IterL2Norm::with_steps(5)).unwrap(),
                ),
                (
                    "fisr",
                    layer_norm(LayerNormInputs::unscaled(&x), &Fisr::canonical::<Fp32>()).unwrap(),
                ),
                (
                    "lut",
                    layer_norm(LayerNormInputs::unscaled(&x), &LutRsqrt::new(64)).unwrap(),
                ),
            ] {
                assert!(
                    z.iter().all(|v| v.is_finite()),
                    "{name} produced non-finite output on {dist:?} trial {i}"
                );
            }
        }
    }
}

#[test]
fn fp16_methods_against_each_other() {
    let iter = sweep::<Fp16, _>(1024, 25, &IterL2Norm::with_steps(5)).avg_abs;
    let fisr = sweep::<Fp16, _>(1024, 25, &Fisr::canonical::<Fp16>()).avg_abs;
    let lut = sweep::<Fp16, _>(1024, 25, &LutRsqrt::new(64)).avg_abs;
    // All at the FP16 floor, within a small factor of each other.
    for (name, err) in [("iterl2", iter), ("fisr", fisr), ("lut", lut)] {
        assert!(
            err > 1e-5 && err < 5e-3,
            "{name} outside fp16 floor band: {err}"
        );
    }
}
