//! Property-based tests of the scalar iteration: convergence across the
//! whole (significand, parity) landscape, stop-rule semantics, trace
//! invariants and configuration interplay.

use iterl2norm::{
    a0_from_exponent, iterate, lambda_from_exponent, InitRule, IterConfig, LambdaRule, StopRule,
    UpdateStyle,
};
use proptest::prelude::*;
use softfloat::{Bf16, Fp16, Fp32};

/// m values spanning every significand and both exponent parities within
/// a wide, format-safe exponent range.
fn m_strategy() -> impl Strategy<Value = f64> {
    (-24i32..24, 0u32..256).prop_map(|(e, frac)| (1.0 + frac as f64 / 256.0) * (e as f64).exp2())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Eq. 6: the bit-built seed always lands in [a∞/√2, a∞·√2).
    #[test]
    fn seed_always_within_sqrt2_of_fixed_point(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let a0 = a0_from_exponent(m).to_f64();
        let a_inf = 1.0 / m.to_f64().sqrt();
        let ratio = a0 / a_inf;
        prop_assert!((0.707..1.4143).contains(&ratio), "ratio {ratio} for m {m_val}");
    }

    /// Eq. 10: λ·m always lies in [0.345, 0.69) — the convergence window.
    #[test]
    fn lambda_m_always_in_window(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let lm = lambda_from_exponent(m).to_f64() * m.to_f64();
        prop_assert!((0.34..0.70).contains(&lm), "λ·m = {lm} for m {m_val}");
    }

    /// Eight steps land within 0.5% of 1/√m for every significand/parity.
    #[test]
    fn eight_steps_converge_everywhere_fp32(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let a = iterate(m, &IterConfig::fixed_steps(8)).final_a().to_f64();
        let rel = (a * m.to_f64().sqrt() - 1.0).abs();
        prop_assert!(rel < 5e-3, "rel err {rel} at m {m_val}");
    }

    /// The paper's five steps stay within the documented residual band
    /// (≤ ~6% worst case over significands, usually far better).
    #[test]
    fn five_step_residual_band(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let a = iterate(m, &IterConfig::fixed_steps(5)).final_a().to_f64();
        let rel = (a * m.to_f64().sqrt() - 1.0).abs();
        prop_assert!(rel < 0.06, "5-step residual {rel} at m {m_val}");
    }

    /// Fused and separate update styles agree to format precision-ish
    /// (they differ only in two roundings per step).
    #[test]
    fn fused_and_separate_agree_closely(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let sep = iterate(m, &IterConfig { update: UpdateStyle::Separate, ..IterConfig::fixed_steps(5) });
        let fus = iterate(m, &IterConfig { update: UpdateStyle::Fused, ..IterConfig::fixed_steps(5) });
        let a = sep.final_a().to_f64();
        let b = fus.final_a().to_f64();
        prop_assert!((a - b).abs() / a.abs().max(1e-30) < 1e-3,
            "separate {a} vs fused {b} at m {m_val}");
    }

    /// The tolerance cap is respected and the trace length matches.
    #[test]
    fn tolerance_cap_respected(m_val in m_strategy(), cap in 1u32..20) {
        let m = Fp32::from_f64(m_val);
        let trace = iterate(m, &IterConfig {
            stop: StopRule::ToleranceAbs { delta_max: 0.0, max_steps: cap },
            ..IterConfig::default()
        });
        // δ_max = 0 never satisfies |Δa| ≤ 0 until Δa rounds to exactly 0,
        // so the loop usually runs to the cap — never beyond it.
        prop_assert!(trace.len() as u32 <= cap);
    }

    /// FixedSteps(n) runs exactly n steps and the trace records them all.
    #[test]
    fn fixed_steps_trace_length(m_val in m_strategy(), n in 0u32..12) {
        let m = Fp32::from_f64(m_val);
        let trace = iterate(m, &IterConfig::fixed_steps(n));
        prop_assert_eq!(trace.len() as u32, n);
        if n == 0 {
            prop_assert_eq!(trace.final_a().to_bits(), trace.a0.to_bits());
        }
    }

    /// The |Δa| tolerance rule always runs at least one step, and when it
    /// exits *before* the cap the final step magnitude really was within
    /// δ_max (δ_max is an absolute threshold; for tiny m the fixed point
    /// a∞ = 1/√m is huge and the loop correctly runs to the cap instead).
    #[test]
    fn abs_tolerance_exit_implies_small_step(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let t = iterate(m, &IterConfig {
            stop: StopRule::ToleranceAbs { delta_max: 1e-4, max_steps: 30 },
            ..IterConfig::default()
        });
        prop_assert!(!t.is_empty());
        if (t.len() as u32) < 30 {
            // Early exit: the last recorded step difference must be small
            // (allowing the rounding slack of a + Δa in FP32).
            let last = t.steps[t.len() - 1].to_f64();
            let prev = if t.len() >= 2 { t.steps[t.len() - 2].to_f64() } else { t.a0.to_f64() };
            let slack = 1e-4 + last.abs() * 1e-6;
            prop_assert!((last - prev).abs() <= 1e-4 + slack,
                "early exit with step {} at m {}", (last - prev).abs(), m_val);
        }
    }

    /// The oracle seed dominates: with InitRule::ExactRsqrt the residual
    /// after 3 steps is never worse than with the Eq. 6 seed.
    #[test]
    fn oracle_seed_dominates(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        let target = 1.0 / m.to_f64().sqrt();
        let hw = iterate(m, &IterConfig::fixed_steps(3)).final_a().to_f64();
        let oracle = iterate(m, &IterConfig {
            init: InitRule::ExactRsqrt,
            ..IterConfig::fixed_steps(3)
        }).final_a().to_f64();
        prop_assert!((oracle - target).abs() <= (hw - target).abs() + 1e-9);
    }

    /// Oracle λ and Eq. 10 λ both converge; neither diverges anywhere.
    #[test]
    fn lambda_rules_never_diverge(m_val in m_strategy()) {
        let m = Fp32::from_f64(m_val);
        for lambda in [LambdaRule::HwExponent, LambdaRule::ExactInverse] {
            let a = iterate(m, &IterConfig { lambda, ..IterConfig::fixed_steps(10) })
                .final_a();
            prop_assert!(a.is_finite(), "diverged with {lambda:?} at m {m_val}");
            let rel = (a.to_f64() * m.to_f64().sqrt() - 1.0).abs();
            prop_assert!(rel < 0.05, "{lambda:?}: residual {rel} at m {m_val}");
        }
    }
}

macro_rules! format_convergence {
    ($name:ident, $F:ty, $tol:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn $name(e in -8i32..8, frac in 0u32..64) {
                let m_val = (1.0 + frac as f64 / 64.0) * (e as f64).exp2();
                let m = <$F>::from_f64(m_val);
                let a = iterate(m, &IterConfig::fixed_steps(8)).final_a().to_f64();
                let rel = (a * m.to_f64().sqrt() - 1.0).abs();
                prop_assert!(rel < $tol, "{}: residual {rel} at m {m_val}", <$F>::NAME);
            }
        }
    };
}

format_convergence!(fp16_converges_to_format_floor, Fp16, 2e-3);
format_convergence!(bf16_converges_to_format_floor, Bf16, 2e-2);
