//! The seeded concurrency stress suite for the resident shard executor
//! — the issue's headline deliverable, runnable under
//! `RUST_TEST_THREADS=1` with debug assertions armed (the CI
//! resilience job) and reproducible from its printed seeds:
//!
//! * **Spawn/shutdown churn**: services built and torn down while
//!   submitters race `shutdown()`; every submission resolves to a real
//!   result or a clean `ServiceShutdown` — never a hang, never a
//!   panic — and accepted async work always drains.
//! * **Waker-vs-wait races**: completion callbacks registered while
//!   the driver is concurrently delivering fire exactly once, interleaved
//!   with blocking collects, under seeded timing jitter.
//! * **Panic containment**: a panicking backend inside a resident
//!   worker unwinds only onto the submitter it was serving, fails
//!   queued tickets cleanly, and the torn service still drops without
//!   leaking or hanging — repeated across fresh services.
//! * **Bit-identity sweep**: async ≡ blocking ≡ serial per-request
//!   bits on the resident executor, across every registry method ×
//!   shards {1, 2, 4} × per-shard thread counts (uniform and uneven) ×
//!   both workloads (normalize and whiten).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use iterl2norm::backend::{build_backend, BackendKind, FormatKind};
use iterl2norm::service::{NormRequest, ServiceConfig};
use iterl2norm::whiten::{build_whiten, WhitenSpec};
use iterl2norm::{MethodSpec, NormBackend, NormError, ReduceOrder, RowMoments, SimdLevel};
use workloads::{Distribution, VectorGen};

const D: usize = 16;

/// SplitMix-style generator: cheap, seeded, and printed on failure so
/// any schedule the suite finds is replayable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn request_bits(rows: usize, seed: u64) -> Vec<u32> {
    let gen = VectorGen::new(Distribution::Uniform, seed);
    let mut bits = Vec::with_capacity(rows * D);
    for r in 0..rows as u64 {
        bits.extend(gen.vector_f64(D, r).iter().map(|&v| (v as f32).to_bits()));
    }
    bits
}

#[test]
fn seeded_spawn_shutdown_churn_keeps_every_outcome_clean() {
    let mut rng = Rng(0x5EED_0001);
    for round in 0..24u32 {
        let shards = [1, 2, 4][(rng.next() % 3) as usize];
        let threads = 1 + (rng.next() % 3) as usize;
        let window = Duration::from_micros(rng.next() % 300);
        let jitter = rng.next() % 4;
        let context = format!(
            "round={round} shards={shards} threads={threads} window={window:?} jitter={jitter}"
        );
        let service = ServiceConfig::new(D)
            .with_shards(shards)
            .with_threads(threads)
            .with_window(window)
            .build()
            .unwrap();
        let barrier = Arc::new(Barrier::new(5));
        std::thread::scope(|scope| {
            for who in 0..4u64 {
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                let use_async = rng.next().is_multiple_of(2);
                let context = context.clone();
                scope.spawn(move || {
                    let bits = request_bits(1, 0xC0FE ^ (u64::from(round) << 8) ^ who);
                    barrier.wait();
                    for _ in 0..4 {
                        if use_async {
                            match service.submit_async(NormRequest::bits(&bits)) {
                                // Accepted async work always drains —
                                // graceful shutdown executes it.
                                Ok(mut ticket) => {
                                    let response = ticket
                                        .wait_timeout(Duration::from_secs(60))
                                        .unwrap_or_else(|| {
                                            panic!("{context}: accepted ticket starved")
                                        });
                                    assert_eq!(response.map(|r| r.rows()), Ok(1), "{context}");
                                }
                                Err(NormError::ServiceShutdown) => {}
                                Err(other) => panic!("{context}: unexpected {other}"),
                            }
                        } else {
                            match service.submit(NormRequest::bits(&bits)) {
                                Ok(response) => assert_eq!(response.rows(), 1, "{context}"),
                                Err(NormError::ServiceShutdown) => {}
                                Err(other) => panic!("{context}: unexpected {other}"),
                            }
                        }
                    }
                });
            }
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..jitter {
                    std::thread::yield_now();
                }
                service.shutdown();
            });
        });
        assert!(service.is_shutdown(), "{context}");
        let bits = request_bits(1, 1);
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown,
            "{context}"
        );
        // Drop tears the resident pool down; a hang here is a failed
        // join and the harness timeout will name this round's seed.
        drop(service);
    }
}

#[test]
fn waker_vs_wait_races_deliver_exactly_once() {
    let mut rng = Rng(0x5EED_0002);
    let service = ServiceConfig::new(D).with_shards(2).build().unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let mut callbacks = 0usize;
    let iterations = 200u64;
    for i in 0..iterations {
        let bits = request_bits(1, 0xFACE ^ i);
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        // Seeded jitter so registration lands on both sides of the
        // driver's delivery — and everywhere in between.
        for _ in 0..(rng.next() % 3) {
            std::thread::yield_now();
        }
        if rng.next().is_multiple_of(2) {
            // Waker path: must fire exactly once whichever side won.
            callbacks += 1;
            let counter = Arc::clone(&fired);
            let (tx, rx) = mpsc::channel();
            ticket.on_ready(move |mut ticket| {
                counter.fetch_add(1, Ordering::SeqCst);
                let rows = ticket
                    .try_take()
                    .expect("fired waker implies stored outcome")
                    .expect("default backend cannot fail")
                    .rows();
                tx.send(rows).unwrap();
            });
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(60))
                    .unwrap_or_else(|_| panic!("iteration {i}: callback never fired")),
                1
            );
            assert_eq!(
                fired.load(Ordering::SeqCst),
                callbacks,
                "iteration {i}: a callback fired twice or was lost"
            );
        } else {
            // Blocking-collect path racing the same delivery machinery.
            let mut ticket = ticket;
            assert_eq!(ticket.wait().unwrap().rows(), 1, "iteration {i}");
        }
    }
    let stats = service.stats();
    assert_eq!(stats.requests, iterations);
    assert_eq!(stats.waker_panics, 0);
    assert_eq!(stats.abandoned_tickets, 0);
}

/// Backend that panics inside the resident worker on every call — the
/// containment half of the stress contract.
struct PanickingBackend;

impl NormBackend for PanickingBackend {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn method_label(&self) -> String {
        "panicking-test".into()
    }

    fn normalize_batch_bits(
        &mut self,
        _input: &[u32],
        _out: &mut [u32],
        _threads: usize,
    ) -> Result<usize, NormError> {
        panic!("injected resident-worker panic");
    }

    fn normalize_row_bits_detailed(
        &mut self,
        _input: &[u32],
        _out: &mut [u32],
    ) -> Result<RowMoments, NormError> {
        panic!("injected resident-worker panic");
    }
}

#[test]
fn panic_in_a_resident_worker_is_contained_across_churn() {
    for round in 0..12u64 {
        let service = ServiceConfig::new(D)
            .build_with_backends(|| Box::new(PanickingBackend))
            .unwrap();
        let bits = request_bits(1, 0xBAD ^ round);
        // A queued ticket rides the doomed round (or a failed later
        // one); either way it must resolve to a clean shutdown error.
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        let victim = {
            let service = service.clone();
            let bits = bits.clone();
            std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
                }))
            })
        };
        // Two clean outcomes, depending on which round the driver
        // drained the victim into: it rode the panicking round (the
        // unwind re-raises on it) or arrived after the panic tore the
        // service down (refused with ServiceShutdown). Never Ok — and
        // never a hang. The gated test in `service_resilience.rs` pins
        // the re-raise deterministically; this churn covers both races.
        match victim.join().expect("victim thread must not die") {
            Err(_unwound) => {}
            Ok(Err(NormError::ServiceShutdown)) => {}
            Ok(other) => {
                panic!("round {round}: the victim must unwind or be refused, got {other:?}")
            }
        }
        assert_eq!(
            ticket
                .wait_timeout(Duration::from_secs(60))
                .unwrap_or_else(|| panic!("round {round}: queued ticket starved"))
                .unwrap_err(),
            NormError::ServiceShutdown,
            "round {round}"
        );
        assert!(service.is_shutdown(), "round {round}");
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown,
            "round {round}"
        );
        // The torn service still tears down: drop joins what remains.
        drop(service);
    }
}

/// Serial per-request references on the same backend kind the service
/// runs, so the sweep never leans on cross-backend identity.
fn serial_norm(backend: BackendKind, spec: &MethodSpec, bits: &[u32]) -> Vec<u32> {
    let mut reference =
        build_backend(backend, FormatKind::Fp32, D, spec, ReduceOrder::HwTree).unwrap();
    let mut out = vec![0u32; bits.len()];
    reference.normalize_batch_bits(bits, &mut out, 1).unwrap();
    out
}

fn serial_whiten(backend: BackendKind, bits: &[u32]) -> Vec<u32> {
    let mut exec = build_whiten(
        backend,
        FormatKind::Fp32,
        D,
        WhitenSpec::default(),
        SimdLevel::Auto,
    )
    .unwrap();
    let mut out = vec![0u32; bits.len()];
    exec.whiten_groups(bits, &mut out, &[bits.len() / D], 1)
        .unwrap();
    out
}

#[test]
fn full_bit_identity_sweep_on_the_resident_executor() {
    // The acceptance sweep from the issue, replayed on the resident
    // executor with the new per-shard thread axis: uneven thread counts
    // change only which helper executes which partition — never bits.
    let submitters = 3;
    let whiten_rows = 5;
    for backend in [BackendKind::Emulated, BackendKind::Native] {
        for spec in MethodSpec::REGISTRY {
            for shards in [1usize, 2, 4] {
                for uneven in [false, true] {
                    let shard_threads: Vec<usize> = (0..shards)
                        .map(|i| if uneven { 1 + (i + 1) % 3 } else { 2 })
                        .collect();
                    let service = ServiceConfig::new(D)
                        .with_backend(backend)
                        .with_method(spec)
                        .with_shards(shards)
                        .with_shard_threads(&shard_threads)
                        .with_whiten(WhitenSpec::default())
                        .with_window(Duration::from_micros(500))
                        .build()
                        .unwrap();
                    let context = format!(
                        "{}/{} shards={shards} threads={shard_threads:?}",
                        backend.name(),
                        spec.label()
                    );
                    let barrier = Arc::new(Barrier::new(submitters));
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..submitters)
                            .map(|who| {
                                let service = service.clone();
                                let barrier = Arc::clone(&barrier);
                                scope.spawn(move || {
                                    let rows = 1 + who % 3;
                                    let a = request_bits(rows, 0xA0 + who as u64);
                                    let b = request_bits(rows, 0xB0 + who as u64);
                                    let g = request_bits(whiten_rows, 0xC0 + who as u64);
                                    barrier.wait();
                                    // Async normalize and whiten in flight
                                    // around a blocking normalize — all
                                    // three may share driver rounds.
                                    let mut async_norm =
                                        service.submit_async(NormRequest::bits(&a)).unwrap();
                                    let mut async_whiten = service
                                        .submit_async(NormRequest::whiten_group(&g))
                                        .unwrap();
                                    let blocking = service.submit(NormRequest::bits(&b)).unwrap();
                                    let async_norm = async_norm.wait().unwrap();
                                    let async_whiten = async_whiten.wait().unwrap();
                                    [(a, async_norm), (b, blocking), (g, async_whiten)]
                                })
                            })
                            .collect();
                        for handle in handles {
                            let [(a, async_norm), (b, blocking), (g, async_whiten)] =
                                handle.join().unwrap();
                            assert_eq!(
                                async_norm.bits(),
                                &serial_norm(backend, &spec, &a)[..],
                                "{context}: async normalize diverged from serial"
                            );
                            assert_eq!(
                                blocking.bits(),
                                &serial_norm(backend, &spec, &b)[..],
                                "{context}: blocking normalize diverged from serial"
                            );
                            assert_eq!(
                                async_whiten.bits(),
                                &serial_whiten(backend, &g)[..],
                                "{context}: async whiten diverged from serial"
                            );
                        }
                    });
                    let stats = service.stats();
                    assert_eq!(stats.requests, 3 * submitters as u64, "{context}");
                    assert_eq!(stats.whiten_requests, submitters as u64, "{context}");
                    assert_eq!(stats.abandoned_tickets, 0, "{context}");
                }
            }
        }
    }
}
