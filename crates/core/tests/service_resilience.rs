//! The serving layer's failure-containment contract, enforced:
//!
//! * A panicking request (a backend bug mid-execution) must never brick
//!   the service for everyone else — the resident driver contains the
//!   unwind, re-raises it on the submitter whose request was executing,
//!   wakes everyone else in the round with a clean
//!   [`NormError::ServiceShutdown`], and every later submit gets the
//!   same clean `Err` instead of a poisoned-mutex panic cascade.
//! * A waiter parked mid-round when [`NormService::shutdown`] lands is
//!   always woken and never hangs: its already-accepted request completes,
//!   and only *new* submissions are refused (stress-tested with submitters
//!   racing shutdown).
//! * A shard whose waiting line is at the configured queue depth rejects
//!   with [`NormError::QueueFull`] instead of buffering unboundedly behind
//!   a deliberately slowed backend — and a request the driver has already
//!   drained into an executing round no longer occupies a waiting slot.
//!
//! The injected backends go through [`ServiceConfig::build_with_backends`],
//! the same extension point a custom production backend would use. CI runs
//! this suite in the debug profile, so every `debug_assert` in the service
//! and engine is armed while the races run.

use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

use iterl2norm::service::{NormRequest, ServiceConfig};
use iterl2norm::{BackendKind, NormBackend, NormError, Priority, RowMoments};

const D: usize = 8;

/// Deterministic one-row request payload (FP32 bit patterns).
fn row_bits(salt: u32) -> Vec<u32> {
    (0..D as u32)
        .map(|i| (1.0f32 + (i.wrapping_mul(31).wrapping_add(salt) % 17) as f32 * 0.25).to_bits())
        .collect()
}

/// A gate the test controls: injected backends block on it until the test
/// releases them (bounded by a 10 s timeout so a bug can never hang the
/// suite), and flag when the first call has entered the backend.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: bool,
    open: bool,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    /// Called by the backend: announce entry, then block until opened.
    fn pass(&self) {
        let mut state = self.state.lock().unwrap();
        state.entered = true;
        self.cv.notify_all();
        let deadline = Duration::from_secs(10);
        while !state.open {
            let (next, timeout) = self.cv.wait_timeout(state, deadline).unwrap();
            state = next;
            if timeout.timed_out() {
                break; // never hang the suite on a test bug
            }
        }
    }

    /// Called by the test: wait until a backend call is inside `pass`.
    fn await_entered(&self) {
        let mut state = self.state.lock().unwrap();
        let deadline = Duration::from_secs(10);
        while !state.entered {
            let (next, timeout) = self.cv.wait_timeout(state, deadline).unwrap();
            state = next;
            assert!(!timeout.timed_out(), "backend never entered the gate");
        }
    }

    /// Called by the test: let all blocked and future calls through.
    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }
}

/// An injected backend that waits at the gate, then either panics (if
/// `panics`) or copies the input bits through unchanged.
struct GatedBackend {
    gate: Arc<Gate>,
    panics: bool,
}

impl NormBackend for GatedBackend {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn method_label(&self) -> String {
        "gated-test".into()
    }

    fn normalize_batch_bits(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        _threads: usize,
    ) -> Result<usize, NormError> {
        self.gate.pass();
        assert!(!self.panics, "injected backend panic");
        out.copy_from_slice(input);
        Ok(input.len() / D)
    }

    fn normalize_row_bits_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<RowMoments, NormError> {
        self.normalize_batch_bits(input, out, 1)?;
        Ok(RowMoments {
            mean: 0.0,
            m: 1.0,
            scale: 1.0,
        })
    }
}

fn gated_service(gate: &Arc<Gate>, panics: bool, queue_depth: usize) -> iterl2norm::NormService {
    ServiceConfig::new(D)
        .with_queue_depth(queue_depth)
        .build_with_backends(|| {
            Box::new(GatedBackend {
                gate: Arc::clone(gate),
                panics,
            })
        })
        .unwrap()
}

/// Poll the aggregate request counter until `n` requests were accepted —
/// the queued submitter increments it before parking, so this observes
/// "the waiter is (about to be) parked" without touching private state.
fn await_accepted(service: &iterl2norm::NormService, n: u64) {
    for _ in 0..10_000 {
        if service.stats().requests >= n {
            return;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    panic!(
        "never saw {n} accepted requests (stats: {:?})",
        service.stats()
    );
}

#[test]
fn panicking_submitter_does_not_brick_the_service() {
    let gate = Gate::new();
    let service = gated_service(&gate, true, 64);

    std::thread::scope(|scope| {
        // Victim: its request is drained into the round whose backend
        // call panics once released. The resident driver contains the
        // unwind and re-raises it on this submitter — it must never
        // escape onto an unrelated thread.
        let victim = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(1);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
                }))
            })
        };
        gate.await_entered();

        // Follower: enqueues behind the doomed round and parks.
        let follower = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(2);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        await_accepted(&service, 2);

        // Release the gate: the driver's backend call panics.
        gate.open();

        let victim_outcome = victim.join().unwrap();
        assert!(
            victim_outcome.is_err(),
            "the panicking request's submitter must observe the unwind"
        );
        // The parked follower is woken with a clean error — never a hang,
        // never a poisoned-mutex panic.
        assert_eq!(
            follower.join().expect("follower must not panic"),
            Err(NormError::ServiceShutdown)
        );
    });

    // The service marked itself shut down; every later submit (from any
    // clone, on any thread) gets a clean Err — not a panic.
    assert!(service.is_shutdown());
    let bits = row_bits(3);
    assert_eq!(
        service.submit(NormRequest::bits(&bits)).unwrap_err(),
        NormError::ServiceShutdown
    );
    assert_eq!(
        service
            .submit_detailed(NormRequest::bits(&bits))
            .unwrap_err(),
        NormError::ServiceShutdown
    );
    let mut out = vec![0u32; D];
    assert_eq!(
        service
            .submit_into(NormRequest::bits(&bits), &mut out)
            .unwrap_err(),
        NormError::ServiceShutdown
    );
    // Stats stay readable after the poison recovery.
    let _ = service.stats();
}

#[test]
fn queue_full_fires_under_a_slowed_backend() {
    let gate = Gate::new();
    let service = gated_service(&gate, false, 1);

    std::thread::scope(|scope| {
        // First request occupies the backend (blocked at the gate).
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(10);
                let response = service.submit(NormRequest::bits(&bits)).unwrap();
                assert_eq!(response.bits(), &bits[..], "identity backend");
            })
        };
        gate.await_entered();

        // Second request fills the single queue slot and parks.
        let queued = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(11);
                let response = service.submit(NormRequest::bits(&bits)).unwrap();
                assert_eq!(response.bits(), &bits[..]);
            })
        };
        await_accepted(&service, 2);

        // Third request finds the waiting line at its bound: rejected
        // fast, with the configured depth in the error.
        let bits = row_bits(12);
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::QueueFull { depth: 1 }
        );
        let stats = service.stats();
        assert_eq!(stats.queue_full_rejections, 1);
        // The shed request was never accepted.
        assert_eq!(stats.requests, 2);

        // Draining the backend lets both accepted requests complete.
        gate.open();
        executing.join().unwrap();
        queued.join().unwrap();
    });

    let stats = service.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.rows, 2);
    // The parked request spent real time waiting on the gated backend;
    // the split accounting must show it as queue wait, not execution.
    assert!(
        stats.queue_wait > Duration::ZERO,
        "queued request's wait must be accounted: {stats:?}"
    );
}

#[test]
fn waiter_parked_mid_round_survives_shutdown() {
    let gate = Gate::new();
    let service = gated_service(&gate, false, 64);

    std::thread::scope(|scope| {
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(20);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();
        let parked = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(21);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        await_accepted(&service, 2);

        // Shutdown lands while one request executes and one is parked
        // mid-round. New work is refused immediately…
        service.shutdown();
        let bits = row_bits(22);
        assert_eq!(
            service.submit(NormRequest::bits(&bits)).unwrap_err(),
            NormError::ServiceShutdown
        );

        // …but both accepted requests drain: the parked waiter is woken
        // and served, never hung. (If the wakeup were lost, these joins
        // would block until the gate's 10 s failsafe fired and the row
        // assertions below failed.)
        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        assert_eq!(parked.join().unwrap(), Ok(1));
    });

    let stats = service.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.rows, 2);
}

#[test]
fn executing_round_does_not_occupy_the_waiting_line() {
    // Once the resident driver drains a request into an executing round,
    // that request has left the waiting line — the queue-depth bound
    // counts only parked entries. At depth 1, a submitter arriving while
    // another request executes must be admitted, not shed with QueueFull.
    let gate = Gate::new();
    let service = gated_service(&gate, false, 1);

    std::thread::scope(|scope| {
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(5);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        // The gate admits exactly one backend call at a time, so once we
        // observe entry the driver has drained the request: the waiting
        // line is provably empty again.
        gate.await_entered();

        let queued = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(6);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        await_accepted(&service, 2);

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        assert_eq!(
            queued.join().unwrap(),
            Ok(1),
            "a submitter was shed even though the only other request was \
             already executing, not waiting"
        );
    });
    assert_eq!(service.stats().queue_full_rejections, 0);
    assert_eq!(service.stats().requests, 2);
}

#[test]
fn submitters_racing_shutdown_always_get_a_clean_outcome() {
    // Loom-style schedule shaking on the real primitives: submitters race
    // a shutdown call over and over; every submit must return either a
    // real result or ServiceShutdown — never hang, never panic. Sweeping
    // shards and windows varies which protocol path (idle driver wakeup,
    // drain-in-progress, coalescing-window hold) the race hits.
    for (shards, window_us) in [(1, 0), (2, 0), (1, 200), (4, 200)] {
        for round in 0..12u32 {
            let service = ServiceConfig::new(D)
                .with_shards(shards)
                .with_window(Duration::from_micros(window_us))
                .build()
                .unwrap();
            let barrier = Arc::new(Barrier::new(5));
            std::thread::scope(|scope| {
                for who in 0..4u32 {
                    let service = service.clone();
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let bits = row_bits(who.wrapping_add(round));
                        barrier.wait();
                        for _ in 0..4 {
                            match service.submit(NormRequest::bits(&bits)) {
                                Ok(response) => assert_eq!(response.rows(), 1),
                                Err(NormError::ServiceShutdown) => {}
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    });
                }
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    if round % 3 != 0 {
                        std::thread::yield_now();
                    }
                    service.shutdown();
                });
            });
            assert!(service.is_shutdown());
            // After the race settles, the refusal is deterministic.
            let bits = row_bits(round);
            assert_eq!(
                service.submit(NormRequest::bits(&bits)).unwrap_err(),
                NormError::ServiceShutdown
            );
        }
    }
}

#[test]
fn elapsed_starts_after_validation_and_stats_split_wait_from_execute() {
    let service = ServiceConfig::new(D).build().unwrap();
    let bits = row_bits(30);
    let response = service.submit(NormRequest::bits(&bits)).unwrap();
    // The documented span covers execution, so it can never be zero…
    assert!(response.elapsed() > Duration::ZERO);
    // …and the aggregate split accounts the same request: executing took
    // real time, and the uncontended submit only waited for the driver's
    // handoff — far less than it executed.
    let stats = service.stats();
    assert!(stats.execute > Duration::ZERO);
    assert!(
        stats.queue_wait < stats.execute,
        "uncontended submit must not charge execution to queue wait: {stats:?}"
    );
    // Shape-rejected requests are never timed or counted.
    assert!(service.submit(NormRequest::bits(&bits[..D - 1])).is_err());
    assert_eq!(service.stats().requests, 1);
}

#[test]
fn ticket_wait_timeout_expires_cleanly_on_a_gated_backend() {
    // A ticket parked behind an in-flight round must honor its deadline:
    // wait_timeout/try_take return None while the gated backend holds the
    // round open, and the same ticket collects normally once the gate
    // lifts. The bound covers *parked* time — the resident driver owns
    // execution, so the ticket's collect path only ever parks.
    let gate = Gate::new();
    let service = gated_service(&gate, false, 64);

    std::thread::scope(|scope| {
        // A blocking submit whose round is held open inside the backend.
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(40);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        // The async request queues behind the stuck round.
        let bits = row_bits(41);
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        assert!(
            ticket.try_take().is_none(),
            "a round is in flight: polling must not deliver or block"
        );
        let begin = std::time::Instant::now();
        assert!(
            ticket.wait_timeout(Duration::from_millis(50)).is_none(),
            "the gated round cannot finish within the bound"
        );
        assert!(
            begin.elapsed() >= Duration::from_millis(50),
            "wait_timeout returned before its deadline"
        );

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        // Same ticket, same mailbox: the driver's next round serves it.
        let response = ticket.wait().unwrap();
        assert_eq!(response.bits(), &bits[..], "identity backend");
    });
    assert_eq!(service.stats().requests, 2);
    assert_eq!(service.stats().abandoned_tickets, 0);
}

#[test]
fn tickets_accepted_before_shutdown_still_complete() {
    // Graceful shutdown drains: the resident driver executes every
    // request accepted before `shutdown()` landed, so a ticket outliving
    // the call collects a *real* response through every collect method —
    // only new submissions are refused. (Contrast with the panic path,
    // where queued tickets fail with ServiceShutdown; see
    // `panicking_round_fails_queued_tickets_cleanly`.)
    let service = ServiceConfig::new(D).build().unwrap();
    let bits = row_bits(50);
    let mut waited = service.submit_async(NormRequest::bits(&bits)).unwrap();
    let mut polled = service.submit_async(NormRequest::bits(&bits)).unwrap();
    let mut timed = service.submit_async(NormRequest::bits(&bits)).unwrap();
    service.shutdown();
    // New work is refused at the door…
    assert_eq!(
        service.submit_async(NormRequest::bits(&bits)).unwrap_err(),
        NormError::ServiceShutdown
    );
    // …but the three accepted requests drain with real results.
    assert_eq!(waited.wait().unwrap().rows(), 1);
    assert_eq!(
        timed
            .wait_timeout(Duration::from_secs(10))
            .expect("accepted work drains promptly on shutdown")
            .unwrap()
            .rows(),
        1
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let polled_response = loop {
        if let Some(result) = polled.try_take() {
            break result.unwrap();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the drain never delivered the polled ticket's outcome"
        );
        std::thread::yield_now();
    };
    assert_eq!(polled_response.rows(), 1);
    // All three were accepted, executed, and collected — none abandoned.
    let stats = service.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.rows, 3);
    assert_eq!(stats.abandoned_tickets, 0);
}

#[test]
fn dropped_ticket_behind_a_gated_round_is_recycled_not_stranded() {
    // Drop-without-wait while a round is in flight: the orphaned entry
    // is still executed by a later driver round, its result buffer goes
    // straight back to the shard pool, the drop is counted, and the
    // service keeps serving.
    let gate = Gate::new();
    let service = gated_service(&gate, false, 64);

    std::thread::scope(|scope| {
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(60);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        let bits = row_bits(61);
        let ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();
        drop(ticket);
        assert_eq!(service.stats().abandoned_tickets, 1);

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
    });

    // The driver drains the orphaned entry (same round as our submit or
    // an earlier one — FIFO puts it ahead of us either way) and still
    // serves new traffic.
    let bits = row_bits(62);
    let response = service.submit(NormRequest::bits(&bits)).unwrap();
    assert_eq!(response.bits(), &bits[..]);
    let stats = service.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(
        stats.rows, 3,
        "the orphaned request must execute, not strand in the queue"
    );
    assert_eq!(stats.abandoned_tickets, 1);
}

#[test]
fn async_backpressure_rejects_at_enqueue_time() {
    // QueueFull for submit_async fires when the ticket is requested — a
    // caller never holds a ticket whose request was silently shed.
    let gate = Gate::new();
    let service = gated_service(&gate, false, 1);

    std::thread::scope(|scope| {
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(70);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        // Fills the single waiting slot.
        let bits = row_bits(71);
        let mut admitted = service.submit_async(NormRequest::bits(&bits)).unwrap();
        // The line is at its bound: rejected now, not at collect time.
        let more = row_bits(72);
        assert_eq!(
            service.submit_async(NormRequest::bits(&more)).unwrap_err(),
            NormError::QueueFull { depth: 1 }
        );
        assert_eq!(service.stats().queue_full_rejections, 1);

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        assert_eq!(admitted.wait().unwrap().bits(), &bits[..]);
    });
    assert_eq!(service.stats().requests, 2);
}

#[test]
fn panicking_round_fails_queued_tickets_cleanly() {
    // The driver's panic containment extends to async waiters: a ticket
    // queued behind a panicking round collects a clean ServiceShutdown —
    // never a hang, never a poisoned-mutex panic.
    let gate = Gate::new();
    let service = gated_service(&gate, true, 64);

    std::thread::scope(|scope| {
        let victim = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(80);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
                }))
            })
        };
        gate.await_entered();

        let bits = row_bits(81);
        let mut ticket = service.submit_async(NormRequest::bits(&bits)).unwrap();

        gate.open();
        assert!(victim.join().unwrap().is_err(), "victim observes unwind");
        assert_eq!(ticket.wait().unwrap_err(), NormError::ServiceShutdown);
    });
    assert!(service.is_shutdown());
    // Later async submissions are refused at the door.
    let bits = row_bits(82);
    assert_eq!(
        service.submit_async(NormRequest::bits(&bits)).unwrap_err(),
        NormError::ServiceShutdown
    );
}

#[test]
fn high_priority_is_admitted_past_a_full_waiting_line() {
    // The priority class's admission contract at queue depth 1: once the
    // line is full, normal traffic is shed but a high-priority request is
    // still admitted into the reserved overflow region — and that region
    // itself is bounded at one extra depth, so a second high request is
    // shed too. Backpressure stays bounded for every class.
    let gate = Gate::new();
    let service = gated_service(&gate, false, 1);

    std::thread::scope(|scope| {
        // Occupies the backend (blocked at the gate).
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(90);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        // Fills the single waiting slot.
        let normal_bits = row_bits(91);
        let mut normal = service
            .submit_async(NormRequest::bits(&normal_bits))
            .unwrap();

        // Normal traffic now sheds…
        let shed = row_bits(92);
        assert_eq!(
            service.submit_async(NormRequest::bits(&shed)).unwrap_err(),
            NormError::QueueFull { depth: 1 }
        );

        // …but a high-priority request jumps the full line.
        let high_bits = row_bits(93);
        let mut high = service
            .submit_async(NormRequest::bits(&high_bits).with_priority(Priority::High))
            .unwrap();

        // The overflow region is itself bounded: 2 × depth waiting
        // requests refuse even high-priority work.
        assert_eq!(
            service
                .submit_async(NormRequest::bits(&shed).with_priority(Priority::High))
                .unwrap_err(),
            NormError::QueueFull { depth: 1 }
        );

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        assert_eq!(normal.wait().unwrap().bits(), &normal_bits[..]);
        assert_eq!(high.wait().unwrap().bits(), &high_bits[..]);
    });

    let stats = service.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.queue_full_rejections, 2);
}

/// An injected backend that records every batch it executes (input bits,
/// in batch order) after waiting at the gate — how the priority tests
/// observe where in a combined round each request's rows landed.
struct RecordingBackend {
    gate: Arc<Gate>,
    batches: Arc<Mutex<Vec<Vec<u32>>>>,
}

impl NormBackend for RecordingBackend {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn method_label(&self) -> String {
        "recording-test".into()
    }

    fn normalize_batch_bits(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        _threads: usize,
    ) -> Result<usize, NormError> {
        self.gate.pass();
        self.batches.lock().unwrap().push(input.to_vec());
        out.copy_from_slice(input);
        Ok(input.len() / D)
    }

    fn normalize_row_bits_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<RowMoments, NormError> {
        self.normalize_batch_bits(input, out, 1)?;
        Ok(RowMoments {
            mean: 0.0,
            m: 1.0,
            scale: 1.0,
        })
    }
}

#[test]
fn high_priority_rides_at_the_front_of_the_next_round() {
    // Ordering half of the priority contract: a high request submitted
    // *after* a parked normal request still leads the next combined
    // round — its rows come first in the backend's batch input.
    let gate = Gate::new();
    let batches: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(Vec::new()));
    let service = ServiceConfig::new(D)
        .with_queue_depth(8)
        .build_with_backends(|| {
            Box::new(RecordingBackend {
                gate: Arc::clone(&gate),
                batches: Arc::clone(&batches),
            })
        })
        .unwrap();

    let normal_bits = row_bits(94);
    let high_bits = row_bits(95);
    std::thread::scope(|scope| {
        // A round occupies the backend; everything below queues behind it.
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(96);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        // Normal first, high second — arrival order.
        let mut normal = service
            .submit_async(NormRequest::bits(&normal_bits))
            .unwrap();
        let mut high = service
            .submit_async(NormRequest::bits(&high_bits).with_priority(Priority::High))
            .unwrap();
        await_accepted(&service, 3);

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        let normal_response = normal.wait().unwrap();
        let high_response = high.wait().unwrap();
        // Both rode one combined round, bits intact.
        assert_eq!(normal_response.bits(), &normal_bits[..]);
        assert_eq!(high_response.bits(), &high_bits[..]);
        assert_eq!(high_response.batch_requests(), 2);
    });

    let batches = batches.lock().unwrap();
    assert_eq!(batches.len(), 2, "first round + one combined round");
    // The combined round's batch starts with the high request's rows even
    // though the normal request arrived first.
    assert_eq!(
        &batches[1][..D],
        &high_bits[..],
        "high-priority rows must lead the combined batch"
    );
    assert_eq!(&batches[1][D..], &normal_bits[..]);
}

#[test]
fn high_priority_is_fifo_within_its_class() {
    // Two high requests behind a parked normal request: both jump the
    // normal request, but keep their own arrival order — a newer high
    // request must never preempt an older one still waiting, or
    // sustained high-priority load would starve its own oldest request.
    let gate = Gate::new();
    let batches: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(Vec::new()));
    let service = ServiceConfig::new(D)
        .with_queue_depth(8)
        .build_with_backends(|| {
            Box::new(RecordingBackend {
                gate: Arc::clone(&gate),
                batches: Arc::clone(&batches),
            })
        })
        .unwrap();

    let normal_bits = row_bits(97);
    let first_high_bits = row_bits(98);
    let second_high_bits = row_bits(99);
    std::thread::scope(|scope| {
        // A round occupies the backend; everything below queues behind it.
        let executing = {
            let service = service.clone();
            scope.spawn(move || {
                let bits = row_bits(100);
                service.submit(NormRequest::bits(&bits)).map(|r| r.rows())
            })
        };
        gate.await_entered();

        let mut normal = service
            .submit_async(NormRequest::bits(&normal_bits))
            .unwrap();
        let mut first_high = service
            .submit_async(NormRequest::bits(&first_high_bits).with_priority(Priority::High))
            .unwrap();
        let mut second_high = service
            .submit_async(NormRequest::bits(&second_high_bits).with_priority(Priority::High))
            .unwrap();
        await_accepted(&service, 4);

        gate.open();
        assert_eq!(executing.join().unwrap(), Ok(1));
        assert_eq!(normal.wait().unwrap().bits(), &normal_bits[..]);
        assert_eq!(first_high.wait().unwrap().bits(), &first_high_bits[..]);
        assert_eq!(second_high.wait().unwrap().bits(), &second_high_bits[..]);
    });

    let batches = batches.lock().unwrap();
    assert_eq!(batches.len(), 2, "first round + one combined round");
    // High beats normal, but within the high class arrival order holds.
    assert_eq!(
        &batches[1][..D],
        &first_high_bits[..],
        "the older high request must stay first in its class"
    );
    assert_eq!(&batches[1][D..2 * D], &second_high_bits[..]);
    assert_eq!(&batches[1][2 * D..], &normal_bits[..]);
}

// ---------------------------------------------------------------------
// Poisoned whiten lock (PR 9 regression test): a whitening executor that
// panics mid-call poisons the shard's whiten mutex. Every later request
// must see a clean `NormError::ServiceShutdown` — never a poisoned-mutex
// panic cascade, and never a hang.
// ---------------------------------------------------------------------

/// An injected whitening executor whose every execution panics — the
/// worst-case backend bug, unwinding with the whiten lock held.
struct PanickingWhiten;

impl iterl2norm::WhitenExec for PanickingWhiten {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn spec(&self) -> iterl2norm::WhitenSpec {
        iterl2norm::WhitenSpec::default()
    }

    fn whiten_groups(
        &mut self,
        _input: &[u32],
        _out: &mut [u32],
        _group_rows: &[usize],
        _threads: usize,
    ) -> Result<usize, NormError> {
        panic!("injected whitening panic");
    }

    fn whiten_group_detailed(
        &mut self,
        _input: &[u32],
        _out: &mut [u32],
    ) -> Result<iterl2norm::WhitenDetail, NormError> {
        panic!("injected whitening panic");
    }
}

/// A minimal pass-through backend so normalization traffic works while
/// the whiten executor is rigged to panic.
struct PassBackend;

impl NormBackend for PassBackend {
    fn backend(&self) -> BackendKind {
        BackendKind::Emulated
    }

    fn format_name(&self) -> &'static str {
        "FP32"
    }

    fn d(&self) -> usize {
        D
    }

    fn method_label(&self) -> String {
        "pass-test".into()
    }

    fn normalize_batch_bits(
        &mut self,
        input: &[u32],
        out: &mut [u32],
        _threads: usize,
    ) -> Result<usize, NormError> {
        out.copy_from_slice(input);
        Ok(input.len() / D)
    }

    fn normalize_row_bits_detailed(
        &mut self,
        input: &[u32],
        out: &mut [u32],
    ) -> Result<RowMoments, NormError> {
        out.copy_from_slice(input);
        Ok(RowMoments {
            mean: 0.0,
            m: 1.0,
            scale: 1.0,
        })
    }
}

#[test]
fn poisoned_whiten_lock_fails_closed_not_cascading() {
    let service = ServiceConfig::new(D)
        .build_with_backends_and_whiten(|| Box::new(PassBackend), || Box::new(PanickingWhiten))
        .unwrap();

    // Normalization works before anything whitens (the executor is lazy).
    let bits = row_bits(7);
    assert_eq!(service.submit(NormRequest::bits(&bits)).unwrap().rows(), 1);

    // First whitening call: the injected executor panics with the whiten
    // mutex held, poisoning it. The resident driver contains the unwind
    // and re-raises it on this submitter — catch it here like a real
    // caller's panic hook would.
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let group = row_bits(9);
        let _ = service.submit(NormRequest::whiten_group(&group));
    }));
    assert!(panicked.is_err(), "the injected whitening panic must fire");

    // Second whitening call: the poisoned whiten mutex must surface as a
    // clean ServiceShutdown through `whiten_of`'s recovery — not a
    // poisoned-lock panic, not a hang.
    let group = row_bits(11);
    match service.submit(NormRequest::whiten_group(&group)) {
        Err(NormError::ServiceShutdown) => {}
        other => panic!("expected clean ServiceShutdown after poison, got {other:?}"),
    }

    // The service is now shut down as a precaution; normalization is
    // refused cleanly too — again an `Err`, never a cascade.
    match service.submit(NormRequest::bits(&bits)) {
        Err(NormError::ServiceShutdown) => {}
        other => panic!("expected ServiceShutdown at the door, got {other:?}"),
    }
}
