//! Table III: comparison with previous on-chip layer-normalization
//! implementations. Literature rows are constants from the cited papers;
//! the "Ours" rows are generated live from the [`CostModel`].

use softfloat::{Bf16, Fp16, Fp32};

use crate::CostModel;

/// One row of the Table III comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Citation tag (`"[8]"` … or `"Ours"`).
    pub implementation: &'static str,
    /// Technology node.
    pub technology: &'static str,
    /// Normalization method.
    pub method: &'static str,
    /// Arithmetic operation profile.
    pub operations: &'static str,
    /// Data format(s).
    pub format: String,
    /// Area in mm² (`None` where the source does not report it).
    pub area_mm2: Option<f64>,
    /// Power in mW (`None` where the source does not report it).
    pub power_mw: Option<f64>,
    /// Clock frequency in MHz (`None` where the source does not report it).
    pub clock_mhz: Option<f64>,
}

/// All rows of Table III: four literature baselines plus our three formats
/// computed from `model`.
pub fn comparison_rows(model: &CostModel) -> Vec<ComparisonRow> {
    let mut rows = vec![
        ComparisonRow {
            implementation: "[8] SwiftTron",
            technology: "65nm CMOS",
            method: "approximate SQRT",
            operations: "addition, division, bit shift",
            format: "INT32".into(),
            area_mm2: Some(68.3),
            power_mw: Some(2000.0),
            clock_mhz: Some(143.0),
        },
        ComparisonRow {
            implementation: "[9] NN-LUT",
            technology: "7nm CMOS",
            method: "approximate 1/SQRT",
            operations: "multiplication, addition",
            format: "INT32/FP32/FP16".into(),
            // Reported per-unit areas are in µm² (1008.9/1133.6/498.4);
            // listed here as the FP32 unit in mm² for comparability.
            area_mm2: Some(1133.6e-6),
            power_mw: Some(43.7e-3),
            clock_mhz: None,
        },
        ComparisonRow {
            implementation: "[10] PIM-GPT",
            technology: "28nm CMOS",
            method: "FISR",
            operations: "multiplication, addition, bit shift",
            format: "BFloat16".into(),
            area_mm2: None,
            power_mw: None,
            clock_mhz: Some(1000.0),
        },
        ComparisonRow {
            implementation: "[11] SOLE",
            technology: "28nm CMOS",
            method: "layer norm w/ dynamic compress",
            operations: "multiplication, addition, bit shift",
            format: "INT8".into(),
            area_mm2: None,
            power_mw: None,
            clock_mhz: Some(1000.0),
        },
    ];
    for (report, fmt) in [
        (model.report::<Fp32>(), "FP32"),
        (model.report::<Fp16>(), "FP16"),
        (model.report::<Bf16>(), "BFloat16"),
    ] {
        rows.push(ComparisonRow {
            implementation: "Ours (IterL2Norm)",
            technology: "32/28nm CMOS",
            method: "IterL2Norm",
            operations: "multiplication, addition",
            format: fmt.into(),
            area_mm2: Some(report.area_mm2),
            power_mw: Some(report.power_mw),
            clock_mhz: Some(100.0),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_total() {
        let rows = comparison_rows(&CostModel::saed32());
        assert_eq!(rows.len(), 7);
        assert_eq!(
            rows.iter()
                .filter(|r| r.implementation.starts_with("Ours"))
                .count(),
            3
        );
    }

    #[test]
    fn our_method_avoids_division() {
        // The headline of Table III: IterL2Norm needs only multiplication
        // and addition, unlike [8] which needs division.
        let rows = comparison_rows(&CostModel::saed32());
        let ours = rows
            .iter()
            .find(|r| r.implementation.starts_with("Ours"))
            .unwrap();
        assert!(!ours.operations.contains("division"));
        let swifttron = rows
            .iter()
            .find(|r| r.implementation.contains("[8]"))
            .unwrap();
        assert!(swifttron.operations.contains("division"));
    }

    #[test]
    fn our_power_is_orders_below_swifttron() {
        let rows = comparison_rows(&CostModel::saed32());
        let ours_fp32 = rows
            .iter()
            .find(|r| r.implementation.starts_with("Ours") && r.format == "FP32")
            .unwrap();
        let swifttron = rows
            .iter()
            .find(|r| r.implementation.contains("[8]"))
            .unwrap();
        assert!(ours_fp32.power_mw.unwrap() * 10.0 < swifttron.power_mw.unwrap());
        assert!(ours_fp32.area_mm2.unwrap() * 10.0 < swifttron.area_mm2.unwrap());
    }

    #[test]
    fn literature_rows_marked_unavailable_where_paper_says_so() {
        let rows = comparison_rows(&CostModel::saed32());
        let pim = rows
            .iter()
            .find(|r| r.implementation.contains("[10]"))
            .unwrap();
        assert!(pim.area_mm2.is_none() && pim.power_mw.is_none());
        let sole = rows
            .iter()
            .find(|r| r.implementation.contains("[11]"))
            .unwrap();
        assert!(sole.area_mm2.is_none());
    }
}
