//! Analytic area/power/memory model of the IterL2Norm macro — the software
//! stand-in for the paper's Synopsys Design Compiler + SAED 32/28 nm
//! synthesis runs (Table II, Fig. 6, Table III).
//!
//! # Model form (from circuit structure)
//!
//! * **Memory**: the Input/γ/β buffers store 1024 entries each and the
//!   partial-sum buffer 16, so memory is exactly `(3·1024 + 16)·w` bits for
//!   a `w`-bit format — reproducing the paper's 96.5/48.3 kib *identically*.
//!   Buffers synthesize to flip-flop arrays in this flow (~16 µm²/bit
//!   including routing).
//! * **Multipliers**: a significand array dominates → cells ∝ `(M+1)²`.
//! * **Adders**: alignment/normalization shifters dominate → cells ∝
//!   `w·log₂w` of the storage width.
//! * **Fixed**: controllers, FSMs, the scalar iteration unit and memory
//!   periphery — format-independent to first order.
//!
//! Three coefficients (`KM`, `KA`, `FIXED_CELLS`) are calibrated on the
//! paper's published cell counts; area and power coefficients on the FP32
//! column. The reproduction check — did the *model* capture the physics? —
//! is that the FP16/BFloat16 columns then come out within a few percent of
//! the paper's (see `table2_synthesis` in the bench crate and
//! EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```
//! use softfloat::Fp32;
//! use synthmodel::CostModel;
//!
//! let report = CostModel::saed32().report::<Fp32>();
//! assert!((report.memory_kib - 96.5).abs() < 0.1);
//! assert!((report.total_cells as f64 - 269_300.0).abs() / 269_300.0 < 0.01);
//! assert!((report.power_mw - 22.9).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comparison;

pub use comparison::{comparison_rows, ComparisonRow};

use softfloat::Float;

/// Number of multipliers in the Mul block.
pub const NUM_MULTIPLIERS: u32 = 64;
/// Number of 2-input adders across the nine 8-input trees (9 × 7).
pub const NUM_ADDERS: u32 = 63;
/// Entries per data buffer (input, γ, β).
pub const BUFFER_ENTRIES: u32 = 1024;
/// Entries in the partial-sum buffer.
pub const PARTIAL_ENTRIES: u32 = 16;

/// Block categories used in the Fig. 6 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    /// Input/γ/β and partial-sum buffers.
    Memory,
    /// The 64-multiplier Mul block.
    MulBlock,
    /// The nine-adder-tree Add block.
    AddBlock,
    /// Controllers, iteration unit, memory periphery.
    Other,
}

impl Block {
    /// All blocks, breakdown order.
    pub const ALL: [Block; 4] = [
        Block::Memory,
        Block::MulBlock,
        Block::AddBlock,
        Block::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Block::Memory => "memory",
            Block::MulBlock => "mul-block",
            Block::AddBlock => "add-block",
            Block::Other => "other",
        }
    }
}

/// One block's share of the macro cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Which block.
    pub block: Block,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW at 100 MHz / 1.05 V.
    pub power_mw: f64,
    /// Standard cells (0 for pure memory bits).
    pub cells: u64,
}

/// Full cost report for one format (one Table II row plus the Fig. 6
/// breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroCost {
    /// Format name (`"FP32"` etc.).
    pub format: &'static str,
    /// On-chip memory in kib.
    pub memory_kib: f64,
    /// Total standard cells (logic only, as Table II counts them).
    pub total_cells: u64,
    /// Total area in mm².
    pub area_mm2: f64,
    /// Area excluding the Add and Mul blocks (Table II's † number — those
    /// units can be shared with a co-integrated MatMul engine).
    pub area_wo_addmul_mm2: f64,
    /// Power in mW at 100 MHz / 1.05 V.
    pub power_mw: f64,
    /// Per-block breakdown (Fig. 6).
    pub blocks: Vec<BlockCost>,
}

impl MacroCost {
    /// Area share of a block, in percent.
    pub fn area_share(&self, block: Block) -> f64 {
        let b = self
            .blocks
            .iter()
            .find(|c| c.block == block)
            .expect("all blocks present");
        100.0 * b.area_mm2 / self.area_mm2
    }

    /// Power share of a block, in percent.
    pub fn power_share(&self, block: Block) -> f64 {
        let b = self
            .blocks
            .iter()
            .find(|c| c.block == block)
            .expect("all blocks present");
        100.0 * b.power_mw / self.power_mw
    }
}

/// The calibrated cost model.
///
/// Construct via [`CostModel::saed32`] for the paper's 32/28 nm
/// operating point, or build custom coefficients for technology scaling
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Multiplier cells per squared significand bit.
    pub km: f64,
    /// Adder cells per width·log₂(width).
    pub ka: f64,
    /// Format-independent cells (controllers, iteration unit, periphery).
    pub fixed_cells: f64,
    /// Logic area per cell, µm².
    pub cell_area_um2: f64,
    /// Buffer area per bit (flip-flop array incl. routing), µm².
    pub bit_area_um2: f64,
    /// Logic power per cell at 100 MHz / 1.05 V, µW.
    pub cell_power_uw: f64,
    /// Buffer power per bit, µW.
    pub bit_power_uw: f64,
}

impl CostModel {
    /// Coefficients calibrated on the paper's SAED 32/28 nm synthesis
    /// results (Table II) at 100 MHz / 1.05 V.
    pub fn saed32() -> Self {
        CostModel {
            // Cell model solved from the three published cell counts:
            // km from the FP16→BF16 delta (pure multiplier change),
            // ka from the FP32→FP16 delta, fixed from the FP16 absolute.
            km: 3.591,
            ka: 10.686,
            fixed_cells: 29_206.0,
            // Area: cell area from the FP32 Add+Mul area (0.7 mm² over
            // ~240k cells), bit area from the FP32 non-Add/Mul area.
            cell_area_um2: 2.92,
            bit_area_um2: 16.34,
            // Power: least-squares on the three published totals.
            cell_power_uw: 0.0837,
            bit_power_uw: 0.0015,
        }
    }

    /// Memory bits for a `w`-bit format: `(3·1024 + 16)·w`.
    pub fn memory_bits(&self, format_bits: u32) -> u64 {
        u64::from(3 * BUFFER_ENTRIES + PARTIAL_ENTRIES) * u64::from(format_bits)
    }

    /// Cells of one `(M+1)²`-array multiplier.
    pub fn multiplier_cells(&self, mant_bits: u32) -> f64 {
        let sig = f64::from(mant_bits + 1);
        self.km * sig * sig
    }

    /// Cells of one adder (width·log₂width shifter-dominated).
    pub fn adder_cells(&self, format_bits: u32) -> f64 {
        let w = f64::from(format_bits);
        self.ka * w * w.log2()
    }

    /// Full report for format `F` (one Table II row + Fig. 6 breakdown).
    pub fn report<F: Float>(&self) -> MacroCost {
        let bits = self.memory_bits(F::BITS);
        let mul_cells = f64::from(NUM_MULTIPLIERS) * self.multiplier_cells(F::MANT_BITS);
        let add_cells = f64::from(NUM_ADDERS) * self.adder_cells(F::BITS);
        let other_cells = self.fixed_cells;
        let total_cells = mul_cells + add_cells + other_cells;

        let mem_area = bits as f64 * self.bit_area_um2 * 1e-6; // mm²
        let mul_area = mul_cells * self.cell_area_um2 * 1e-6;
        let add_area = add_cells * self.cell_area_um2 * 1e-6;
        let other_area = other_cells * self.cell_area_um2 * 1e-6;

        let mem_power = bits as f64 * self.bit_power_uw * 1e-3; // mW
        let mul_power = mul_cells * self.cell_power_uw * 1e-3;
        let add_power = add_cells * self.cell_power_uw * 1e-3;
        let other_power = other_cells * self.cell_power_uw * 1e-3;

        let blocks = vec![
            BlockCost {
                block: Block::Memory,
                area_mm2: mem_area,
                power_mw: mem_power,
                cells: 0,
            },
            BlockCost {
                block: Block::MulBlock,
                area_mm2: mul_area,
                power_mw: mul_power,
                cells: mul_cells.round() as u64,
            },
            BlockCost {
                block: Block::AddBlock,
                area_mm2: add_area,
                power_mw: add_power,
                cells: add_cells.round() as u64,
            },
            BlockCost {
                block: Block::Other,
                area_mm2: other_area,
                power_mw: other_power,
                cells: other_cells.round() as u64,
            },
        ];

        MacroCost {
            format: F::NAME,
            memory_kib: bits as f64 / 1024.0,
            total_cells: total_cells.round() as u64,
            area_mm2: mem_area + mul_area + add_area + other_area,
            area_wo_addmul_mm2: mem_area + other_area,
            power_mw: mem_power + mul_power + add_power + other_power,
            blocks,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::saed32()
    }
}

impl MacroCost {
    /// Energy of a run lasting `cycles` clock cycles at `clock_mhz`, in
    /// nanojoules: `P·t = power_mw · cycles/clock`.
    ///
    /// This is the quantity the paper's motivation cares about — the cost
    /// of normalizing on-chip instead of shipping activations to the host.
    ///
    /// # Examples
    ///
    /// ```
    /// use softfloat::Fp32;
    /// use synthmodel::CostModel;
    ///
    /// let cost = CostModel::saed32().report::<Fp32>();
    /// // d = 1024 takes 227 cycles at 100 MHz.
    /// let nj = cost.energy_nj(227, 100.0);
    /// assert!((nj - cost.power_mw * 2.27).abs() < 1e-9); // 2.27 µs · P mW
    /// ```
    pub fn energy_nj(&self, cycles: u32, clock_mhz: f64) -> f64 {
        // mW · µs = nJ; cycles / MHz = µs.
        self.power_mw * (f64::from(cycles) / clock_mhz)
    }

    /// Energy per *element* for a `d`-long vector normalized in `cycles`
    /// cycles, in picojoules — the throughput-normalized efficiency number.
    pub fn energy_per_element_pj(&self, d: usize, cycles: u32, clock_mhz: f64) -> f64 {
        self.energy_nj(cycles, clock_mhz) * 1e3 / d as f64
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use softfloat::{Bf16, Fp32};

    #[test]
    fn energy_scales_with_cycles_and_power() {
        let m = CostModel::saed32();
        let f32c = m.report::<Fp32>();
        let bfc = m.report::<Bf16>();
        assert!(f32c.energy_nj(227, 100.0) > f32c.energy_nj(116, 100.0));
        // BF16 burns less energy for the same cycle count.
        assert!(bfc.energy_nj(227, 100.0) < f32c.energy_nj(227, 100.0));
        // Doubling the clock halves the energy at fixed cycles (same work,
        // less leakage time in this simple model).
        let e100 = f32c.energy_nj(227, 100.0);
        let e200 = f32c.energy_nj(227, 200.0);
        assert!((e100 / e200 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_element_energy_improves_with_length() {
        // Longer vectors amortize the fixed iteration/control cycles.
        let m = CostModel::saed32().report::<Fp32>();
        let short = m.energy_per_element_pj(64, 116, 100.0);
        let long = m.energy_per_element_pj(1024, 227, 100.0);
        assert!(
            long < short / 5.0,
            "per-element energy: short {short} pJ vs long {long} pJ"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::{Bf16, Fp16, Fp32};

    #[test]
    fn memory_matches_paper_exactly() {
        let m = CostModel::saed32();
        assert_eq!(m.memory_bits(32), 98_816);
        assert!((m.report::<Fp32>().memory_kib - 96.5).abs() < 0.1);
        assert!((m.report::<Fp16>().memory_kib - 48.3).abs() < 0.1);
        assert!((m.report::<Bf16>().memory_kib - 48.3).abs() < 0.1);
    }

    #[test]
    fn cell_counts_match_table2_within_one_percent() {
        let m = CostModel::saed32();
        let checks = [
            (m.report::<Fp32>().total_cells as f64, 269_300.0),
            (m.report::<Fp16>().total_cells as f64, 100_100.0),
            (m.report::<Bf16>().total_cells as f64, 87_000.0),
        ];
        for (got, want) in checks {
            assert!(
                (got - want).abs() / want < 0.01,
                "cells {got} vs paper {want}"
            );
        }
    }

    #[test]
    fn power_matches_table2_within_three_percent() {
        let m = CostModel::saed32();
        let checks = [
            (m.report::<Fp32>().power_mw, 22.9),
            (m.report::<Fp16>().power_mw, 8.4),
            (m.report::<Bf16>().power_mw, 7.3),
        ];
        for (got, want) in checks {
            assert!(
                (got - want).abs() / want < 0.03,
                "power {got} vs paper {want}"
            );
        }
    }

    #[test]
    fn area_matches_table2_within_fifteen_percent() {
        // Area carries the largest model error (the paper's buffers and
        // placement overhead aren't published); the cross-format *ratios*
        // are the meaningful check, asserted separately below.
        let m = CostModel::saed32();
        let checks = [
            (m.report::<Fp32>().area_mm2, 2.4),
            (m.report::<Fp16>().area_mm2, 1.1),
            (m.report::<Bf16>().area_mm2, 1.0),
        ];
        for (got, want) in checks {
            assert!(
                (got - want).abs() / want < 0.15,
                "area {got} vs paper {want}"
            );
        }
    }

    #[test]
    fn area_without_addmul_matches_table2_dagger() {
        let m = CostModel::saed32();
        assert!((m.report::<Fp32>().area_wo_addmul_mm2 - 1.7).abs() < 0.2);
        assert!((m.report::<Fp16>().area_wo_addmul_mm2 - 0.8).abs() < 0.15);
        assert!((m.report::<Bf16>().area_wo_addmul_mm2 - 0.8).abs() < 0.15);
    }

    #[test]
    fn cross_format_ratios_hold() {
        // The physically meaningful content of Table II: FP32 needs ~2×
        // memory and ~2.2–2.4× area of the 16-bit formats; BF16 is slightly
        // cheaper than FP16 (fewer mantissa bits).
        let m = CostModel::saed32();
        let f32r = m.report::<Fp32>();
        let f16r = m.report::<Fp16>();
        let bf1r = m.report::<Bf16>();
        assert!((f32r.memory_kib / f16r.memory_kib - 2.0).abs() < 1e-9);
        let area_ratio = f32r.area_mm2 / f16r.area_mm2;
        assert!((1.9..2.6).contains(&area_ratio), "area ratio {area_ratio}");
        assert!(bf1r.total_cells < f16r.total_cells);
        assert!(bf1r.power_mw < f16r.power_mw);
        assert!(bf1r.area_mm2 <= f16r.area_mm2);
    }

    #[test]
    fn memory_dominates_area_for_all_formats() {
        // Paper Fig. 6a–c: "the memory occupies the largest area in the
        // macro" for every format.
        let m = CostModel::saed32();
        fn check(cost: &MacroCost) {
            let mem = cost.area_share(Block::Memory);
            for b in [Block::MulBlock, Block::AddBlock, Block::Other] {
                assert!(
                    mem > cost.area_share(b),
                    "{}: memory {mem}% ≤ {} {}%",
                    cost.format,
                    b.name(),
                    cost.area_share(b)
                );
            }
        }
        check(&m.report::<Fp32>());
        check(&m.report::<Fp16>());
        check(&m.report::<Bf16>());
    }

    #[test]
    fn multipliers_and_adders_dominate_power() {
        // Paper Fig. 6d–f: power is primarily the FP multipliers/adders.
        let m = CostModel::saed32();
        let r = m.report::<Fp32>();
        let logic = r.power_share(Block::MulBlock) + r.power_share(Block::AddBlock);
        assert!(logic > 60.0, "logic power share only {logic}%");
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let m = CostModel::saed32();
        for report in [m.report::<Fp32>(), m.report::<Fp16>(), m.report::<Bf16>()] {
            let area: f64 = report.blocks.iter().map(|b| b.area_mm2).sum();
            let power: f64 = report.blocks.iter().map(|b| b.power_mw).sum();
            assert!((area - report.area_mm2).abs() < 1e-9);
            assert!((power - report.power_mw).abs() < 1e-9);
            let shares: f64 = Block::ALL.iter().map(|&b| report.area_share(b)).sum();
            assert!((shares - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bf16_multiplier_cheaper_than_fp16_but_adder_equal() {
        // BF16 has fewer mantissa bits (multiplier shrinks) but the same
        // storage width (adder cost identical) — the Table II explanation.
        let m = CostModel::saed32();
        assert!(m.multiplier_cells(7) < m.multiplier_cells(10));
        assert_eq!(m.adder_cells(16), m.adder_cells(16));
        let f16 = m.report::<Fp16>();
        let bf16 = m.report::<Bf16>();
        let f16_add = f16
            .blocks
            .iter()
            .find(|b| b.block == Block::AddBlock)
            .unwrap();
        let bf_add = bf16
            .blocks
            .iter()
            .find(|b| b.block == Block::AddBlock)
            .unwrap();
        assert_eq!(f16_add.cells, bf_add.cells);
    }
}
