//! Deterministic input-vector generators for the IterL2Norm experiments,
//! tests and benches.
//!
//! The paper's evaluation draws "1,000 random vectors sampled from a uniform
//! distribution in the range (−1, 1)" per length and format; that generator
//! lives here ([`uniform_vectors`]) together with stress distributions used
//! by the extended test suite (wide dynamic range, near-constant,
//! subnormal-heavy, outlier-spiked). Everything is seeded, so every
//! experiment is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use workloads::{Distribution, VectorGen};
//!
//! let gen = VectorGen::new(Distribution::Uniform, 42);
//! let v = gen.vector_f64(384, 0);
//! assert_eq!(v.len(), 384);
//! assert!(v.iter().all(|&x| (-1.0..1.0).contains(&x)));
//! // Same seed and index ⇒ same vector.
//! assert_eq!(v, gen.vector_f64(384, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softfloat::Float;

/// The input distributions used across the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Distribution {
    /// Uniform(−1, 1) — the paper's evaluation workload.
    #[default]
    Uniform,
    /// Standard normal (Box–Muller) — activations after residual adds look
    /// closer to this.
    Gaussian,
    /// Log-uniform magnitudes across ~12 decades with random signs —
    /// stresses the exponent-handling paths.
    WideDynamicRange,
    /// A constant plus tiny jitter — stresses the m ≈ 0 path and
    /// cancellation in the mean shift.
    NearConstant,
    /// Tiny values near the subnormal threshold of FP16.
    SubnormalHeavy,
    /// Uniform(−1, 1) with a single large outlier — skews `m` against the
    /// rest of the vector.
    OutlierSpiked,
}

impl Distribution {
    /// All distributions, for sweep-style tests.
    pub const ALL: [Distribution; 6] = [
        Distribution::Uniform,
        Distribution::Gaussian,
        Distribution::WideDynamicRange,
        Distribution::NearConstant,
        Distribution::SubnormalHeavy,
        Distribution::OutlierSpiked,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Gaussian => "gaussian",
            Distribution::WideDynamicRange => "wide-range",
            Distribution::NearConstant => "near-constant",
            Distribution::SubnormalHeavy => "subnormal",
            Distribution::OutlierSpiked => "outlier",
        }
    }
}

/// Seeded generator of experiment vectors.
///
/// Each `(seed, distribution, length, index)` tuple maps to one fixed
/// vector, so trials can be enumerated and re-run independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorGen {
    dist: Distribution,
    seed: u64,
}

impl VectorGen {
    /// Generator for `dist` rooted at `seed`.
    pub fn new(dist: Distribution, seed: u64) -> Self {
        VectorGen { dist, seed }
    }

    /// The paper's workload: Uniform(−1, 1), fixed root seed.
    pub fn paper() -> Self {
        VectorGen::new(Distribution::Uniform, 0x1753_2025)
    }

    /// The distribution this generator draws from.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Generate trial vector `index` of length `d` in `f64`.
    pub fn vector_f64(&self, d: usize, index: u64) -> Vec<f64> {
        // Derive a per-vector stream: mix seed, length and index.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((d as u64) << 32)
            .wrapping_add(index);
        let mut rng = StdRng::seed_from_u64(stream);
        match self.dist {
            Distribution::Uniform => (0..d).map(|_| rng.random_range(-1.0..1.0)).collect(),
            Distribution::Gaussian => (0..d).map(|_| gaussian(&mut rng)).collect(),
            Distribution::WideDynamicRange => (0..d)
                .map(|_| {
                    let mag = (rng.random_range(-20.0f64..20.0)).exp2();
                    if rng.random_bool(0.5) {
                        mag
                    } else {
                        -mag
                    }
                })
                .collect(),
            Distribution::NearConstant => {
                let base = rng.random_range(-2.0f64..2.0);
                (0..d)
                    .map(|_| base + rng.random_range(-1e-6f64..1e-6))
                    .collect()
            }
            Distribution::SubnormalHeavy => {
                (0..d).map(|_| rng.random_range(-1e-7f64..1e-7)).collect()
            }
            Distribution::OutlierSpiked => {
                let spike_at = rng.random_range(0..d);
                let spike = rng.random_range(50.0f64..100.0);
                (0..d)
                    .map(|i| {
                        if i == spike_at {
                            spike
                        } else {
                            rng.random_range(-1.0..1.0)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Generate trial vector `index` of length `d`, rounded into format `F`.
    pub fn vector<F: Float>(&self, d: usize, index: u64) -> Vec<F> {
        self.vector_f64(d, index)
            .into_iter()
            .map(F::from_f64)
            .collect()
    }
}

/// Iterator over `count` trial vectors in format `F` (the "1,000 random
/// vectors" pattern of the evaluation section).
pub fn uniform_vectors<F: Float>(d: usize, count: u64, seed: u64) -> impl Iterator<Item = Vec<F>> {
    let gen = VectorGen::new(Distribution::Uniform, seed);
    (0..count).map(move |i| gen.vector::<F>(d, i))
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller; one value per call keeps the stream simple.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::{Fp16, Fp32};

    #[test]
    fn determinism_per_index() {
        let gen = VectorGen::paper();
        for idx in [0u64, 1, 999] {
            assert_eq!(gen.vector_f64(64, idx), gen.vector_f64(64, idx));
        }
    }

    #[test]
    fn different_indices_differ() {
        let gen = VectorGen::paper();
        assert_ne!(gen.vector_f64(64, 0), gen.vector_f64(64, 1));
    }

    #[test]
    fn different_lengths_are_independent_streams() {
        let gen = VectorGen::paper();
        let a = gen.vector_f64(64, 0);
        let b = gen.vector_f64(128, 0);
        assert_ne!(&a[..], &b[..64]);
    }

    #[test]
    fn uniform_stays_in_open_interval() {
        let gen = VectorGen::new(Distribution::Uniform, 7);
        for idx in 0..50 {
            assert!(gen
                .vector_f64(256, idx)
                .iter()
                .all(|&x| (-1.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let gen = VectorGen::new(Distribution::Gaussian, 11);
        let v = gen.vector_f64(100_000, 0);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn wide_range_spans_many_decades() {
        let gen = VectorGen::new(Distribution::WideDynamicRange, 3);
        let v = gen.vector_f64(10_000, 0);
        let max = v.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        let min = v
            .iter()
            .cloned()
            .map(f64::abs)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e9, "range only {max}/{min}");
    }

    #[test]
    fn near_constant_has_tiny_variance() {
        let gen = VectorGen::new(Distribution::NearConstant, 5);
        let v = gen.vector_f64(512, 0);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(var < 1e-11);
    }

    #[test]
    fn subnormal_heavy_values_are_fp16_subnormal() {
        let gen = VectorGen::new(Distribution::SubnormalHeavy, 9);
        let v = gen.vector::<Fp16>(128, 0);
        let subnormal_or_zero = v
            .iter()
            .filter(|x| x.is_zero() || x.exponent_field() == 0)
            .count();
        assert!(
            subnormal_or_zero > 100,
            "only {subnormal_or_zero} subnormal"
        );
    }

    #[test]
    fn outlier_spike_dominates_norm() {
        let gen = VectorGen::new(Distribution::OutlierSpiked, 13);
        let v = gen.vector_f64(256, 0);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        assert!(max >= 50.0);
    }

    #[test]
    fn format_vectors_round_through_from_f64() {
        let gen = VectorGen::paper();
        let f = gen.vector_f64(32, 4);
        let v: Vec<Fp32> = gen.vector::<Fp32>(32, 4);
        for (a, b) in v.iter().zip(&f) {
            assert_eq!(a.to_bits(), Fp32::from_f64(*b).to_bits());
        }
    }

    #[test]
    fn uniform_vectors_iterator_counts() {
        let vs: Vec<Vec<Fp32>> = uniform_vectors::<Fp32>(16, 10, 99).collect();
        assert_eq!(vs.len(), 10);
        assert!(vs.iter().all(|v| v.len() == 16));
    }

    #[test]
    fn distribution_names_are_unique() {
        let mut names: Vec<&str> = Distribution::ALL.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Distribution::ALL.len());
    }
}
