//! A closed-loop / open-loop load generator speaking the norm server's
//! wire protocol — the measurement half of the serving story.
//!
//! The two arrival models answer different questions:
//!
//! * [`Arrival::Closed`] — each worker submits its next request the
//!   moment the previous reply lands. Measures the system's *capacity*:
//!   latency under a fixed concurrency level.
//! * [`Arrival::Open`] — requests are paced by a seeded Poisson process
//!   (exponential interarrivals at a target rate), independent of how
//!   fast replies come back. Measures latency *at a given offered load*,
//!   which is what a tail-latency SLO is actually about.
//!
//! Honesty note: this is a std-only generator over blocking sockets, so
//! the open-loop model is an approximation — each worker paces its sends
//! but still waits for the reply before its next send, which under
//! overload lets the schedule slip (coordinated omission). The report
//! therefore carries both the offered and the achieved rate; on the
//! 1-core container this distinction matters more than any threading.
//!
//! Tenant mixes are weighted [`TenantClass`]es with per-class keyed
//! session stickiness (a keyed request always carries one of the class's
//! `sessions` keys, so request-hash services see stable placement) and an
//! optional high-priority flag. Every random choice is seeded: the same
//! [`LoadConfig`] replays the same request sequence.
//!
//! Latency is recorded per class in microseconds and summarized as
//! p50/p99/p999 (nearest-rank on the merged, sorted samples) — the
//! numbers `results/BENCH_server.json` publishes.

use std::io;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use normserver::protocol::ErrorCode;
use normserver::{ClientRequest, NormClient, ServerReply};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softfloat::Fp32;

use crate::VectorGen;

/// How requests are timed onto the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Submit the next request as soon as the previous reply arrives.
    Closed,
    /// Pace sends by a seeded Poisson process at this aggregate rate
    /// (requests per second across all workers).
    Open {
        /// Offered load, requests per second.
        rate_per_s: f64,
    },
}

impl Arrival {
    /// Short name for reports (`"closed"` / `"open"`).
    pub fn name(&self) -> &'static str {
        match self {
            Arrival::Closed => "closed",
            Arrival::Open { .. } => "open",
        }
    }
}

/// One tenant population in the traffic mix.
#[derive(Debug, Clone)]
pub struct TenantClass {
    /// Report label, e.g. `"gold"`.
    pub name: String,
    /// The tenant id requests bill to.
    pub tenant: u64,
    /// Relative share of the traffic (sampled per request).
    pub weight: u32,
    /// Fraction of this class's requests that carry a session key.
    pub keyed_fraction: f64,
    /// Distinct session keys the class draws from (stickiness: the same
    /// session always hashes to the same shard on the serving side).
    pub sessions: u64,
    /// Send the high-priority flag on this class's requests.
    pub high_priority: bool,
}

/// The full description of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Row length; must match the serving side.
    pub d: usize,
    /// Rows per request.
    pub rows_per_request: usize,
    /// Concurrent connections (one blocking client each).
    pub workers: usize,
    /// Requests each worker submits.
    pub requests_per_worker: usize,
    /// Arrival model.
    pub arrival: Arrival,
    /// The tenant mix; weights are sampled per request.
    pub classes: Vec<TenantClass>,
    /// Root seed — same seed, same request sequence.
    pub seed: u64,
}

/// Latency percentiles over one class's successful requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub samples: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Worst observed, microseconds.
    pub max_us: u64,
    /// Arithmetic mean, microseconds.
    pub mean_us: u64,
}

impl LatencySummary {
    /// Summarize a sample set (sorted internally; empty sets are all
    /// zeros). Percentiles are nearest-rank: `ceil(q·n)`-th smallest.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| -> u64 {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        LatencySummary {
            samples: n as u64,
            p50_us: rank(0.50),
            p99_us: rank(0.99),
            p999_us: rank(0.999),
            max_us: samples[n - 1],
            mean_us: (sum / n as u128) as u64,
        }
    }
}

/// Per-class outcome counts and latency for one run.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The class's label.
    pub name: String,
    /// The class's tenant id.
    pub tenant: u64,
    /// Requests sent.
    pub sent: u64,
    /// Requests that returned normalized bits.
    pub ok: u64,
    /// Rows normalized across `ok` requests.
    pub rows: u64,
    /// Error frames with [`ErrorCode::OverQuota`].
    pub rejected_quota: u64,
    /// Error frames with [`ErrorCode::QueueFull`].
    pub rejected_queue_full: u64,
    /// Any other error frame.
    pub rejected_other: u64,
    /// Latency over the `ok` requests.
    pub latency: LatencySummary,
}

/// The whole run's outcome.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall time of the measurement, seconds.
    pub wall_s: f64,
    /// Requests sent across all classes.
    pub sent: u64,
    /// Requests that returned normalized bits.
    pub ok: u64,
    /// Completed requests per second of wall time.
    pub achieved_rps: f64,
    /// Offered rate for open-loop runs (`None` for closed loop).
    pub offered_rps: Option<f64>,
    /// One report per configured class, in configuration order.
    pub classes: Vec<ClassReport>,
}

/// Deterministic request payload `index` for shape `rows × d`: the
/// paper's Uniform(−1,1) workload rounded into FP32 storage bits —
/// exactly what a direct in-process submit of the same index produces,
/// so wire-vs-direct bit comparisons need no tolerance.
pub fn payload_bits(d: usize, rows: usize, index: u64) -> Vec<u32> {
    VectorGen::paper()
        .vector::<Fp32>(d * rows, index)
        .into_iter()
        .map(|x| x.to_bits())
        .collect()
}

/// Per-worker accumulation, merged after the run.
#[derive(Default)]
struct ClassAccum {
    sent: u64,
    ok: u64,
    rows: u64,
    rejected_quota: u64,
    rejected_queue_full: u64,
    rejected_other: u64,
    latencies_us: Vec<u64>,
}

/// The number of distinct payloads the generator cycles through — enough
/// to defeat trivial caching, few enough to amortize generation.
const PAYLOAD_POOL: u64 = 8;

/// Drive one load-generation run against a server, connecting each
/// worker through `connect` (e.g. a closure around
/// [`NormClient::connect_tcp`]). Returns the merged report.
///
/// # Errors
///
/// Config validation failures, connection failures, and any wire-level
/// error mid-run (a malformed frame or dead socket aborts the run — a
/// load test over a broken transport has no meaningful numbers).
pub fn run_load<F>(config: &LoadConfig, connect: F) -> Result<LoadReport, String>
where
    F: Fn() -> io::Result<NormClient> + Sync,
{
    if config.d == 0 || config.rows_per_request == 0 {
        return Err("load config needs d >= 1 and rows_per_request >= 1".into());
    }
    if config.workers == 0 || config.requests_per_worker == 0 {
        return Err("load config needs workers >= 1 and requests_per_worker >= 1".into());
    }
    if config.classes.is_empty() {
        return Err("load config needs at least one tenant class".into());
    }
    let total_weight: u64 = config.classes.iter().map(|c| u64::from(c.weight)).sum();
    if total_weight == 0 {
        return Err("tenant class weights must not all be zero".into());
    }
    if let Arrival::Open { rate_per_s } = config.arrival {
        if !(rate_per_s.is_finite() && rate_per_s > 0.0) {
            return Err("open-loop rate must be finite and > 0".into());
        }
    }

    // Payloads are shared, read-only, generated once.
    let payloads: Vec<Vec<u32>> = (0..PAYLOAD_POOL)
        .map(|i| payload_bits(config.d, config.rows_per_request, i))
        .collect();

    let accums: Mutex<Vec<Vec<ClassAccum>>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..config.workers {
            let connect = &connect;
            let payloads = &payloads;
            let accums = &accums;
            let failure = &failure;
            scope.spawn(
                move || match run_worker(config, worker, connect, payloads, start) {
                    Ok(acc) => accums
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(acc),
                    Err(e) => {
                        let mut failure = failure.lock().unwrap_or_else(PoisonError::into_inner);
                        if failure.is_none() {
                            *failure = Some(format!("worker {worker}: {e}"));
                        }
                    }
                },
            );
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    if let Some(err) = failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(err);
    }

    // Merge workers' per-class accumulators.
    let per_worker = accums.into_inner().unwrap();
    let mut classes = Vec::with_capacity(config.classes.len());
    let mut sent = 0u64;
    let mut ok = 0u64;
    for (idx, class) in config.classes.iter().enumerate() {
        let mut merged = ClassAccum::default();
        for worker_acc in &per_worker {
            let acc = &worker_acc[idx];
            merged.sent += acc.sent;
            merged.ok += acc.ok;
            merged.rows += acc.rows;
            merged.rejected_quota += acc.rejected_quota;
            merged.rejected_queue_full += acc.rejected_queue_full;
            merged.rejected_other += acc.rejected_other;
            merged.latencies_us.extend_from_slice(&acc.latencies_us);
        }
        sent += merged.sent;
        ok += merged.ok;
        classes.push(ClassReport {
            name: class.name.clone(),
            tenant: class.tenant,
            sent: merged.sent,
            ok: merged.ok,
            rows: merged.rows,
            rejected_quota: merged.rejected_quota,
            rejected_queue_full: merged.rejected_queue_full,
            rejected_other: merged.rejected_other,
            latency: LatencySummary::from_samples(merged.latencies_us),
        });
    }
    Ok(LoadReport {
        wall_s,
        sent,
        ok,
        achieved_rps: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        offered_rps: match config.arrival {
            Arrival::Closed => None,
            Arrival::Open { rate_per_s } => Some(rate_per_s),
        },
        classes,
    })
}

fn run_worker(
    config: &LoadConfig,
    worker: usize,
    connect: &(impl Fn() -> io::Result<NormClient> + Sync),
    payloads: &[Vec<u32>],
    start: Instant,
) -> Result<Vec<ClassAccum>, String> {
    let mut client = connect().map_err(|e| format!("connect failed: {e}"))?;
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(worker as u64),
    );
    let total_weight: u64 = config.classes.iter().map(|c| u64::from(c.weight)).sum();
    let mut acc: Vec<ClassAccum> = config
        .classes
        .iter()
        .map(|_| ClassAccum::default())
        .collect();
    // Open loop: this worker paces 1/workers of the aggregate rate.
    let worker_rate = match config.arrival {
        Arrival::Closed => 0.0,
        Arrival::Open { rate_per_s } => rate_per_s / config.workers as f64,
    };
    let mut next_send_s = 0.0f64;

    for _ in 0..config.requests_per_worker {
        // Weighted class pick.
        let mut ticket = rng.random_range(0..total_weight);
        let mut class_idx = 0usize;
        for (idx, class) in config.classes.iter().enumerate() {
            let w = u64::from(class.weight);
            if ticket < w {
                class_idx = idx;
                break;
            }
            ticket -= w;
        }
        let class = &config.classes[class_idx];
        let payload = &payloads[rng.random_range(0..payloads.len() as u64) as usize];

        // Session stickiness: a keyed request draws one of the class's
        // session keys; the same session always maps to the same key.
        let key = if class.sessions > 0 && rng.random_bool(class.keyed_fraction) {
            let session = rng.random_range(0..class.sessions);
            Some(
                class
                    .tenant
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(session),
            )
        } else {
            None
        };

        // Open loop: wait for the scheduled arrival.
        if worker_rate > 0.0 {
            let u: f64 = rng.random_range(0.0..1.0);
            next_send_s += -(1.0 - u).ln() / worker_rate;
            let target = Duration::from_secs_f64(next_send_s);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }

        let mut request = ClientRequest::new(class.tenant, config.d as u32, payload);
        if let Some(key) = key {
            request = request.with_key(key);
        }
        if class.high_priority {
            request = request.with_priority(iterl2norm::Priority::High);
        }
        let acc = &mut acc[class_idx];
        acc.sent += 1;
        let begin = Instant::now();
        let reply = client
            .request(&request)
            .map_err(|e| format!("request failed: {e}"))?;
        let elapsed_us = u64::try_from(begin.elapsed().as_micros()).unwrap_or(u64::MAX);
        match reply {
            ServerReply::Bits { rows, .. } => {
                acc.ok += 1;
                acc.rows += u64::from(rows);
                acc.latencies_us.push(elapsed_us);
            }
            ServerReply::Rejected(err) => match err.code {
                ErrorCode::OverQuota => acc.rejected_quota += 1,
                ErrorCode::QueueFull => acc.rejected_queue_full += 1,
                _ => acc.rejected_other += 1,
            },
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank_on_known_data() {
        // 1..=1000 µs: p50 = 500, p99 = 990, p999 = 999, max = 1000.
        let samples: Vec<u64> = (1..=1000).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.samples, 1000);
        assert_eq!(summary.p50_us, 500);
        assert_eq!(summary.p99_us, 990);
        assert_eq!(summary.p999_us, 999);
        assert_eq!(summary.max_us, 1000);
        assert_eq!(summary.mean_us, 500); // (1+1000)/2 truncated
    }

    #[test]
    fn percentiles_on_tiny_and_empty_sets() {
        assert_eq!(
            LatencySummary::from_samples(vec![]),
            LatencySummary::default()
        );
        let one = LatencySummary::from_samples(vec![7]);
        assert_eq!(one.p50_us, 7);
        assert_eq!(one.p99_us, 7);
        assert_eq!(one.p999_us, 7);
        assert_eq!(one.max_us, 7);
        // Unsorted input is sorted internally.
        let two = LatencySummary::from_samples(vec![9, 3]);
        assert_eq!(two.p50_us, 3);
        assert_eq!(two.p999_us, 9);
    }

    #[test]
    fn payload_bits_are_deterministic_and_shaped() {
        let a = payload_bits(16, 4, 0);
        let b = payload_bits(16, 4, 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert_ne!(a, payload_bits(16, 4, 1));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let base = LoadConfig {
            d: 8,
            rows_per_request: 1,
            workers: 1,
            requests_per_worker: 1,
            arrival: Arrival::Closed,
            classes: vec![TenantClass {
                name: "t".into(),
                tenant: 1,
                weight: 1,
                keyed_fraction: 0.0,
                sessions: 0,
                high_priority: false,
            }],
            seed: 1,
        };
        let connect =
            || -> io::Result<NormClient> { Err(io::Error::other("no server in this test")) };
        for mutate in [
            |c: &mut LoadConfig| c.d = 0,
            |c: &mut LoadConfig| c.workers = 0,
            |c: &mut LoadConfig| c.classes.clear(),
            |c: &mut LoadConfig| c.classes[0].weight = 0,
            |c: &mut LoadConfig| c.arrival = Arrival::Open { rate_per_s: 0.0 },
        ] {
            let mut config = base.clone();
            mutate(&mut config);
            assert!(run_load(&config, connect).is_err());
        }
        // The base config is otherwise fine — it fails only at connect.
        let err = run_load(&base, connect).unwrap_err();
        assert!(err.contains("connect failed"), "{err}");
    }

    #[test]
    fn arrival_names() {
        assert_eq!(Arrival::Closed.name(), "closed");
        assert_eq!(Arrival::Open { rate_per_s: 5.0 }.name(), "open");
    }
}
