//! The `normlint` binary. Usage:
//!
//! ```text
//! cargo run -p normlint                 # lint the workspace, all rules
//! cargo run -p normlint -- --deny all   # same, explicitly
//! cargo run -p normlint -- --allow L005 # disable one rule
//! cargo run -p normlint -- --json       # machine-readable output
//! cargo run -p normlint -- --root PATH  # lint a different tree
//! ```
//!
//! Exit code 0 when clean, 1 when any diagnostic fires, 2 on usage or
//! I/O errors.

use normlint::diag::{render_json, RuleId, ALL_RULES};
use normlint::{find_workspace_root, run_workspace, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = Config::default();
    let mut json = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("all") => cfg.deny_all(),
                Some(code) => match RuleId::parse(code) {
                    Some(rule) => cfg.deny(rule),
                    None => return usage_error(&format!("unknown rule `{code}`")),
                },
                None => return usage_error("--deny needs a rule code or `all`"),
            },
            "--allow" => match args.next().as_deref() {
                Some("all") => {
                    for r in ALL_RULES {
                        cfg.allow(r);
                    }
                }
                Some(code) => match RuleId::parse(code) {
                    Some(rule) => cfg.allow(rule),
                    None => return usage_error(&format!("unknown rule `{code}`")),
                },
                None => return usage_error("--allow needs a rule code or `all`"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("normlint: no workspace root found (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    match run_workspace(&root, &cfg) {
        Ok((diags, scanned)) => {
            if json {
                println!("{}", render_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                eprintln!(
                    "normlint: {} file(s) scanned, {} diagnostic(s)",
                    scanned,
                    diags.len()
                );
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("normlint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("normlint: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    eprintln!("usage: normlint [--json] [--deny RULE|all] [--allow RULE|all] [--root PATH]");
    eprintln!("rules:");
    for r in ALL_RULES {
        eprintln!("  {}  {}", r.code(), r.summary());
    }
    eprintln!("waiver syntax: // normlint: allow(L00X) — reason");
}
