//! Per-file scope analysis shared by every rule: `#[cfg(test)]` regions,
//! `normlint` directives (waivers, kernel markers, file pragmas), and the
//! `#![allow(unsafe_code)]` opt-in. Runs once per file; rules consume the
//! result read-only.
//!
//! Directive syntax (always inside a comment):
//!
//! - `normlint: allow(L00X) — reason` — waive the rule on this line and
//!   the next code line. The reason text is mandatory.
//! - `normlint: kernel-begin` / `normlint: kernel-end` — bracket a
//!   value-path kernel region for L004. Must pair up in order.
//! - `normlint: module(no-panic)` — file pragma: every non-test
//!   `.unwrap(`/`.expect(` in the file is an L001 violation.
//! - `normlint: value-path` — file pragma: the file opts into the L003
//!   value-path module set regardless of its path.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{lex, Token, TokenKind};

/// Everything the rules need to know about one file.
pub struct FileScope {
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-comment tokens, in order. Rules walk
    /// this view so a comment between `.` and `unwrap` cannot hide a call.
    pub code: Vec<usize>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    /// Line ranges (inclusive) between kernel-begin/kernel-end markers.
    kernel_regions: Vec<(usize, usize)>,
    /// Waivers: (rule, line of the waiver comment).
    waivers: Vec<(RuleId, usize)>,
    /// Lines that hold at least one code token (for waiver propagation).
    code_lines: Vec<usize>,
    /// `#![allow(unsafe_code)]` present at file scope.
    pub allows_unsafe: bool,
    /// `normlint: module(no-panic)` pragma present.
    pub no_panic_module: bool,
    /// `normlint: value-path` pragma present.
    pub value_path_module: bool,
    /// Directive errors found while parsing (reported under L000).
    pub directive_errors: Vec<Diagnostic>,
}

impl FileScope {
    /// Analyze one file. `path` is the workspace-relative path used in
    /// any L000 diagnostics.
    pub fn analyze(path: &str, src: &str) -> FileScope {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut code_lines: Vec<usize> = code.iter().map(|&i| tokens[i].line).collect();
        code_lines.dedup();

        let mut scope = FileScope {
            test_regions: Vec::new(),
            kernel_regions: Vec::new(),
            waivers: Vec::new(),
            code_lines,
            allows_unsafe: false,
            no_panic_module: false,
            value_path_module: false,
            directive_errors: Vec::new(),
            tokens,
            code,
        };
        scope.scan_directives(path, src);
        scope.scan_inner_attrs(src);
        scope.scan_test_regions(src);
        scope
    }

    /// Parse every `normlint:` directive comment.
    fn scan_directives(&mut self, path: &str, src: &str) {
        let mut kernel_open: Option<usize> = None;
        let mut errors = Vec::new();
        let mut kernels = Vec::new();
        let mut waivers = Vec::new();
        let mut err = |line: usize, col: usize, msg: String| {
            errors.push(Diagnostic {
                rule: RuleId::L000,
                path: path.to_string(),
                line,
                col,
                message: msg,
            });
        };
        for t in &self.tokens {
            if !t.is_comment() {
                continue;
            }
            // Only a comment that *starts* with `normlint:` (after the
            // comment sigils) is a directive — prose and doc text that
            // merely mention the syntax are not.
            let stripped = t
                .text(src)
                .trim_start_matches('/')
                .trim_start_matches(['*', '!'])
                .trim_start();
            let Some(rest) = stripped.strip_prefix("normlint:") else {
                continue;
            };
            let body = rest.trim_end_matches("*/").trim();
            if body == "kernel-begin" {
                if kernel_open.is_some() {
                    err(
                        t.line,
                        t.col,
                        "kernel-begin while a kernel region is already open".into(),
                    );
                } else {
                    kernel_open = Some(t.line);
                }
            } else if body == "kernel-end" {
                match kernel_open.take() {
                    Some(begin) => kernels.push((begin, t.line)),
                    None => err(
                        t.line,
                        t.col,
                        "kernel-end without a matching kernel-begin".into(),
                    ),
                }
            } else if body == "module(no-panic)" {
                self.no_panic_module = true;
            } else if body == "value-path" {
                self.value_path_module = true;
            } else if let Some(rest) = body.strip_prefix("allow(") {
                let Some(close) = rest.find(')') else {
                    err(
                        t.line,
                        t.col,
                        format!("unclosed allow(...) in directive `{body}`"),
                    );
                    continue;
                };
                let code = &rest[..close];
                let Some(rule) = RuleId::parse(code.trim()) else {
                    err(
                        t.line,
                        t.col,
                        format!("unknown rule `{}` in waiver", code.trim()),
                    );
                    continue;
                };
                // The reason is mandatory: text after the `)`, past an
                // optional dash separator, must be non-empty.
                let reason = rest[close + 1..]
                    .trim_start_matches([' ', '\t'])
                    .trim_start_matches(['—', '-', ':'])
                    .trim();
                if reason.is_empty() {
                    err(
                        t.line,
                        t.col,
                        format!(
                            "waiver for {} has no reason — write `allow({}) — why`",
                            rule, rule
                        ),
                    );
                    continue;
                }
                waivers.push((rule, t.line));
            } else {
                err(
                    t.line,
                    t.col,
                    format!("unrecognized normlint directive `{body}`"),
                );
            }
        }
        if let Some(begin) = kernel_open {
            err(begin, 1, "kernel-begin never closed by kernel-end".into());
        }
        self.kernel_regions = kernels;
        self.waivers = waivers;
        self.directive_errors = errors;
    }

    /// Detect file-level inner attributes: `#![allow(unsafe_code)]`.
    fn scan_inner_attrs(&mut self, src: &str) {
        let want = ["#", "!", "[", "allow", "(", "unsafe_code", ")", "]"];
        let code = &self.code;
        for w in code.windows(want.len()) {
            if w.iter().zip(want.iter()).all(|(&i, &s)| {
                let t = &self.tokens[i];
                t.text(src) == s
            }) {
                self.allows_unsafe = true;
                return;
            }
        }
    }

    /// Find `#[cfg(test)]` attributes and record the line span of the
    /// item each one governs (through the matching close brace of the
    /// next `{`). Good enough for `mod tests` and `#[cfg(test)]` fns.
    fn scan_test_regions(&mut self, src: &str) {
        let want = ["#", "[", "cfg", "(", "test", ")", "]"];
        let code = self.code.clone();
        let mut regions = Vec::new();
        let mut k = 0;
        while k + want.len() <= code.len() {
            let matches = code[k..k + want.len()]
                .iter()
                .zip(want.iter())
                .all(|(&i, &s)| self.tokens[i].text(src) == s);
            if !matches {
                k += 1;
                continue;
            }
            let attr_line = self.tokens[code[k]].line;
            // Find the `{` that opens the governed item, then its match.
            let mut j = k + want.len();
            let mut open_at = None;
            while j < code.len() {
                match self.tokens[code[j]].kind {
                    TokenKind::Punct('{') => {
                        open_at = Some(j);
                        break;
                    }
                    // A `;` before any `{` means the item is braceless
                    // (e.g. `#[cfg(test)] use ...;`): region ends there.
                    TokenKind::Punct(';') => break,
                    _ => {}
                }
                j += 1;
            }
            let end_line = match open_at {
                Some(open) => {
                    let mut depth = 0usize;
                    let mut end = self.tokens[code[open]].line;
                    for &ci in &code[open..] {
                        match self.tokens[ci].kind {
                            TokenKind::Punct('{') => depth += 1,
                            TokenKind::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    end = self.tokens[ci].line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    end
                }
                None => self.tokens[code[j.min(code.len() - 1)]].line,
            };
            regions.push((attr_line, end_line));
            k = j.max(k + 1);
        }
        self.test_regions = regions;
    }

    /// True when `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when `line` falls inside a kernel-marked region.
    pub fn in_kernel_region(&self, line: usize) -> bool {
        self.kernel_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when the file declares at least one kernel region.
    pub fn has_kernel_regions(&self) -> bool {
        !self.kernel_regions.is_empty()
    }

    /// True when `rule` is waived on `line`: the waiver comment sits on
    /// the line itself or on a preceding line whose next code line is
    /// `line`.
    pub fn is_waived(&self, rule: RuleId, line: usize) -> bool {
        self.waivers.iter().any(|&(r, wline)| {
            r == rule
                && (wline == line
                    || self
                        .code_lines
                        .iter()
                        .find(|&&cl| cl > wline)
                        .is_some_and(|&cl| cl == line))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(2));
        assert!(s.in_test_region(4));
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn waiver_covers_next_code_line() {
        let src = "// normlint: allow(L001) — poison impossible here\nlet x = m.lock().unwrap();\nlet y = 1;\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(s.is_waived(RuleId::L001, 2));
        assert!(!s.is_waived(RuleId::L001, 3));
        assert!(!s.is_waived(RuleId::L002, 2));
        assert!(s.directive_errors.is_empty());
    }

    #[test]
    fn same_line_waiver_works() {
        let src = "let x = m.lock().unwrap(); // normlint: allow(L001) - shutdown path\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(s.is_waived(RuleId::L001, 1));
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let src = "// normlint: allow(L001)\nlet x = 1;\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(!s.is_waived(RuleId::L001, 2));
        assert_eq!(s.directive_errors.len(), 1);
        assert!(s.directive_errors[0].message.contains("no reason"));
    }

    #[test]
    fn unmatched_kernel_marker_is_an_error() {
        let src = "// normlint: kernel-begin\nlet x = 1;\n";
        let s = FileScope::analyze("x.rs", src);
        assert_eq!(s.directive_errors.len(), 1);
        assert!(s.directive_errors[0].message.contains("never closed"));
    }

    #[test]
    fn kernel_region_spans_markers() {
        let src = "let a = 1;\n// normlint: kernel-begin\nlet b = 2;\n// normlint: kernel-end\nlet c = 3;\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(!s.in_kernel_region(1));
        assert!(s.in_kernel_region(3));
        assert!(!s.in_kernel_region(5));
    }

    #[test]
    fn pragmas_are_detected() {
        let src = "// normlint: module(no-panic)\n// normlint: value-path\nfn f() {}\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(s.no_panic_module);
        assert!(s.value_path_module);
    }

    #[test]
    fn allow_unsafe_inner_attr_detected() {
        let src = "#![allow(unsafe_code)]\nfn f() {}\n";
        let s = FileScope::analyze("x.rs", src);
        assert!(s.allows_unsafe);
        let s2 = FileScope::analyze("x.rs", "#![forbid(unsafe_code)]\n");
        assert!(!s2.allows_unsafe);
    }
}
