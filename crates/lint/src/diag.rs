//! Diagnostics: rule identities, the `Diagnostic` record, and the text /
//! JSON renderers. JSON is emitted by hand (the crate is dependency-free
//! by design — see ISSUE 9) with full string escaping.

use std::fmt;

/// The rule catalogue. `L000` is the meta-rule: a malformed `normlint`
/// directive (bad waiver, unmatched kernel marker) is itself an error —
/// a tool whose escape hatches fail silently enforces nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed or unmatched `normlint` directive.
    L000,
    /// `.unwrap()`/`.expect()` on a lock result (poison-recovery invariant, PR 4).
    L001,
    /// `unsafe` outside an opted-in module, or without a `// SAFETY:` comment (PR 7).
    L002,
    /// Wall-clock / sleep in a value-path module (bit-identity invariant, PRs 2–3).
    L003,
    /// `/`, `sqrt`, `mul_add`, `recip` inside a kernel-marked region (PRs 7–8).
    L004,
    /// Second lock acquired while a shard guard is live (lock-order hazard, PR 4).
    L005,
    /// `NormError` variant missing from its `Display` impl (PR 1).
    L006,
}

/// Every rule, in catalogue order.
pub const ALL_RULES: [RuleId; 7] = [
    RuleId::L000,
    RuleId::L001,
    RuleId::L002,
    RuleId::L003,
    RuleId::L004,
    RuleId::L005,
    RuleId::L006,
];

impl RuleId {
    /// The rule's code, e.g. `"L001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L000 => "L000",
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
            RuleId::L006 => "L006",
        }
    }

    /// One-line description used by `--help` and the JSON output.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::L000 => "malformed or unmatched normlint directive",
            RuleId::L001 => "unwrap/expect on a lock result defeats poison recovery",
            RuleId::L002 => "unsafe requires module opt-in and a SAFETY comment",
            RuleId::L003 => "wall-clock or sleep in a value-path module",
            RuleId::L004 => "div/sqrt/fma inside a kernel-marked region",
            RuleId::L005 => "second lock acquired while a shard guard is live",
            RuleId::L006 => "NormError variant missing from Display",
        }
    }

    /// Parse `"L001"` (case-insensitive) into a rule id.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.code().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule, a location, and a message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: [L00X] message` — the golden-fixture format.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Render diagnostics as a JSON array (stable field order, escaped).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\":\"{}\",", d.rule));
        out.push_str(&format!(
            "\"summary\":\"{}\",",
            escape_json(d.rule.summary())
        ));
        out.push_str(&format!("\"path\":\"{}\",", escape_json(&d.path)));
        out.push_str(&format!("\"line\":{},\"col\":{},", d.line, d.col));
        out.push_str(&format!("\"message\":\"{}\"", escape_json(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_stable() {
        let d = Diagnostic {
            rule: RuleId::L001,
            path: "crates/core/src/service.rs".into(),
            line: 12,
            col: 9,
            message: "poison".into(),
        };
        assert_eq!(
            d.render_text(),
            "crates/core/src/service.rs:12:9: [L001] poison"
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            rule: RuleId::L004,
            path: "a.rs".into(),
            line: 1,
            col: 1,
            message: "operator `/` in \"kernel\"".into(),
        };
        let json = render_json(&[d]);
        assert!(json.contains("\\\"kernel\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn parse_round_trips() {
        for r in ALL_RULES {
            assert_eq!(RuleId::parse(r.code()), Some(r));
        }
        assert_eq!(RuleId::parse("l003"), Some(RuleId::L003));
        assert_eq!(RuleId::parse("L999"), None);
    }
}
