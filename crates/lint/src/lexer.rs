//! A hand-rolled Rust lexer: tokens with line/column spans, aware of
//! line/block/doc comments, string/char/byte literals, raw strings and
//! raw identifiers. It does **not** parse — the rule passes work on the
//! token stream plus a little scope tracking ([`crate::scope`]) — but it
//! is exact about what is *code* and what is comment or literal text, so
//! a rule never fires on the word `unsafe` inside a doc comment or on a
//! `/` inside a string.

/// What a token is. Punctuation is kept one character at a time (`::` is
/// two `Punct(':')` tokens) — every rule that needs a multi-character
/// operator matches the pair explicitly, which keeps the lexer trivial
/// and the rules honest about adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `r#async`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String, raw string, byte string, byte or char literal.
    Literal,
    /// `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */` comment (nesting handled), including `/** ... */`.
    BlockComment,
    /// Any other single character (`.`, `(`, `/`, `#`, ...).
    Punct(char),
}

/// One lexed token: kind plus byte span and 1-based line/column.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based byte column of the first character.
    pub col: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lex `src` into a token stream. Unterminated literals or comments are
/// tolerated (the remainder of the file becomes one token) — a lint tool
/// should degrade, not abort, on the file it is diagnosing.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let c = self.bytes[self.pos];
            let kind = match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    TokenKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    TokenKind::BlockComment
                }
                b'r' | b'b' if self.starts_raw_or_byte_literal() => self.take_prefixed_literal(),
                b'r' if self.peek(1) == Some(b'#')
                    && matches!(self.peek(2), Some(c) if is_ident_start(c)) =>
                {
                    // Raw identifier `r#ident`: one Ident token.
                    self.bump();
                    self.bump();
                    self.take_ident();
                    TokenKind::Ident
                }
                b'"' => {
                    self.take_string();
                    TokenKind::Literal
                }
                b'\'' => self.take_char_or_lifetime(),
                b'0'..=b'9' => {
                    self.take_number();
                    TokenKind::Number
                }
                c if is_ident_start(c) => {
                    self.take_ident();
                    TokenKind::Ident
                }
                c => {
                    self.bump();
                    TokenKind::Punct(c as char)
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
    }

    fn take_block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// At a `r` or `b`: is this the start of a raw string (`r"`, `r#"`,
    /// `br"`, ...), a byte string (`b"`), or a byte char (`b'`)? A raw
    /// *identifier* (`r#ident`) is not a literal.
    fn starts_raw_or_byte_literal(&self) -> bool {
        let mut i = 1;
        if self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'r') {
            i = 2;
        }
        if self.bytes[self.pos] == b'b' && matches!(self.peek(1), Some(b'"') | Some(b'\'')) {
            return true;
        }
        if self.bytes[self.pos] == b'r' || i == 2 {
            let mut j = i;
            while self.peek(j) == Some(b'#') {
                j += 1;
            }
            // `r#ident` has ident chars after the hashes; a raw string has
            // a quote there (and `r"` has a quote with zero hashes).
            return self.peek(j) == Some(b'"') && (j > i || self.peek(i) == Some(b'"'));
        }
        false
    }

    /// Take a literal starting with `r`/`b`: raw string, byte string or
    /// byte char. Falls back to an identifier when it is `r#ident`.
    fn take_prefixed_literal(&mut self) -> TokenKind {
        // Skip the prefix letters.
        while matches!(self.bytes.get(self.pos), Some(b'r') | Some(b'b'))
            && self.pos < self.bytes.len()
        {
            // At most two prefix letters (`br`); a lone `b` before a quote.
            let next = self.peek(1);
            self.bump();
            if matches!(next, Some(b'"') | Some(b'\'') | Some(b'#')) {
                break;
            }
        }
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.bump();
        }
        match self.bytes.get(self.pos) {
            Some(b'"') if hashes > 0 => {
                // Raw string: scan to `"` followed by `hashes` hashes.
                self.bump();
                while self.pos < self.bytes.len() {
                    if self.bytes[self.pos] == b'"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if self.peek(1 + k) != Some(b'#') {
                                ok = false;
                                break;
                            }
                        }
                        self.bump();
                        if ok {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            return TokenKind::Literal;
                        }
                    } else {
                        self.bump();
                    }
                }
                TokenKind::Literal
            }
            Some(b'"') => {
                self.take_string();
                TokenKind::Literal
            }
            Some(b'\'') => {
                self.take_char_body();
                TokenKind::Literal
            }
            _ => {
                // `r#ident`: the hashes were consumed; take the ident.
                self.take_ident();
                TokenKind::Ident
            }
        }
    }

    fn take_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// At a `'`: char literal or lifetime. A lifetime is `'` + ident with
    /// no closing quote (`'a`, `'static`); anything else (escape, single
    /// char + `'`) is a char literal.
    fn take_char_or_lifetime(&mut self) -> TokenKind {
        // Lifetime: quote, ident-start, then ident chars NOT followed by a
        // closing quote (`'a'` is a char literal, `'a` a lifetime).
        if let Some(c) = self.peek(1) {
            if is_ident_start(c) && self.peek(2) != Some(b'\'') {
                self.bump(); // '
                while matches!(self.bytes.get(self.pos), Some(&c) if is_ident_continue(c)) {
                    self.bump();
                }
                return TokenKind::Lifetime;
            }
        }
        self.take_char_body();
        TokenKind::Literal
    }

    fn take_char_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn take_number(&mut self) {
        // Integer part (any base, underscores, suffix letters).
        while matches!(self.bytes.get(self.pos), Some(&c) if c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        // Fractional part only when `.` is followed by a digit (so `1..2`
        // and `1.max(2)` stay untouched).
        if self.bytes.get(self.pos) == Some(&b'.')
            && matches!(self.peek(1), Some(c) if c.is_ascii_digit())
        {
            self.bump();
            while matches!(self.bytes.get(self.pos), Some(&c) if c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
        }
        // Exponent sign (`1e-5` — the alnum loop above ate the `e`).
        if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-'))
            && matches!(
                self.bytes.get(self.pos.wrapping_sub(1)),
                Some(b'e') | Some(b'E')
            )
        {
            self.bump();
            while matches!(self.bytes.get(self.pos), Some(&c) if c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
        }
    }

    fn take_ident(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(&c) if is_ident_continue(c)) {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_strings_and_chars_are_opaque() {
        let src = r##"let x = "a / b"; // unsafe in comment
let c = 'x'; let l: &'static str = r#"raw " body"#; /* block /* nested */ unsafe */"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unsafe")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("a / b")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("raw \" body")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("nested")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
        // No bare Ident token for the commented/quoted words.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn division_is_a_punct_but_comments_are_not() {
        let src = "let y = a / b; // not / division\n";
        let toks = lex(src);
        let slashes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('/'))
            .collect();
        assert_eq!(slashes.len(), 1);
        assert_eq!(slashes[0].line, 1);
    }

    #[test]
    fn numbers_do_not_swallow_operators() {
        let src = "let z = 1.5 * m; let r = 0x1f / 2e-3; let q = 1..4;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "2e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Punct('*')));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Punct('/')));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn spans_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
