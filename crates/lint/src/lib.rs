//! `normlint` — workspace static analysis enforcing the invariants the
//! IterL2Norm reproduction is built on: bit-identity of the value path,
//! unsafe containment, and lock-poison recovery. Dependency-free by
//! design (a linter the build can't bootstrap enforces nothing): a
//! hand-rolled lexer ([`lexer`]), a per-file scope pass ([`scope`]), and
//! seven small rules ([`rules`], catalogued in [`diag::RuleId`]).
//!
//! Library surface: [`check_file_source`] runs every rule over one file
//! (what the fixture tests use); [`run_workspace`] walks the real tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;

use diag::{Diagnostic, RuleId, ALL_RULES};
use rules::RuleCtx;
use scope::FileScope;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Which rules fire, and which paths are on the value path.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rules that produce diagnostics. Defaults to all of them.
    pub denied: BTreeSet<RuleId>,
    /// Workspace-relative path prefixes / files whose modules are on the
    /// value path (L003 scope). A file can also self-declare with
    /// `// normlint: value-path`.
    pub value_path: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            denied: ALL_RULES.iter().copied().collect(),
            value_path: vec![
                "crates/softfloat/src/".to_string(),
                "crates/core/src/engine.rs".to_string(),
                "crates/core/src/backend.rs".to_string(),
                "crates/core/src/simd.rs".to_string(),
                "crates/core/src/whiten.rs".to_string(),
                "crates/core/src/iteration.rs".to_string(),
                "crates/core/src/layernorm.rs".to_string(),
                "crates/core/src/hworder.rs".to_string(),
            ],
        }
    }
}

impl Config {
    /// Deny every rule (the default, restated for the CLI's `--deny all`).
    pub fn deny_all(&mut self) {
        self.denied = ALL_RULES.iter().copied().collect();
    }

    /// Stop a rule from firing.
    pub fn allow(&mut self, rule: RuleId) {
        self.denied.remove(&rule);
    }

    /// Make a rule fire.
    pub fn deny(&mut self, rule: RuleId) {
        self.denied.insert(rule);
    }

    fn is_value_path(&self, rel_path: &str) -> bool {
        self.value_path
            .iter()
            .any(|p| rel_path == p || (p.ends_with('/') && rel_path.starts_with(p.as_str())))
    }
}

/// Run every rule over one file's source. `rel_path` is the
/// workspace-relative path with `/` separators; it drives the L003
/// value-path decision and the `tests/`/`examples/`/`benches/`
/// exemptions, and is echoed in diagnostics.
pub fn check_file_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let scope = FileScope::analyze(rel_path, src);
    let in_test_dir = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "examples" || seg == "benches" || seg == "fixtures");
    let ctx = RuleCtx {
        path: rel_path,
        src,
        scope: &scope,
        in_test_dir,
        value_path: cfg.is_value_path(rel_path) || scope.value_path_module,
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    diags.extend(scope.directive_errors.iter().cloned());
    rules::l001::run(&ctx, &mut diags);
    rules::l002::run(&ctx, &mut diags);
    rules::l003::run(&ctx, &mut diags);
    rules::l004::run(&ctx, &mut diags);
    rules::l005::run(&ctx, &mut diags);
    rules::l006::run(&ctx, &mut diags);

    // Waivers apply to every rule except the meta rule (a broken escape
    // hatch must not be able to waive itself).
    diags.retain(|d| d.rule == RuleId::L000 || !scope.is_waived(d.rule, d.line));
    diags.retain(|d| cfg.denied.contains(&d.rule));
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Walk the workspace at `root`, lint every `.rs` file, and return the
/// diagnostics plus the number of files scanned. Skips `target/`,
/// `.git/`, and the lint crate's own `fixtures/` (they violate rules on
/// purpose).
pub fn run_workspace(root: &Path, cfg: &Config) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(check_file_source(&rel_str, &src, cfg));
    }
    Ok((diags, files.len()))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
