//! The rule passes. Each rule is a function over a [`RuleCtx`] pushing
//! [`Diagnostic`]s; the driver ([`crate::check_file_source`]) runs every
//! rule and then filters waived and allowed findings.

use crate::diag::Diagnostic;
use crate::scope::FileScope;

pub mod l001;
pub mod l002;
pub mod l003;
pub mod l004;
pub mod l005;
pub mod l006;

/// Read-only context handed to every rule for one file.
pub struct RuleCtx<'a> {
    /// Workspace-relative path, `/` separators.
    pub path: &'a str,
    /// File contents.
    pub src: &'a str,
    /// Shared scope analysis.
    pub scope: &'a FileScope,
    /// File lives under a `tests/`, `examples/` or `benches/` directory
    /// (panics and clocks are fine there).
    pub in_test_dir: bool,
    /// File is on the value path (bit-identity contract applies): either
    /// its path is in the configured set or it declares
    /// `// normlint: value-path`.
    pub value_path: bool,
}

impl RuleCtx<'_> {
    /// Build a diagnostic at a token's location.
    pub fn diag(
        &self,
        rule: crate::diag::RuleId,
        line: usize,
        col: usize,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.to_string(),
            line,
            col,
            message,
        }
    }
}
