//! L004 — iterate-don't-invert (the paper's central contract, PRs 7–8).
//! The Newton–Schulz value path replaces `1/sqrt(x)` with an iteration
//! of multiplies and adds so every backend — scalar, SIMD, soft-float —
//! lands on the same bits. Inside a region bracketed by
//! `// normlint: kernel-begin` / `// normlint: kernel-end`, the
//! division operator and the fast-math method family (`sqrt`,
//! `mul_add`, `recip`, `powf`, `powi`) are therefore banned: an FMA
//! contracts rounding steps, a hardware divide/sqrt rounds differently
//! across targets.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;

const BANNED_METHODS: &[&str] = &["mul_add", "sqrt", "recip", "powf", "powi", "div_euclid"];

/// Flag division and fast-math methods inside kernel-marked regions.
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    let scope = ctx.scope;
    if !scope.has_kernel_regions() {
        return;
    }
    for (k, &ti) in scope.code.iter().enumerate() {
        let t = &scope.tokens[ti];
        if !scope.in_kernel_region(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Punct('/') => {
                out.push(
                    ctx.diag(
                        RuleId::L004,
                        t.line,
                        t.col,
                        "division inside a kernel region — the Newton–Schulz path is \
                     multiply/add only"
                            .to_string(),
                    ),
                );
            }
            TokenKind::Ident => {
                let name = t.text(ctx.src);
                if BANNED_METHODS.contains(&name)
                    && k > 0
                    && scope.tokens[scope.code[k - 1]].kind == TokenKind::Punct('.')
                {
                    out.push(ctx.diag(
                        RuleId::L004,
                        t.line,
                        t.col,
                        format!(
                            "`.{name}()` inside a kernel region — hardware divide/sqrt/FMA \
                             rounds differently across targets"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}
