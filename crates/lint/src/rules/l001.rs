//! L001 — poison recovery. Two prongs:
//!
//! 1. Anywhere in the workspace: `.unwrap()`/`.expect(...)` whose
//!    receiver chain ends in a lock acquisition (`lock`, `read`,
//!    `write`, `wait`, ...) panics on a poisoned lock instead of
//!    recovering, violating the PR 4 invariant (`unwrap_or_else(
//!    PoisonError::into_inner)` or the shard helpers are the sanctioned
//!    forms).
//! 2. In a file declaring `// normlint: module(no-panic)`: *every*
//!    non-test `.unwrap(`/`.expect(` is a violation, whatever its
//!    receiver. `service.rs` declares this — its panics propagate into
//!    worker threads and poison the very locks prong 1 protects.
//!
//! Test code (`#[cfg(test)]` regions, `tests/`/`examples/`/`benches/`
//! directories) is exempt: a test *should* panic on an unexpected state.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;

/// Methods whose result must never be unwrapped (prong 1 chain tails).
// The `Condvar::wait` family is deliberately absent: in this workspace
// condvar waits only happen through the shard recovery helpers
// (`wait_on`/`wait_timeout_on`), while `wait` is also the name of the
// public `NormTicket::wait` (a service `Result`, fine to expect on).
const LOCK_METHODS: &[&str] = &["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Flag `.unwrap()`/`.expect()` on lock results (and any panic in a
/// `module(no-panic)` file).
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_test_dir {
        return;
    }
    let scope = ctx.scope;
    let code = &scope.code;
    for (k, &ti) in code.iter().enumerate() {
        let t = &scope.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        if name != "unwrap" && name != "expect" {
            continue;
        }
        // Must be a method call: `.name(`.
        if k == 0 || !is_punct(ctx, code[k - 1], '.') {
            continue;
        }
        if !matches!(code.get(k + 1), Some(&ni) if is_punct_tok(ctx, ni, '(')) {
            continue;
        }
        if scope.in_test_region(t.line) {
            continue;
        }
        if scope.no_panic_module {
            out.push(ctx.diag(
                RuleId::L001,
                t.line,
                t.col,
                format!(
                    ".{name}() in a `module(no-panic)` file — recover or return an error \
                     (a panic here poisons shard locks)"
                ),
            ));
            continue;
        }
        if let Some(method) = chain_tail_lock_method(ctx, k) {
            out.push(ctx.diag(
                RuleId::L001,
                t.line,
                t.col,
                format!(
                    ".{name}() on a `{method}()` result panics on poison — use \
                     unwrap_or_else(PoisonError::into_inner) or the shard recovery helpers"
                ),
            ));
        }
    }
}

/// Walk the postfix chain backwards from the `.` at `code[k-1]` and
/// return the lock method name if the chain tail is a call to one.
/// Handles `expr.lock().unwrap()`, `expr.read()?.unwrap()` and chains of
/// calls; gives up (returns None) at anything that is not `...)`.
fn chain_tail_lock_method(ctx: &RuleCtx<'_>, unwrap_k: usize) -> Option<&'static str> {
    let code = &ctx.scope.code;
    // Position of the token just before the `.`.
    let mut j = unwrap_k.checked_sub(2)?;
    loop {
        // Skip a `?` between the call and the dot.
        if is_punct_tok(ctx, code[j], '?') {
            j = j.checked_sub(1)?;
        }
        if !is_punct_tok(ctx, code[j], ')') {
            return None;
        }
        // Skip backwards over the balanced `(...)`.
        let mut depth = 0usize;
        loop {
            match punct_of(ctx, code[j]) {
                Some(')') => depth += 1,
                Some('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        // Token before the `(` should be the method / function name.
        j = j.checked_sub(1)?;
        let t = &ctx.scope.tokens[code[j]];
        if t.kind != TokenKind::Ident {
            return None;
        }
        let name = t.text(ctx.src);
        if let Some(hit) = LOCK_METHODS.iter().find(|m| **m == name) {
            // Only a *method* call (`.lock()`), not a free function.
            if j > 0 && is_punct_tok(ctx, code[j - 1], '.') {
                return Some(hit);
            }
            return None;
        }
        // Keep walking only through a method chain: `.name(...)`.
        if j == 0 || !is_punct_tok(ctx, code[j - 1], '.') {
            return None;
        }
        j = j.checked_sub(2)?;
    }
}

fn is_punct(ctx: &RuleCtx<'_>, token_index: usize, c: char) -> bool {
    is_punct_tok(ctx, token_index, c)
}

fn is_punct_tok(ctx: &RuleCtx<'_>, token_index: usize, c: char) -> bool {
    ctx.scope.tokens[token_index].kind == TokenKind::Punct(c)
}

fn punct_of(ctx: &RuleCtx<'_>, token_index: usize) -> Option<char> {
    match ctx.scope.tokens[token_index].kind {
        TokenKind::Punct(c) => Some(c),
        _ => None,
    }
}
