//! L006 — error-surface completeness (PR 1's contract). Every variant of
//! `NormError` must be named in its `Display` impl: a variant that falls
//! through to a catch-all arm ships an unhelpful message to operators of
//! the multi-tenant server, and the CLI's exit-code mapping keys off the
//! rendered text. The pass token-parses the enum declaration (skipping
//! attributes, payloads and discriminants) and then checks each variant
//! identifier appears somewhere inside the `impl ... Display for
//! NormError { ... }` body. Only files declaring `enum NormError` are
//! inspected.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;

/// Check every `NormError` variant is named in its `Display` impl.
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    let scope = ctx.scope;
    let code = &scope.code;
    let text = |k: usize| scope.tokens[code[k]].text(ctx.src);
    let kind = |k: usize| scope.tokens[code[k]].kind;

    // Find `enum NormError {`.
    let mut enum_open = None;
    for k in 0..code.len().saturating_sub(2) {
        if kind(k) == TokenKind::Ident
            && text(k) == "enum"
            && text(k + 1) == "NormError"
            && kind(k + 2) == TokenKind::Punct('{')
        {
            enum_open = Some(k + 2);
            break;
        }
    }
    let Some(open) = enum_open else { return };

    // Collect variant idents at brace depth 1, skipping `#[...]`
    // attributes, `(...)`/`{...}` payloads and `= discriminant`s.
    let mut variants: Vec<(String, usize, usize)> = Vec::new();
    let mut k = open + 1;
    let mut brace = 1usize;
    let mut expect_variant = true;
    while k < code.len() && brace > 0 {
        match kind(k) {
            TokenKind::Punct('#') => {
                // Skip the `[...]` group.
                if matches!(code.get(k + 1), Some(&i) if scope.tokens[i].kind == TokenKind::Punct('['))
                {
                    let mut depth = 0usize;
                    k += 1;
                    while k < code.len() {
                        match kind(k) {
                            TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('{') => {
                // Payload: skip the balanced group.
                let (openc, closec) = if kind(k) == TokenKind::Punct('(') {
                    ('(', ')')
                } else {
                    ('{', '}')
                };
                let mut depth = 0usize;
                while k < code.len() {
                    match kind(k) {
                        TokenKind::Punct(c) if c == openc => depth += 1,
                        TokenKind::Punct(c) if c == closec => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            TokenKind::Punct('}') => brace -= 1,
            TokenKind::Punct(',') => expect_variant = true,
            TokenKind::Ident if expect_variant => {
                let t = &scope.tokens[code[k]];
                variants.push((t.text(ctx.src).to_string(), t.line, t.col));
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }

    // Find `impl ... Display for NormError {` and its body span.
    let mut body: Option<(usize, usize)> = None;
    for k in 0..code.len() {
        if kind(k) == TokenKind::Ident && text(k) == "Display" {
            // Look ahead for `for NormError` within a few tokens.
            let mut j = k + 1;
            let mut saw_for = false;
            while j < code.len() && j < k + 6 {
                if kind(j) == TokenKind::Ident && text(j) == "for" {
                    saw_for = true;
                } else if saw_for && kind(j) == TokenKind::Ident && text(j) == "NormError" {
                    // Find opening brace and its match.
                    let mut o = j + 1;
                    while o < code.len() && kind(o) != TokenKind::Punct('{') {
                        o += 1;
                    }
                    let mut depth = 0usize;
                    let mut c = o;
                    while c < code.len() {
                        match kind(c) {
                            TokenKind::Punct('{') => depth += 1,
                            TokenKind::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        c += 1;
                    }
                    body = Some((o, c));
                    break;
                }
                j += 1;
            }
            if body.is_some() {
                break;
            }
        }
    }

    let Some((bo, bc)) = body else {
        if let Some((_, line, col)) = variants.first().map(|v| (v.0.clone(), v.1, v.2)) {
            out.push(
                ctx.diag(
                    RuleId::L006,
                    line,
                    col,
                    "`NormError` has no `Display` impl in this file — every variant must \
                 render a message"
                        .to_string(),
                ),
            );
        }
        return;
    };

    for (name, line, col) in &variants {
        let mentioned = (bo..=bc).any(|k| kind(k) == TokenKind::Ident && text(k) == *name);
        if !mentioned {
            out.push(ctx.diag(
                RuleId::L006,
                *line,
                *col,
                format!("variant `{name}` is not named in the `Display` impl for `NormError`"),
            ));
        }
    }
}
