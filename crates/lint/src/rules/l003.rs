//! L003 — determinism of the value path (PRs 2–3). The normalization /
//! whitening kernels must be pure functions of their inputs: the same
//! request produces the same bits whatever the wall clock, thread count
//! or scheduling says. Value-path modules (engine, backends, SIMD,
//! whitening, soft-float — configured by path, or self-declared with
//! `// normlint: value-path`) therefore may not read `Instant::now` /
//! `SystemTime::now` or call `thread::sleep`; timing belongs to the
//! service, server and bench layers.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;

/// Identifiers that smell of wall-clock / scheduling nondeterminism.
const BANNED: &[&str] = &["Instant", "SystemTime", "sleep", "sleep_ms", "yield_now"];

/// Flag wall-clock / sleep identifiers in value-path modules.
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.value_path || ctx.in_test_dir {
        return;
    }
    let scope = ctx.scope;
    for &ti in &scope.code {
        let t = &scope.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        if !BANNED.contains(&name) {
            continue;
        }
        if scope.in_test_region(t.line) {
            continue;
        }
        out.push(ctx.diag(
            RuleId::L003,
            t.line,
            t.col,
            format!(
                "`{name}` in a value-path module — kernels must be deterministic; \
                 move timing to the service/bench layer"
            ),
        ));
    }
}
