//! L002 — unsafe containment (PR 7). Two requirements:
//!
//! 1. A file may use `unsafe` only if it opts in with
//!    `#![allow(unsafe_code)]` at file scope (the rest of the workspace
//!    carries `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`).
//! 2. Every `unsafe` token must be justified by a comment containing
//!    `SAFETY` (or a `# Safety` doc heading) on the same line or in the
//!    contiguous block of comment/attribute lines directly above it. A
//!    blank line or a plain code line breaks the block — the
//!    justification has to sit *next to* the unsafe code it covers.
//!
//! `#[cfg(test)]` regions are exempt from the SAFETY requirement (but
//! not from the opt-in: a test exercising unsafe still needs the file
//! gate), matching how PR 7 structured the SIMD test modules.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;
use std::collections::{BTreeMap, BTreeSet};

/// Flag `unsafe` outside opted-in modules or without a SAFETY comment.
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    let scope = ctx.scope;
    // Per-line facts for the upward scan.
    let mut safety_lines: BTreeSet<usize> = BTreeSet::new();
    let mut comment_lines: BTreeSet<usize> = BTreeSet::new();
    let mut first_code: BTreeMap<usize, char> = BTreeMap::new();
    for t in &scope.tokens {
        if t.is_comment() {
            comment_lines.insert(t.line);
            let text = t.text(ctx.src);
            if text.contains("SAFETY") || text.contains("Safety") {
                // A block comment may span lines; credit every line the
                // span covers so `/** ... # Safety ... */` works.
                let end_line = t.line + t.text(ctx.src).matches('\n').count();
                for l in t.line..=end_line {
                    safety_lines.insert(l);
                }
                for l in t.line..=end_line {
                    comment_lines.insert(l);
                }
            } else if t.kind == TokenKind::BlockComment {
                let end_line = t.line + text.matches('\n').count();
                for l in t.line..=end_line {
                    comment_lines.insert(l);
                }
            }
        } else {
            first_code.entry(t.line).or_insert(match t.kind {
                TokenKind::Punct(c) => c,
                _ => 'i',
            });
        }
    }

    for &ti in &scope.code {
        let t = &scope.tokens[ti];
        if !t.is_ident(ctx.src, "unsafe") {
            continue;
        }
        if !scope.allows_unsafe {
            out.push(
                ctx.diag(
                    RuleId::L002,
                    t.line,
                    t.col,
                    "`unsafe` in a file without `#![allow(unsafe_code)]` — unsafe is confined \
                 to modules that opt in"
                        .to_string(),
                ),
            );
            continue;
        }
        if scope.in_test_region(t.line) {
            continue;
        }
        if !has_safety_justification(t.line, &safety_lines, &comment_lines, &first_code) {
            out.push(
                ctx.diag(
                    RuleId::L002,
                    t.line,
                    t.col,
                    "`unsafe` without a `// SAFETY:` comment on the same line or directly above"
                        .to_string(),
                ),
            );
        }
    }
}

/// Same line, or walk upward through contiguous comment/attribute lines.
fn has_safety_justification(
    line: usize,
    safety: &BTreeSet<usize>,
    comments: &BTreeSet<usize>,
    first_code: &BTreeMap<usize, char>,
) -> bool {
    if safety.contains(&line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if safety.contains(&l) {
            return true;
        }
        let is_attr = first_code.get(&l) == Some(&'#');
        let is_comment_only = comments.contains(&l) && !first_code.contains_key(&l);
        if is_attr || is_comment_only {
            continue;
        }
        return false;
    }
    false
}
