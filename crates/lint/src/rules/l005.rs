//! L005 — lock-order hazard (PR 4's sharded service). Acquiring a second
//! mutex while a shard guard is live risks an ABBA deadlock between the
//! queue, backend and whiten locks; PR 4's discipline is
//! acquire-use-drop, with `drop(guard)` before crossing to another lock.
//!
//! The pass is a linear scan with block-depth tracking, not a borrow
//! checker: it follows `let`-bound guards from the acquisition set
//! (`.lock()`, `.try_lock()` and the shard helpers `queue_of` /
//! `backend_of` / `whiten_of`), retires them at `drop(name)` or when
//! their block closes, and flags any new acquisition made while one is
//! live. `wait_on`/`wait_timeout_on` are *not* acquisitions — they
//! consume and return the guard they are given (condvar waits release
//! the lock). `.read()`/`.write()` are excluded to avoid colliding with
//! `io::Read`/`io::Write`; the workspace's RwLocks are all behind the
//! shard helpers anyway.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;

const ACQUIRERS: &[&str] = &["lock", "try_lock", "queue_of", "backend_of", "whiten_of"];

struct Guard {
    name: String,
    depth: usize,
}

/// Flag a second lock acquisition while a tracked guard is live.
pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_test_dir {
        return;
    }
    let scope = ctx.scope;
    let code = &scope.code;
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // The `let` binding name of the statement in flight, if any, and
    // whether that statement performed an acquisition.
    let mut pending: Option<String> = None;
    let mut pending_acquires = false;

    let mut k = 0usize;
    while k < code.len() {
        let t = &scope.tokens[code[k]];
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct(';') => {
                if pending_acquires {
                    if let Some(name) = pending.take() {
                        guards.push(Guard { name, depth });
                    }
                }
                pending = None;
                pending_acquires = false;
            }
            TokenKind::Ident => {
                let name = t.text(ctx.src);
                if name == "let" {
                    // `let [mut] NAME` — remember the binding name.
                    let mut j = k + 1;
                    if matches!(code.get(j), Some(&i) if scope.tokens[i].is_ident(ctx.src, "mut")) {
                        j += 1;
                    }
                    if let Some(&i) = code.get(j) {
                        let bt = &scope.tokens[i];
                        if bt.kind == TokenKind::Ident {
                            pending = Some(bt.text(ctx.src).to_string());
                            pending_acquires = false;
                        }
                    }
                } else if name == "drop"
                    && matches!(code.get(k + 1), Some(&i) if scope.tokens[i].kind == TokenKind::Punct('('))
                {
                    if let Some(&i) = code.get(k + 2) {
                        let at = &scope.tokens[i];
                        if at.kind == TokenKind::Ident {
                            let victim = at.text(ctx.src);
                            guards.retain(|g| g.name != victim);
                        }
                    }
                } else if name == "fn" {
                    // A new function: no guard outlives a function body.
                    // (Items can nest; depth tracking handles the rest.)
                    pending = None;
                    pending_acquires = false;
                } else if ACQUIRERS.contains(&name)
                    && k > 0
                    && scope.tokens[code[k - 1]].kind == TokenKind::Punct('.')
                    && matches!(code.get(k + 1), Some(&i) if scope.tokens[i].kind == TokenKind::Punct('('))
                {
                    let in_test = scope.in_test_region(t.line);
                    if !in_test {
                        if let Some(live) = guards.last() {
                            out.push(ctx.diag(
                                RuleId::L005,
                                t.line,
                                t.col,
                                format!(
                                    "`.{name}()` while guard `{}` is live — drop it first \
                                     (lock-order hazard)",
                                    live.name
                                ),
                            ));
                        }
                        if pending.is_some() {
                            pending_acquires = true;
                        }
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
}
