//! The CI gate as a test: the real workspace tree must be lint-clean
//! under the default deny-all configuration. Any new violation — an
//! unwrap on a lock result, an undocumented `unsafe`, a division inside
//! a kernel region — fails this test before it fails the CI job.

use normlint::{find_workspace_root, run_workspace, Config};

#[test]
fn workspace_is_lint_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above the lint crate");
    let (diags, files) = run_workspace(&root, &Config::default()).expect("workspace readable");

    // Sanity: the walk actually saw the tree, not an empty directory.
    assert!(files >= 50, "only {files} .rs files found under {root:?}");

    let rendered: Vec<String> = diags.iter().map(|d| d.render_text()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
