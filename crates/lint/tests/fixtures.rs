//! Golden-diagnostic tests: each rule has a fixture under `fixtures/`
//! that provokes it, and the rendered diagnostics (path, line, col,
//! message) are pinned exactly. The fixture directory is excluded from
//! the workspace walk, so the fixtures are lint-dirty on purpose without
//! dirtying `workspace_is_lint_clean`.
//!
//! Fixtures are linted under *synthetic* workspace-relative paths — the
//! on-disk `fixtures/` segment would otherwise mark them as test code
//! and suppress the very rules under test.

use normlint::diag::RuleId;
use normlint::{check_file_source, Config};

/// Read a fixture from the crate's `fixtures/` directory.
fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint a fixture under a synthetic path with the default (deny-all)
/// config and return the rendered diagnostics.
fn lint_as(name: &str, rel_path: &str) -> Vec<String> {
    let src = fixture(name);
    check_file_source(rel_path, &src, &Config::default())
        .iter()
        .map(|d| d.render_text())
        .collect()
}

#[test]
fn l001_fires_on_lock_unwrap_and_expect() {
    let got = lint_as("l001_lock_unwrap.rs", "crates/server/src/shard.rs");
    assert_eq!(
        got,
        vec![
            "crates/server/src/shard.rs:5:15: [L001] .unwrap() on a `lock()` result panics on \
             poison — use unwrap_or_else(PoisonError::into_inner) or the shard recovery helpers",
            "crates/server/src/shard.rs:9:15: [L001] .expect() on a `lock()` result panics on \
             poison — use unwrap_or_else(PoisonError::into_inner) or the shard recovery helpers",
        ]
    );
}

#[test]
fn l001_no_panic_pragma_bans_every_unwrap() {
    let got = lint_as("l001_no_panic.rs", "crates/core/src/service.rs");
    assert_eq!(
        got,
        vec![
            "crates/core/src/service.rs:5:7: [L001] .unwrap() in a `module(no-panic)` file — \
             recover or return an error (a panic here poisons shard locks)",
            "crates/core/src/service.rs:9:7: [L001] .expect() in a `module(no-panic)` file — \
             recover or return an error (a panic here poisons shard locks)",
        ]
    );
}

#[test]
fn l002_fires_without_file_opt_in() {
    let got = lint_as("l002_unsafe_no_optin.rs", "crates/server/src/peek.rs");
    assert_eq!(
        got,
        vec![
            "crates/server/src/peek.rs:4:5: [L002] `unsafe` in a file without \
             `#![allow(unsafe_code)]` — unsafe is confined to modules that opt in",
        ]
    );
}

#[test]
fn l002_fires_on_missing_safety_comment_only() {
    // Three unsafe sites in the fixture; only the undocumented one fires
    // (same-line and above-the-attribute SAFETY comments both count).
    let got = lint_as("l002_missing_safety.rs", "crates/core/src/ffi.rs");
    assert_eq!(
        got,
        vec![
            "crates/core/src/ffi.rs:5:5: [L002] `unsafe` without a `// SAFETY:` comment on the \
             same line or directly above",
        ]
    );
}

#[test]
fn l003_fires_only_on_value_path_files() {
    // Same source, two paths: on the configured value path it fires ...
    let on_path = lint_as("l003_timing.rs", "crates/core/src/engine.rs");
    assert_eq!(
        on_path,
        vec![
            "crates/core/src/engine.rs:3:16: [L003] `Instant` in a value-path module — kernels \
             must be deterministic; move timing to the service/bench layer",
            "crates/core/src/engine.rs:6:14: [L003] `Instant` in a value-path module — kernels \
             must be deterministic; move timing to the service/bench layer",
            "crates/core/src/engine.rs:14:18: [L003] `sleep` in a value-path module — kernels \
             must be deterministic; move timing to the service/bench layer",
        ]
    );

    // ... and off it the identical source is clean.
    let off_path = lint_as("l003_timing.rs", "crates/server/src/metrics.rs");
    assert_eq!(off_path, Vec::<String>::new());
}

#[test]
fn l003_value_path_pragma_opts_a_file_in() {
    let got = lint_as("l003_pragma.rs", "crates/workloads/src/anywhere.rs");
    assert_eq!(got.len(), 3, "every `SystemTime` mention fires: {got:#?}");
    assert!(got.iter().all(|d| d.contains("[L003] `SystemTime`")));
}

#[test]
fn l004_fires_inside_kernel_regions_only() {
    let got = lint_as("l004_kernel_div.rs", "crates/core/src/simd.rs");
    assert_eq!(
        got,
        vec![
            "crates/core/src/simd.rs:11:25: [L004] division inside a kernel region — the \
             Newton–Schulz path is multiply/add only",
            "crates/core/src/simd.rs:12:24: [L004] `.sqrt()` inside a kernel region — hardware \
             divide/sqrt/FMA rounds differently across targets",
            "crates/core/src/simd.rs:13:21: [L004] `.mul_add()` inside a kernel region — \
             hardware divide/sqrt/FMA rounds differently across targets",
        ]
    );
}

#[test]
fn l005_fires_on_nested_guard_but_not_scoped_or_dropped() {
    let got = lint_as("l005_nested_guard.rs", "crates/core/src/service.rs");
    assert_eq!(
        got,
        vec![
            "crates/core/src/service.rs:12:29: [L005] `.lock()` while guard `queue` is live — \
             drop it first (lock-order hazard)",
        ]
    );
}

#[test]
fn l006_fires_on_variant_missing_from_display() {
    let got = lint_as("l006_display_gap.rs", "crates/core/src/error.rs");
    assert_eq!(
        got,
        vec![
            "crates/core/src/error.rs:7:5: [L006] variant `QueueFull` is not named in the \
             `Display` impl for `NormError`",
        ]
    );
}

#[test]
fn well_formed_waiver_silences_the_rule() {
    let got = lint_as("waived.rs", "crates/server/src/shard.rs");
    assert_eq!(got, Vec::<String>::new());
}

#[test]
fn broken_waivers_report_l000_and_waive_nothing() {
    let got = lint_as("l000_bad_directives.rs", "crates/server/src/shard.rs");
    assert_eq!(
        got,
        vec![
            "crates/server/src/shard.rs:6:5: [L000] waiver for L001 has no reason — write \
             `allow(L001) — why`",
            "crates/server/src/shard.rs:7:15: [L001] .unwrap() on a `lock()` result panics on \
             poison — use unwrap_or_else(PoisonError::into_inner) or the shard recovery helpers",
            "crates/server/src/shard.rs:10:1: [L000] unrecognized normlint directive \
             `allom(L001) — typo in the directive verb`",
        ]
    );
}

#[test]
fn allow_flag_suppresses_a_rule() {
    let mut cfg = Config::default();
    cfg.allow(RuleId::L001);
    let src = fixture("l001_lock_unwrap.rs");
    let got = check_file_source("crates/server/src/shard.rs", &src, &cfg);
    assert!(got.is_empty(), "allowed rule must not fire: {got:#?}");
}

#[test]
fn json_rendering_is_stable() {
    let src = fixture("l006_display_gap.rs");
    let got = check_file_source("crates/core/src/error.rs", &src, &Config::default());
    assert_eq!(got.len(), 1);
    let json = normlint::diag::render_json(&got);
    assert!(json.starts_with("[\n  {\"rule\":\"L006\""), "{json}");
    assert!(
        json.contains("\"path\":\"crates/core/src/error.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\":7,\"col\":5"), "{json}");
}
