// Fixture: L005 fires when a second lock is acquired while a guard from
// the first is still live in the same scope.
use std::sync::{Mutex, PoisonError};

pub struct Shard {
    pub queue: Mutex<Vec<u64>>,
    pub stats: Mutex<u64>,
}

pub fn nested(shard: &Shard) -> u64 {
    let queue = shard.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let stats = shard.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *stats + queue.len() as u64
}

pub fn sequential(shard: &Shard) -> u64 {
    let queue_len = {
        let queue = shard.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.len() as u64
    };
    let stats = shard.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *stats + queue_len
}

pub fn dropped_first(shard: &Shard) -> u64 {
    let queue = shard.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let len = queue.len() as u64;
    drop(queue);
    let stats = shard.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *stats + len
}
