// Fixture: L002 fires on `unsafe` in a file without `#![allow(unsafe_code)]`.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
