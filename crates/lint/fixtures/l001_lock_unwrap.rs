// Fixture: L001 fires on `.unwrap()` / `.expect()` applied to lock results.
use std::sync::Mutex;

pub fn read_counter(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn bump_counter(m: &Mutex<u64>) {
    *m.lock().expect("counter lock") += 1;
}

pub fn fine(m: &Mutex<u64>) -> u64 {
    // Recovery idiom: never flagged.
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn option_unwrap_is_fine(v: Option<u64>) -> u64 {
    // Not a lock result and not a no-panic module: L001 stays quiet.
    v.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt(m: &Mutex<u64>) {
        let _ = m.lock().unwrap();
    }
}
