// Fixture: with the opt-in present, each `unsafe` still needs a SAFETY comment.
#![allow(unsafe_code)]

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture contract).
    unsafe { *p }
}

// SAFETY: justification above the item, across the attribute, also counts.
#[inline]
pub unsafe fn item_level(p: *const u32) -> u32 {
    *p
}
