// Fixture: malformed directives are themselves diagnostics (L000), and a
// broken waiver waives nothing.
use std::sync::Mutex;

pub fn reasonless(m: &Mutex<u64>) -> u64 {
    // normlint: allow(L001)
    *m.lock().unwrap()
}

// normlint: allom(L001) — typo in the directive verb
pub fn unknown_directive() {}
