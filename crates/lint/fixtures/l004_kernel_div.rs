// Fixture: inside kernel-marked regions, division and hardware math
// methods are banned; outside them, anything goes.

pub fn outside_is_free(a: f32, b: f32) -> f32 {
    (a / b).sqrt()
}

pub fn newton_schulz_step(y: &mut [f32], c: f32) {
    // normlint: kernel-begin
    for v in y.iter_mut() {
        let halved = *v / 2.0;
        let rooted = c.sqrt();
        *v = halved.mul_add(c, rooted);
    }
    // normlint: kernel-end
}
