// Fixture: every `NormError` variant must be named in its Display impl;
// `QueueFull` is deliberately missing below.
use std::fmt;

pub enum NormError {
    ShapeMismatch,
    QueueFull,
    ServiceShutdown,
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::ShapeMismatch => write!(f, "input shape mismatch"),
            NormError::ServiceShutdown => write!(f, "service is shut down"),
            _ => write!(f, "unspecified error"),
        }
    }
}
