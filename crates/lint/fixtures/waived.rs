// Fixture: a well-formed waiver silences the named rule on the next code line.
use std::sync::Mutex;

pub fn covered(m: &Mutex<u64>) -> u64 {
    // normlint: allow(L001) — fixture: demonstrates the waiver escape hatch
    *m.lock().unwrap()
}
