// Fixture: L003 fires on wall-clock / sleep calls, but only when the file
// is on the value path (by config path or by `// normlint: value-path`).
use std::time::Instant;

pub fn timed_kernel(x: &mut [f32]) -> f64 {
    let t0 = Instant::now();
    for v in x.iter_mut() {
        *v *= 0.5;
    }
    t0.elapsed().as_secs_f64()
}

pub fn politely_waits() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
