// normlint: value-path
// Fixture: a file can self-declare value-path membership with a pragma.
use std::time::SystemTime;

pub fn stamps() -> SystemTime {
    SystemTime::now()
}
