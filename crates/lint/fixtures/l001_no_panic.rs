// normlint: module(no-panic)
// Fixture: in a `module(no-panic)` file every non-test unwrap/expect fires.

pub fn first(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn second(r: Result<u64, ()>) -> u64 {
    r.expect("value")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let _ = Some(1u64).unwrap();
    }
}
