//! Facade crate for the IterL2Norm reproduction: re-exports every
//! subsystem so the examples and integration tests have one import root.
//!
//! The substance lives in the member crates:
//!
//! * [`softfloat`] — bit-accurate FP32/FP16/BFloat16 arithmetic,
//! * [`iterl2norm`] — the paper's algorithm, baselines and metrics,
//! * [`macrosim`] — the cycle-accurate macro simulator,
//! * [`synthmodel`] — the area/power cost model,
//! * [`transformer`] / [`textgen`] — the LLM-level evaluation substrate,
//! * [`workloads`] — deterministic experiment vectors and the wire-level
//!   load generator,
//! * [`normserver`] — the network-facing multi-tenant serving layer
//!   (wire protocol, admission control, metrics export).
//!
//! # Examples
//!
//! ```
//! use iterl2norm_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Plan once per layer shape, then normalize batches allocation-free.
//! let d = 64;
//! let plan = NormPlan::<Fp32>::new(d)?;
//! let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
//! let batch: Vec<Fp32> = (0..4 * d).map(|i| Fp32::from_f64((i as f64).sin())).collect();
//! let mut out = vec![Fp32::ZERO; batch.len()];
//! assert_eq!(engine.normalize_batch(&plan, &batch, &mut out)?, 4);
//!
//! // The one-shot wrapper remains for experiments.
//! let z = layer_norm(LayerNormInputs::unscaled(&batch[..d]), &IterL2Norm::new())?;
//! assert_eq!(z.len(), d);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iterl2norm;
pub use macrosim;
pub use normserver;
pub use softfloat;
pub use synthmodel;
pub use textgen;
pub use transformer;
pub use workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use iterl2norm::baselines::{ExactRsqrtNorm, Fisr, LutRsqrt};
    pub use iterl2norm::{
        build_backend, layer_norm, layer_norm_detailed, BackendKind, ExecFloat, FormatKind,
        IterConfig, IterL2Norm, LayerNormInputs, MethodSpec, NormBackend, NormError, NormPlan,
        NormRequest, NormService, NormServicePool, NormStats, NormTicket, Normalizer, Placement,
        Priority, ReduceOrder, RsqrtScale, ScaleMethod, ServiceConfig, StopRule,
    };
    pub use macrosim::{IterL2NormMacro, MacroConfig};
    pub use normserver::{
        serve, Admission, ClientRequest, NormClient, ServerHandle, ServerOptions, ServerReply,
        TenantSpec,
    };
    pub use softfloat::{Bf16, Float, Fp16, Fp32, HostF32};
    pub use synthmodel::CostModel;
    pub use textgen::Corpus;
    pub use transformer::{Model, ModelSpec, NormMethod, TransformerConfig};
    pub use workloads::{Distribution, VectorGen};
}
