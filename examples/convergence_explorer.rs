//! Explore the iteration's convergence landscape: the residual after n
//! steps as a function of where `m = ‖y‖²` lands among significands and
//! exponent parities — the hidden variable behind the paper's wildly
//! varying Table I FP32 column (0.015–61.8 ×1e−4) and behind which OPT
//! layers feel the 3-step approximation (EXPERIMENTS.md, Table IV).
//!
//! ```sh
//! cargo run --release --example convergence_explorer
//! ```

use iterl2norm_suite::prelude::*;

fn residual(m_val: f64, steps: u32) -> f64 {
    let m = Fp32::from_f64(m_val);
    let a = iterl2norm::iterate(m, &IterConfig::fixed_steps(steps))
        .final_a()
        .to_f64();
    (a * m_val.sqrt() - 1.0).abs()
}

fn main() {
    println!("IterL2Norm convergence landscape (FP32)");
    println!("residual |a·sqrt(m) − 1| after n steps, across the significand of m\n");

    println!(
        "{:>11}  {:>9}  {:>9}  {:>9}  {:>9}",
        "m", "n=3", "n=4", "n=5", "n=10"
    );
    // Sweep one even-exponent binade (m ∈ [256, 512)) — the worst parity.
    for i in 0..16 {
        let sig = 1.0 + i as f64 / 16.0;
        let m = sig * 256.0;
        println!(
            "{m:>11.1}  {:>9.2e}  {:>9.2e}  {:>9.2e}  {:>9.2e}",
            residual(m, 3),
            residual(m, 4),
            residual(m, 5),
            residual(m, 10)
        );
    }

    // Where is the worst 5-step residual over both parities?
    let mut worst = (0.0f64, 0.0f64);
    let mut best = (f64::INFINITY, 0.0f64);
    for e in [8i32, 9] {
        for i in 0..512 {
            let m = (1.0 + i as f64 / 512.0) * (e as f64).exp2();
            let r = residual(m, 5);
            if r > worst.0 {
                worst = (r, m);
            }
            if r < best.0 {
                best = (r, m);
            }
        }
    }
    println!("\n5-step residual extremes over m ∈ [256, 1024):");
    println!(
        "  worst {:.2e} at m = {:.2} (significand {:.4})",
        worst.0,
        worst.1,
        worst.1 / (worst.1.log2().floor()).exp2()
    );
    println!(
        "  best  {:.2e} at m = {:.2} (significand {:.4})",
        best.0,
        best.1,
        best.1 / (best.1.log2().floor()).exp2()
    );
    println!("\nA 1000x spread from the significand alone — this is why the paper's");
    println!("Table I FP32 errors vary so strongly with the embedding length d, and why");
    println!("Table IV's pre-norm model feels 3-step truncation while the post-norm one");
    println!("(whose norms always see m ≈ d) does not.");

    // Parity contrast at fixed significand.
    println!("\nExponent-parity contrast (significand 1.99, 3 steps):");
    for e in 4..8 {
        let m = 1.99 * (e as f64).exp2();
        println!(
            "  m = {m:>7.2} (e = {e}, {}): residual {:.2e}",
            if e % 2 == 0 { "even" } else { "odd " },
            residual(m, 3)
        );
    }
}
