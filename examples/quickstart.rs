//! Quickstart: build a normalization plan once, then drive single rows and
//! whole batches through the reusable engine — in all three formats — and
//! watch the scalar iteration converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iterl2norm_suite::prelude::*;

fn demo_format<F: Float>() -> Result<(), Box<dyn std::error::Error>> {
    // A small activation vector, as it would leave a feed-forward block.
    let values = [0.62, -1.37, 0.05, 2.10, -0.44, 0.91, -1.88, 0.33];
    let d = values.len();
    let x: Vec<F> = values.iter().map(|&v| F::from_f64(v)).collect();

    // The plan is built once per layer shape: it owns the format-rounded
    // d⁻¹ and √d. The engine owns the reduction scratch; after this line
    // the normalize calls below perform zero heap allocations.
    let plan = NormPlan::<F>::new(d)?;
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<F>(), &plan);

    let mut z = vec![F::zero(); d];
    engine.normalize_into(&plan, &x, &mut z)?;
    let exact = iterl2norm::reference::normalize_f64(&values, 0.0);

    let max_err = z
        .iter()
        .zip(&exact)
        .map(|(a, e)| (a.to_f64() - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{:>4}: z[0..3] = [{:+.4}, {:+.4}, {:+.4}, ...]   max |err| vs exact = {:.2e}",
        F::NAME,
        z[0].to_f64(),
        z[1].to_f64(),
        z[2].to_f64(),
        max_err
    );
    Ok(())
}

fn demo_batch() -> Result<(), Box<dyn std::error::Error>> {
    // The serving-path shape: one plan, one engine, row-major batches.
    let d = 768;
    let rows = 64;
    let gen = VectorGen::paper();
    let mut batch: Vec<Fp32> = Vec::with_capacity(rows * d);
    for r in 0..rows as u64 {
        batch.extend(gen.vector::<Fp32>(d, r));
    }

    let plan = NormPlan::<Fp32>::new(d)?;
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
    let mut out = vec![Fp32::ZERO; batch.len()];
    let done = engine.normalize_batch(&plan, &batch, &mut out)?;

    // Every batch row is bit-identical to the per-vector wrapper.
    let first_single = layer_norm(
        LayerNormInputs::unscaled(&batch[..d]),
        &IterL2Norm::with_steps(5),
    )?;
    assert!(out[..d]
        .iter()
        .zip(&first_single)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    println!(
        "\nBatch path: normalized {done} rows of d = {d} in one call \
         (bit-identical to the per-vector path, zero hot-path allocations)."
    );
    Ok(())
}

fn demo_native_backend() -> Result<(), Box<dyn std::error::Error>> {
    // The native fast path: Fp32 is exactly the host's binary32, so the
    // same generic engine driven with HostF32 (host f32 behind the Float
    // trait) produces bit-identical output at hardware speed. FP16/BF16
    // have no host equivalent and stay on the softfloat emulator.
    let d = 768;
    let rows = 128;
    let gen = VectorGen::paper();
    let master: Vec<Vec<f64>> = (0..rows as u64).map(|r| gen.vector_f64(d, r)).collect();

    let run_backend =
        |label: &str, normalize: &mut dyn FnMut() -> Vec<u32>| -> (Vec<u32>, std::time::Duration) {
            let t0 = std::time::Instant::now();
            let bits = normalize();
            let dt = t0.elapsed();
            println!("  {label:<22} {dt:>10.2?} for {rows} rows of d = {d}");
            (bits, dt)
        };

    let emulated = {
        let plan = NormPlan::<Fp32>::new(d)?;
        let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
        let flat: Vec<Fp32> = master
            .iter()
            .flatten()
            .map(|&v| Fp32::from_f64(v))
            .collect();
        let mut out = vec![Fp32::ZERO; flat.len()];
        run_backend("emulated (softfloat):", &mut || {
            engine.normalize_batch(&plan, &flat, &mut out).unwrap();
            out.iter().map(|v| v.to_bits()).collect()
        })
    };
    let native = {
        let plan = NormPlan::<HostF32>::new(d)?;
        let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<HostF32>(), &plan);
        let flat: Vec<HostF32> = master
            .iter()
            .flatten()
            .map(|&v| HostF32::from_f64(v))
            .collect();
        let mut out = vec![HostF32::ZERO; flat.len()];
        run_backend("native (host f32):", &mut || {
            // Threaded partitioning never changes a bit; threads = 4 here.
            engine
                .normalize_batch_parallel(&plan, &flat, &mut out, 4)
                .unwrap();
            out.iter().map(|v| v.to_bits()).collect()
        })
    };
    assert_eq!(emulated.0, native.0, "backends must agree bit for bit");
    println!(
        "  -> bit-identical output, {:.0}x faster\n",
        emulated.1.as_secs_f64() / native.1.as_secs_f64().max(1e-12)
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("IterL2Norm quickstart — division- and sqrt-free layer normalization\n");
    demo_format::<Fp32>()?;
    demo_format::<Fp16>()?;
    demo_format::<Bf16>()?;
    demo_batch()?;

    println!("\nExecution backends on the same batch (method iterl2[5]):");
    demo_native_backend()?;

    // Peek inside the iteration: a converges to 1/‖y‖ within five steps.
    println!("\nScalar iteration on m = ‖y‖² = 10.5 (FP32):");
    let m = Fp32::from_f64(10.5);
    let trace = iterl2norm::iterate(m, &IterConfig::fixed_steps(5));
    let target = 1.0 / 10.5f64.sqrt();
    println!(
        "  a0     = {:.6}  (seed from the exponent of m, Eq. 6)",
        trace.a0.to_f64()
    );
    println!(
        "  lambda = {:.6}  (0.345 shifted by the exponent of m, Eq. 10)",
        trace.lambda.to_f64()
    );
    for (i, a) in trace.steps.iter().enumerate() {
        println!(
            "  step {}: a = {:.6}   (target 1/sqrt(m) = {target:.6}, rel err {:+.2e})",
            i + 1,
            a.to_f64(),
            (a.to_f64() - target) / target
        );
    }

    // The registry in one place: every method the paper compares.
    println!("\nMethod registry on the same vector (d = 768, FP32):");
    let d = 768;
    let x: Vec<Fp32> = VectorGen::paper().vector(d, 7);
    let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let exact = iterl2norm::reference::normalize_f64(&xf, 1e-5);
    let plan = NormPlan::<Fp32>::new(d)?;
    let mut z = vec![Fp32::ZERO; d];
    for spec in MethodSpec::REGISTRY {
        let mut engine = Normalizer::for_plan(spec.build::<Fp32>(), &plan);
        engine.normalize_into(&plan, &x, &mut z)?;
        let stats = iterl2norm::metrics::abs_error_stats(&z, &exact);
        println!(
            "  {:<12} avg |err| {:.3e}   max |err| {:.3e}",
            spec.label(),
            stats.avg_abs,
            stats.max_abs
        );
    }
    Ok(())
}
