//! Quickstart: layer-normalize one vector with IterL2Norm in all three
//! formats and watch the scalar iteration converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iterl2norm_suite::prelude::*;

fn demo_format<F: Float>() -> Result<(), Box<dyn std::error::Error>> {
    // A small activation vector, as it would leave a feed-forward block.
    let values = [0.62, -1.37, 0.05, 2.10, -0.44, 0.91, -1.88, 0.33];
    let x: Vec<F> = values.iter().map(|&v| F::from_f64(v)).collect();

    let z = layer_norm(LayerNormInputs::unscaled(&x), &IterL2Norm::new())?;
    let exact = iterl2norm::reference::normalize_f64(&values, 0.0);

    let max_err = z
        .iter()
        .zip(&exact)
        .map(|(a, e)| (a.to_f64() - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{:>4}: z[0..3] = [{:+.4}, {:+.4}, {:+.4}, ...]   max |err| vs exact = {:.2e}",
        F::NAME,
        z[0].to_f64(),
        z[1].to_f64(),
        z[2].to_f64(),
        max_err
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("IterL2Norm quickstart — division- and sqrt-free layer normalization\n");
    demo_format::<Fp32>()?;
    demo_format::<Fp16>()?;
    demo_format::<Bf16>()?;

    // Peek inside the iteration: a converges to 1/‖y‖ within five steps.
    println!("\nScalar iteration on m = ‖y‖² = 10.5 (FP32):");
    let m = Fp32::from_f64(10.5);
    let trace = iterl2norm::iterate(m, &IterConfig::fixed_steps(5));
    let target = 1.0 / 10.5f64.sqrt();
    println!(
        "  a0     = {:.6}  (seed from the exponent of m, Eq. 6)",
        trace.a0.to_f64()
    );
    println!(
        "  lambda = {:.6}  (0.345 shifted by the exponent of m, Eq. 10)",
        trace.lambda.to_f64()
    );
    for (i, a) in trace.steps.iter().enumerate() {
        println!(
            "  step {}: a = {:.6}   (target 1/sqrt(m) = {target:.6}, rel err {:+.2e})",
            i + 1,
            a.to_f64(),
            (a.to_f64() - target) / target
        );
    }
    Ok(())
}
