//! Quickstart: build a normalization plan once, then drive single rows and
//! whole batches through the reusable engine — in all three formats —
//! serve batches through the type-erased `NormService` front door, and
//! watch the scalar iteration converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iterl2norm_suite::prelude::*;

fn demo_format<F: Float>() -> Result<(), Box<dyn std::error::Error>> {
    // A small activation vector, as it would leave a feed-forward block.
    let values = [0.62, -1.37, 0.05, 2.10, -0.44, 0.91, -1.88, 0.33];
    let d = values.len();
    let x: Vec<F> = values.iter().map(|&v| F::from_f64(v)).collect();

    // The plan is built once per layer shape: it owns the format-rounded
    // d⁻¹ and √d. The engine owns the reduction scratch; after this line
    // the normalize calls below perform zero heap allocations.
    let plan = NormPlan::<F>::new(d)?;
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<F>(), &plan);

    let mut z = vec![F::zero(); d];
    engine.normalize_into(&plan, &x, &mut z)?;
    let exact = iterl2norm::reference::normalize_f64(&values, 0.0);

    let max_err = z
        .iter()
        .zip(&exact)
        .map(|(a, e)| (a.to_f64() - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{:>4}: z[0..3] = [{:+.4}, {:+.4}, {:+.4}, ...]   max |err| vs exact = {:.2e}",
        F::NAME,
        z[0].to_f64(),
        z[1].to_f64(),
        z[2].to_f64(),
        max_err
    );
    Ok(())
}

fn demo_batch() -> Result<(), Box<dyn std::error::Error>> {
    // The serving-path shape: one plan, one engine, row-major batches.
    let d = 768;
    let rows = 64;
    let gen = VectorGen::paper();
    let mut batch: Vec<Fp32> = Vec::with_capacity(rows * d);
    for r in 0..rows as u64 {
        batch.extend(gen.vector::<Fp32>(d, r));
    }

    let plan = NormPlan::<Fp32>::new(d)?;
    let mut engine = Normalizer::for_plan(MethodSpec::iterl2(5).build::<Fp32>(), &plan);
    let mut out = vec![Fp32::ZERO; batch.len()];
    let done = engine.normalize_batch(&plan, &batch, &mut out)?;

    // Every batch row is bit-identical to the per-vector wrapper.
    let first_single = layer_norm(
        LayerNormInputs::unscaled(&batch[..d]),
        &IterL2Norm::with_steps(5),
    )?;
    assert!(out[..d]
        .iter()
        .zip(&first_single)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    println!(
        "\nBatch path: normalized {done} rows of d = {d} in one call \
         (bit-identical to the per-vector path, zero hot-path allocations)."
    );
    Ok(())
}

fn demo_service() -> Result<(), Box<dyn std::error::Error>> {
    // The serving front door: one ServiceConfig names the whole
    // format x method x backend x threads execution point, and the built
    // NormService is type-erased — no generic parameters at the call site.
    // Fp32 is exactly the host's binary32, so the native backend produces
    // bit-identical output at hardware speed; FP16/BF16 have no host
    // equivalent and stay on the softfloat emulator.
    let d = 768;
    let rows = 128;
    let gen = VectorGen::paper();
    let mut bits: Vec<u32> = Vec::with_capacity(rows * d);
    for r in 0..rows as u64 {
        bits.extend(
            gen.vector_f64(d, r)
                .iter()
                .map(|&v| FormatKind::Fp32.encode_f64(v)),
        );
    }

    let mut outputs = Vec::new();
    for backend in [BackendKind::Emulated, BackendKind::Native] {
        let service = ServiceConfig::new(d)
            .with_backend(backend)
            .with_method(MethodSpec::iterl2(5))
            .with_threads(4)
            .build()?;
        let t0 = std::time::Instant::now();
        let response = service.submit(NormRequest::bits(&bits))?;
        println!(
            "  {:<26} {:>10.2?} for {} rows of d = {d}",
            service.label(),
            t0.elapsed(),
            response.rows()
        );
        outputs.push(response.into_bits());
    }
    assert_eq!(outputs[0], outputs[1], "backends must agree bit for bit");

    // Concurrent callers share one service; overlapping requests may be
    // micro-batched into one backend call (response.batch_requests() > 1)
    // — with bit-identical results either way. The throughput win only
    // exists under concurrent load; a lone submitter always runs alone.
    let service = ServiceConfig::new(d)
        .with_backend(BackendKind::Native)
        .with_window(std::time::Duration::from_millis(5))
        .build()?;
    let coalesced: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|who| {
                let service = service.clone();
                let row = bits[who * d..(who + 1) * d].to_vec();
                scope.spawn(move || {
                    let response = service.submit(NormRequest::bits(&row)).unwrap();
                    response.batch_requests()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!(
        "  4 concurrent submitters -> batch sizes {coalesced:?} \
         (bit-identical to running each alone)\n"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("IterL2Norm quickstart — division- and sqrt-free layer normalization\n");
    demo_format::<Fp32>()?;
    demo_format::<Fp16>()?;
    demo_format::<Bf16>()?;
    demo_batch()?;

    println!("\nThe NormService front door on the same batch (method iterl2[5]):");
    demo_service()?;

    // Peek inside the iteration: a converges to 1/‖y‖ within five steps.
    println!("\nScalar iteration on m = ‖y‖² = 10.5 (FP32):");
    let m = Fp32::from_f64(10.5);
    let trace = iterl2norm::iterate(m, &IterConfig::fixed_steps(5));
    let target = 1.0 / 10.5f64.sqrt();
    println!(
        "  a0     = {:.6}  (seed from the exponent of m, Eq. 6)",
        trace.a0.to_f64()
    );
    println!(
        "  lambda = {:.6}  (0.345 shifted by the exponent of m, Eq. 10)",
        trace.lambda.to_f64()
    );
    for (i, a) in trace.steps.iter().enumerate() {
        println!(
            "  step {}: a = {:.6}   (target 1/sqrt(m) = {target:.6}, rel err {:+.2e})",
            i + 1,
            a.to_f64(),
            (a.to_f64() - target) / target
        );
    }

    // The registry in one place: every method the paper compares.
    println!("\nMethod registry on the same vector (d = 768, FP32):");
    let d = 768;
    let x: Vec<Fp32> = VectorGen::paper().vector(d, 7);
    let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let exact = iterl2norm::reference::normalize_f64(&xf, 1e-5);
    let plan = NormPlan::<Fp32>::new(d)?;
    let mut z = vec![Fp32::ZERO; d];
    for spec in MethodSpec::REGISTRY {
        let mut engine = Normalizer::for_plan(spec.build::<Fp32>(), &plan);
        engine.normalize_into(&plan, &x, &mut z)?;
        let stats = iterl2norm::metrics::abs_error_stats(&z, &exact);
        println!(
            "  {:<12} avg |err| {:.3e}   max |err| {:.3e}",
            spec.label(),
            stats.avg_abs,
            stats.max_abs
        );
    }
    Ok(())
}
