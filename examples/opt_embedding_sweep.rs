//! Compare IterL2Norm with the fast inverse square root across the OPT
//! model family's embedding lengths (a quick Table I).
//!
//! ```sh
//! cargo run --release --example opt_embedding_sweep
//! ```

use iterl2norm_suite::prelude::*;

const TRIALS: u64 = 100;
const OPT_LENGTHS: [(usize, &str); 5] = [
    (768, "OPT-125M"),
    (1024, "OPT-350M"),
    (2048, "OPT-1.3B"),
    (4096, "OPT-6.7B"),
    (12288, "OPT-175B"),
];

fn sweep<F: Float, S: RsqrtScale<F>>(d: usize, method: &S) -> (f64, f64) {
    let gen = VectorGen::paper();
    let mut stats = iterl2norm::metrics::ErrorStats::new();
    for i in 0..TRIALS {
        let x: Vec<F> = gen.vector(d, i);
        let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let z = layer_norm(LayerNormInputs::unscaled(&x), method).expect("nonempty");
        let truth = iterl2norm::reference::normalize_f64(&xf, 1e-5);
        stats.record_vec(&z, &truth);
    }
    (stats.avg_abs, stats.max_abs)
}

fn main() {
    println!("IterL2Norm vs FISR on OPT embedding lengths ({TRIALS} vectors each, FP32)\n");
    println!(
        "{:>6}  {:>9}  {:>22}  {:>22}  winner",
        "d", "model", "IterL2Norm avg/max", "FISR avg/max"
    );
    let iterl2 = IterL2Norm::with_steps(5);
    let fisr = Fisr::canonical::<Fp32>();
    for (d, model) in OPT_LENGTHS {
        let (ia, im) = sweep::<Fp32, _>(d, &iterl2);
        let (fa, fm) = sweep::<Fp32, _>(d, &fisr);
        println!(
            "{d:>6}  {model:>9}  {ia:>10.2e}/{im:>10.2e}  {fa:>10.2e}/{fm:>10.2e}  {}",
            if ia < fa { "IterL2Norm" } else { "FISR" }
        );
    }
    println!("\nIterL2Norm's FP32 error varies strongly with d — the iteration's residual");
    println!("depends on where ‖y‖² lands among significands, the effect behind the");
    println!("paper's Table I spread (0.030e-4 … 61.76e-4).");
}
