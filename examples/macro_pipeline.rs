//! Drive the cycle-accurate IterL2Norm macro: load a batch, run it, check
//! the outputs bit-for-bit against the pure-software pipeline, and price
//! the design with the synthesis cost model.
//!
//! ```sh
//! cargo run --release --example macro_pipeline
//! ```

use iterl2norm_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 384;
    let gen = VectorGen::paper();
    let x: Vec<Fp32> = gen.vector(d, 0);

    // --- Run the hardware model.
    let mut mac = IterL2NormMacro::new(MacroConfig::new(d)?);
    mac.load_input(&x)?;
    let run = mac.run()?;
    println!(
        "macro run: d = {d}, 5 iteration steps -> {} cycles",
        run.cycles
    );
    println!("phase schedule:");
    for span in &run.phases {
        println!(
            "  {:>11}  cycles {:>3}..{:<3} ({} cycles)",
            span.phase.name(),
            span.start,
            span.end,
            span.end - span.start
        );
    }

    // --- The software pipeline in hardware reduction order matches the
    //     macro bit-for-bit.
    let sw = layer_norm(
        LayerNormInputs::unscaled(&x).with_reduce(ReduceOrder::HwTree),
        &IterL2Norm::with_steps(5),
    )?;
    let identical = run.outputs[0]
        .iter()
        .zip(&sw)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("\nbit-exact vs software pipeline (hw reduction order): {identical}");
    assert!(identical);

    // --- Batch mode: ⌊1024/d⌋ vectors from one buffer load.
    let mut batch = IterL2NormMacro::new(MacroConfig::new(256)?);
    for i in 0..4 {
        batch.load_input(&gen.vector::<Fp32>(256, i))?;
    }
    let brun = batch.run()?;
    println!(
        "batch: 4 x d=256 vectors normalized sequentially in {} cycles",
        brun.cycles
    );

    // --- What does this macro cost in silicon?
    let cost = CostModel::saed32().report::<Fp32>();
    println!(
        "\nFP32 macro (32/28nm model): {:.1} kib memory, {:.1}k cells, {:.2} mm^2, {:.1} mW",
        cost.memory_kib,
        cost.total_cells as f64 / 1e3,
        cost.area_mm2,
        cost.power_mw
    );
    Ok(())
}
