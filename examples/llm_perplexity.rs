//! LLM-level evaluation in miniature: build a bigram-constructed decoder
//! over a synthetic corpus, swap its LayerNorms for IterL2Norm, and watch
//! the perplexity delta vanish as the iteration count grows (Table IV).
//!
//! ```sh
//! cargo run --release --example llm_perplexity
//! ```

use iterl2norm_suite::prelude::*;
use transformer::BigramCorpusStats;

fn main() {
    let vocab = 32;
    let corpus = Corpus::wiki_like(vocab, 11);
    let stats = BigramCorpusStats::from_fn(vocab, |p, n| corpus.bigram_prob(p, n).ln());
    let config = TransformerConfig::opt125m_like(vocab, vocab);
    // Adversarial embedding scale: ‖y‖² lands on the slowest-converging
    // significand, so short iteration counts visibly hurt.
    let c = (1.99 / (1.0 - 1.0 / vocab as f64)).sqrt();
    let spec = ModelSpec::bigram_scaled(config, &stats, 0.02, c, 3);
    let model = Model::<Fp32>::from_spec(&spec);

    let tokens = corpus.generate(600, 1);
    let floor = corpus.entropy_rate_bits(20_000).exp2();
    let baseline = model.perplexity(&tokens, &NormMethod::exact());
    println!("synthetic wiki corpus, vocab {vocab}: entropy-rate floor ≈ {floor:.2}");
    println!(
        "decoder ({} layers, pre-norm): baseline perplexity {baseline:.3}\n",
        config.n_layers
    );
    println!("{:>12}  {:>10}  {:>8}", "norm", "perplexity", "delta");
    for steps in [1u32, 2, 3, 4, 5, 10] {
        let ppl = model.perplexity(&tokens, &NormMethod::iterl2(steps));
        println!(
            "{:>12}  {ppl:>10.3}  {:>+8.3}",
            format!("iterl2[{steps}]"),
            ppl - baseline
        );
    }
    let fisr = model.perplexity(&tokens, &NormMethod::fisr());
    println!("{:>12}  {fisr:>10.3}  {:>+8.3}", "fisr[1]", fisr - baseline);
    println!("\nThe delta decays toward +0.000 by five steps — the paper's Table IV shape.");
}
